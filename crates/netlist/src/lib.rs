//! Gate-level netlist substrate for high-level power modeling.
//!
//! This crate provides the "ground truth" layer that the survey's high-level
//! estimators are validated against: a structural gate-level netlist with a
//! characterized technology library, functional (zero-delay) and event-driven
//! (real-delay, glitch-capturing) simulators, switched-capacitance power
//! accounting, probabilistic estimation, and a family of parameterized
//! circuit generators used as benchmark circuits.
//!
//! # Example
//!
//! Build a 4-bit ripple-carry adder, simulate it under random vectors, and
//! compute its average dynamic power:
//!
//! ```
//! use hlpower_netlist::{Netlist, Library, ZeroDelaySim, streams};
//! use hlpower_netlist::gen;
//!
//! # fn main() -> Result<(), hlpower_netlist::NetlistError> {
//! let mut nl = Netlist::new();
//! let a = nl.input_bus("a", 4);
//! let b = nl.input_bus("b", 4);
//! let zero = nl.constant(false);
//! let sum = gen::ripple_adder(&mut nl, &a, &b, zero);
//! nl.output_bus("sum", &sum);
//!
//! let lib = Library::default();
//! let mut sim = ZeroDelaySim::new(&nl)?;
//! let activity = sim.run(streams::random(7, nl.input_count()).take(1000))?;
//! let report = activity.power(&nl, &lib);
//! assert!(report.total_power_uw() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Matrix- and table-style numerics read more clearly with explicit index
// loops; silence clippy's iterator-style suggestion for them.
#![allow(clippy::needless_range_loop)]

mod editor;
mod error;
mod event;
pub mod gen;
mod incremental;
mod incremental_timed;
pub mod ingest;
pub mod io;
mod library;
mod montecarlo;
mod netlist;
pub mod power;
mod prob;
mod sim;
mod sim64;
mod sim64timed;
mod simwide;
pub mod streams;
pub mod words;

pub use editor::NetlistEditor;
pub use error::{NetlistError, SourceFormat, SrcLoc};
pub use event::{EventDrivenSim, TimedActivity};
pub use incremental::{ConeResim, IncrementalSim, ResimScratch};
pub use incremental_timed::{IncrementalTimedSim, TimedConeResim, TimedResimScratch};
pub use ingest::{
    emit_verilog, emitted_net_names, ingest_auto, ingest_str, parse_edif, parse_verilog,
    sniff_format, structurally_equivalent,
};
pub use io::{parse_netlist, write_netlist, ParseNetlistError};
pub use library::{GateKind, Library};
pub use montecarlo::{
    mean_ci_half_width, monte_carlo_glitch_power_seeded, monte_carlo_glitch_power_seeded_threads,
    monte_carlo_glitch_power_seeded_threads_kernel, monte_carlo_power, monte_carlo_power_seeded,
    monte_carlo_power_seeded_threads, monte_carlo_power_seeded_threads_kernel,
    simulate_packed_glitch_lanes, simulate_packed_lanes, LaneRequest, McKernel, MonteCarloOptions,
    MonteCarloResult, StoppingReplay,
};
pub use netlist::{Bus, GroupId, Netlist, NodeId, NodeKind};
pub use power::attribution::{
    attribute, attribute_delta, AttributionReport, NodeAttribution, RollupEntry,
};
pub use power::{GroupPower, PowerModel, PowerReport};
pub use prob::{ProbabilityAnalysis, SignalStats};
pub use sim::{Activity, ZeroDelaySim};
pub use sim64::{BlockSim64, CompiledKernel, Sim64, LANES};
pub use sim64timed::{timed_activity, TimedKernel, TimedSim64};
pub use simwide::{simd_level, SimdLevel, WideSim, WideTimedSim};
pub use words::{Word, W256, W512};
