//! Textual netlist interchange: a small BLIF-inspired structural format.
//!
//! One declaration per line:
//!
//! ```text
//! # comment
//! input a
//! const c0 0
//! gate  g1 and a b c0
//! dff   q1 g1 0
//! output y g1
//! group g1 control_logic
//! ```
//!
//! Node names are arbitrary identifiers; gates reference previously
//! declared nodes, with forward references allowed only for flip-flop
//! data inputs (matching the builder's feedback rule).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::error::{NetlistError, SourceFormat, SrcLoc};
use crate::ingest::lex::{self, Loc, Word};
use crate::library::GateKind;
use crate::netlist::{Netlist, NodeId, NodeKind};

/// Errors from parsing the textual netlist format.
///
/// Every variant carries the 1-based line *and column* of the offending
/// token plus the source line it sits on, matching the positions the
/// Verilog/EDIF front-ends report (the `.nl` lexer is the same
/// [`crate::ingest::lex`] machinery). Convertible into the corresponding
/// [`NetlistError`] parse variants via `From`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseNetlistError {
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// The offending source line.
        snippet: String,
        /// Explanation.
        reason: String,
    },
    /// A referenced node name was never declared.
    UnknownName {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the undeclared name.
        col: usize,
        /// The offending source line.
        snippet: String,
        /// The undeclared name.
        name: String,
    },
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::Malformed { line, col, snippet, reason } => {
                write!(f, "netlist line {line}, column {col}: {reason} (`{snippet}`)")
            }
            ParseNetlistError::UnknownName { line, col, snippet, name } => {
                write!(f, "netlist line {line}, column {col}: unknown node '{name}' (`{snippet}`)")
            }
        }
    }
}

impl Error for ParseNetlistError {}

impl From<ParseNetlistError> for NetlistError {
    fn from(e: ParseNetlistError) -> NetlistError {
        match e {
            ParseNetlistError::Malformed { line, col, snippet, reason } => {
                NetlistError::ParseSyntax {
                    format: SourceFormat::NativeNl,
                    at: SrcLoc { line, col, snippet },
                    message: reason,
                }
            }
            ParseNetlistError::UnknownName { line, col, snippet, name } => {
                NetlistError::ParseUnknownName {
                    format: SourceFormat::NativeNl,
                    at: SrcLoc { line, col, snippet },
                    name,
                }
            }
        }
    }
}

fn gate_kind_by_name(name: &str) -> Option<GateKind> {
    GateKind::all().into_iter().find(|k| k.name() == name)
}

/// Serializes a netlist to the textual format. Node names are synthesized
/// as `n<index>` unless the node carries a name.
pub fn write_netlist(nl: &Netlist) -> String {
    let name_of = |id: NodeId| -> String {
        match nl.name(id) {
            // Escape whitespace-unsafe names by index fallback.
            Some(n) if !n.contains(char::is_whitespace) => n.to_string(),
            _ => format!("n{}", id.index()),
        }
    };
    let mut out = String::new();
    for id in nl.node_ids() {
        match nl.kind(id) {
            NodeKind::Input => out.push_str(&format!("input {}\n", name_of(id))),
            NodeKind::Const(v) => out.push_str(&format!("const {} {}\n", name_of(id), *v as u8)),
            NodeKind::Gate { kind, inputs } => {
                out.push_str(&format!("gate {} {}", name_of(id), kind.name()));
                for i in inputs {
                    out.push_str(&format!(" {}", name_of(*i)));
                }
                out.push('\n');
            }
            NodeKind::Dff { d, init } => {
                out.push_str(&format!("dff {} {} {}\n", name_of(id), name_of(*d), *init as u8))
            }
        }
        if let Some(g) = nl.node_group(id) {
            out.push_str(&format!(
                "group {} {}\n",
                name_of(id),
                nl.group_name(g).replace(char::is_whitespace, "_")
            ));
        }
    }
    for (name, node) in nl.outputs() {
        out.push_str(&format!(
            "output {} {}\n",
            name.replace(char::is_whitespace, "_"),
            name_of(*node)
        ));
    }
    out
}

/// Parses the textual format back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on any syntax or reference problem,
/// pointing at the offending token (line, column, and source line).
pub fn parse_netlist(text: &str) -> Result<Netlist, ParseNetlistError> {
    let mut nl = Netlist::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    let malformed = |loc: Loc, reason: String| ParseNetlistError::Malformed {
        line: loc.line,
        col: loc.col,
        snippet: lex::snippet(text, loc.line),
        reason,
    };
    let unknown = |w: &Word| ParseNetlistError::UnknownName {
        line: w.loc.line,
        col: w.loc.col,
        snippet: lex::snippet(text, w.loc.line),
        name: w.text.clone(),
    };
    // Flip-flops may reference nodes declared later: collect fixups.
    let mut dff_fixups: Vec<(Word, NodeId)> = Vec::new();
    for (_lineno, words) in lex::lines_of_words(text) {
        let head = &words[0];
        match head.text.as_str() {
            "input" => {
                let name = words
                    .get(1)
                    .ok_or_else(|| malformed(head.loc, "input needs a name".to_string()))?;
                let id = nl.input(name.text.clone());
                names.insert(name.text.clone(), id);
            }
            "const" => {
                if words.len() != 3 {
                    return Err(malformed(head.loc, "const needs a name and 0/1".to_string()));
                }
                let v = match words[2].text.as_str() {
                    "0" => false,
                    "1" => true,
                    _ => {
                        return Err(malformed(
                            words[2].loc,
                            "const value must be 0 or 1".to_string(),
                        ))
                    }
                };
                let id = nl.constant(v);
                names.insert(words[1].text.clone(), id);
            }
            "gate" => {
                if words.len() < 4 {
                    return Err(malformed(head.loc, "gate needs name, kind, inputs".to_string()));
                }
                let kind = gate_kind_by_name(&words[2].text).ok_or_else(|| {
                    malformed(words[2].loc, format!("unknown gate kind '{}'", words[2].text))
                })?;
                let mut inputs = Vec::new();
                for w in &words[3..] {
                    inputs.push(*names.get(&w.text).ok_or_else(|| unknown(w))?);
                }
                let id = nl.gate(kind, inputs).map_err(|e| malformed(head.loc, e.to_string()))?;
                nl.set_name(id, words[1].text.clone());
                names.insert(words[1].text.clone(), id);
            }
            "dff" => {
                if words.len() != 4 {
                    return Err(malformed(
                        head.loc,
                        "dff needs name, data input, init".to_string(),
                    ));
                }
                let init = match words[3].text.as_str() {
                    "0" => false,
                    "1" => true,
                    _ => {
                        return Err(malformed(words[3].loc, "dff init must be 0 or 1".to_string()))
                    }
                };
                let q = nl.dff_placeholder(init);
                nl.set_name(q, words[1].text.clone());
                names.insert(words[1].text.clone(), q);
                dff_fixups.push((words[2].clone(), q));
            }
            "output" => {
                if words.len() != 3 {
                    return Err(malformed(head.loc, "output needs a name and a node".to_string()));
                }
                let id = *names.get(&words[2].text).ok_or_else(|| unknown(&words[2]))?;
                nl.set_output(words[1].text.clone(), id);
            }
            "group" => {
                if words.len() != 3 {
                    return Err(malformed(
                        head.loc,
                        "group needs a node and a group name".to_string(),
                    ));
                }
                let id = *names.get(&words[1].text).ok_or_else(|| unknown(&words[1]))?;
                let g = nl.group(words[2].text.clone());
                nl.set_node_group(id, g);
            }
            other => return Err(malformed(head.loc, format!("unknown declaration '{other}'"))),
        }
    }
    for (w, q) in dff_fixups {
        let d = *names.get(&w.text).ok_or_else(|| unknown(&w))?;
        nl.connect_dff_d(q, d);
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::streams;
    use crate::ZeroDelaySim;

    #[test]
    fn round_trip_combinational() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let zero = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, zero);
        nl.output_bus("s", &s);
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("well-formed");
        assert_eq!(back.input_count(), nl.input_count());
        assert_eq!(back.gate_count(), nl.gate_count());
        let vecs: Vec<Vec<bool>> = streams::random(1, 8).take(200).collect();
        let mut s1 = ZeroDelaySim::new(&nl).expect("acyclic");
        let mut s2 = ZeroDelaySim::new(&back).expect("acyclic");
        for v in &vecs {
            assert_eq!(
                s1.eval_combinational(v).expect("width"),
                s2.eval_combinational(v).expect("width")
            );
        }
    }

    #[test]
    fn round_trip_sequential_with_feedback() {
        // q = dff(xor(q, en)): a toggle register with feedback.
        let mut nl = Netlist::new();
        let en = nl.input("en");
        let q = nl.dff_placeholder(false);
        let d = nl.xor([q, en]);
        nl.connect_dff_d(q, d);
        nl.set_output("q", q);
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("well-formed");
        let mut s1 = ZeroDelaySim::new(&nl).expect("ok");
        let mut s2 = ZeroDelaySim::new(&back).expect("ok");
        for v in [true, false, true, true, false, true] {
            s1.step(&[v]).expect("width");
            s2.step(&[v]).expect("width");
            assert_eq!(s1.output_values(), s2.output_values());
        }
    }

    #[test]
    fn groups_survive_round_trip() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.with_group("control logic", |nl| nl.and([a, b]));
        nl.set_output("y", y);
        let back = parse_netlist(&write_netlist(&nl)).expect("well-formed");
        let yid = back.outputs()[0].1;
        assert_eq!(back.group_name(back.node_group(yid).expect("grouped")), "control_logic");
    }

    #[test]
    fn parse_errors_carry_lines() {
        assert!(matches!(
            parse_netlist("input a\nfrobnicate x\n"),
            Err(ParseNetlistError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            parse_netlist("gate g and x y\n"),
            Err(ParseNetlistError::UnknownName { line: 1, .. })
        ));
        assert!(matches!(
            parse_netlist("input a\ngate g frob a a\n"),
            Err(ParseNetlistError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn parse_errors_carry_columns_and_snippets() {
        // The undeclared name is the fifth word: column 14 of line 2.
        match parse_netlist("input a\ngate g and a ghost\n").unwrap_err() {
            ParseNetlistError::UnknownName { line, col, snippet, name } => {
                assert_eq!((line, col), (2, 14));
                assert_eq!(snippet, "gate g and a ghost");
                assert_eq!(name, "ghost");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // The bad gate kind points at the kind word, not the line start.
        match parse_netlist("input a\n  gate g frob a a\n").unwrap_err() {
            ParseNetlistError::Malformed { line, col, snippet, .. } => {
                assert_eq!((line, col), (2, 10));
                assert_eq!(snippet, "  gate g frob a a");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // Conversion into the shared error type preserves the position.
        let e: crate::NetlistError = parse_netlist("const c0 2\n").unwrap_err().into();
        match e {
            crate::NetlistError::ParseSyntax { format, at, .. } => {
                assert_eq!(format, crate::SourceFormat::NativeNl);
                assert_eq!((at.line, at.col), (1, 10));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\ninput a\n  # indented comment\noutput y a\n";
        let nl = parse_netlist(text).expect("well-formed");
        assert_eq!(nl.input_count(), 1);
        assert_eq!(nl.outputs().len(), 1);
    }
}
