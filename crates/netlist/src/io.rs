//! Textual netlist interchange: a small BLIF-inspired structural format.
//!
//! One declaration per line:
//!
//! ```text
//! # comment
//! input a
//! const c0 0
//! gate  g1 and a b c0
//! dff   q1 g1 0
//! output y g1
//! group g1 control_logic
//! ```
//!
//! Node names are arbitrary identifiers; gates reference previously
//! declared nodes, with forward references allowed only for flip-flop
//! data inputs (matching the builder's feedback rule).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::library::GateKind;
use crate::netlist::{Netlist, NodeId, NodeKind};

/// Errors from parsing the textual netlist format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseNetlistError {
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// A referenced node name was never declared.
    UnknownName {
        /// 1-based line number.
        line: usize,
        /// The undeclared name.
        name: String,
    },
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::Malformed { line, reason } => {
                write!(f, "netlist line {line}: {reason}")
            }
            ParseNetlistError::UnknownName { line, name } => {
                write!(f, "netlist line {line}: unknown node '{name}'")
            }
        }
    }
}

impl Error for ParseNetlistError {}

fn gate_kind_by_name(name: &str) -> Option<GateKind> {
    GateKind::all().into_iter().find(|k| k.name() == name)
}

/// Serializes a netlist to the textual format. Node names are synthesized
/// as `n<index>` unless the node carries a name.
pub fn write_netlist(nl: &Netlist) -> String {
    let name_of = |id: NodeId| -> String {
        match nl.name(id) {
            // Escape whitespace-unsafe names by index fallback.
            Some(n) if !n.contains(char::is_whitespace) => n.to_string(),
            _ => format!("n{}", id.index()),
        }
    };
    let mut out = String::new();
    for id in nl.node_ids() {
        match nl.kind(id) {
            NodeKind::Input => out.push_str(&format!("input {}\n", name_of(id))),
            NodeKind::Const(v) => out.push_str(&format!("const {} {}\n", name_of(id), *v as u8)),
            NodeKind::Gate { kind, inputs } => {
                out.push_str(&format!("gate {} {}", name_of(id), kind.name()));
                for i in inputs {
                    out.push_str(&format!(" {}", name_of(*i)));
                }
                out.push('\n');
            }
            NodeKind::Dff { d, init } => {
                out.push_str(&format!("dff {} {} {}\n", name_of(id), name_of(*d), *init as u8))
            }
        }
        if let Some(g) = nl.node_group(id) {
            out.push_str(&format!(
                "group {} {}\n",
                name_of(id),
                nl.group_name(g).replace(char::is_whitespace, "_")
            ));
        }
    }
    for (name, node) in nl.outputs() {
        out.push_str(&format!(
            "output {} {}\n",
            name.replace(char::is_whitespace, "_"),
            name_of(*node)
        ));
    }
    out
}

/// Parses the textual format back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending line on any syntax or
/// reference problem.
pub fn parse_netlist(text: &str) -> Result<Netlist, ParseNetlistError> {
    let mut nl = Netlist::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    // Flip-flops may reference nodes declared later: collect fixups.
    let mut dff_fixups: Vec<(usize, NodeId, String)> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = ln + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let malformed = |reason: &str| ParseNetlistError::Malformed {
            line: lineno,
            reason: reason.to_string(),
        };
        match fields[0] {
            "input" => {
                let name = fields.get(1).ok_or_else(|| malformed("input needs a name"))?;
                let id = nl.input(name.to_string());
                names.insert(name.to_string(), id);
            }
            "const" => {
                if fields.len() != 3 {
                    return Err(malformed("const needs a name and 0/1"));
                }
                let v = match fields[2] {
                    "0" => false,
                    "1" => true,
                    _ => return Err(malformed("const value must be 0 or 1")),
                };
                let id = nl.constant(v);
                names.insert(fields[1].to_string(), id);
            }
            "gate" => {
                if fields.len() < 4 {
                    return Err(malformed("gate needs name, kind, inputs"));
                }
                let kind = gate_kind_by_name(fields[2])
                    .ok_or_else(|| malformed(&format!("unknown gate kind '{}'", fields[2])))?;
                let mut inputs = Vec::new();
                for f in &fields[3..] {
                    let id = names.get(*f).ok_or_else(|| ParseNetlistError::UnknownName {
                        line: lineno,
                        name: f.to_string(),
                    })?;
                    inputs.push(*id);
                }
                let id = nl.gate(kind, inputs).map_err(|e| malformed(&e.to_string()))?;
                nl.set_name(id, fields[1].to_string());
                names.insert(fields[1].to_string(), id);
            }
            "dff" => {
                if fields.len() != 4 {
                    return Err(malformed("dff needs name, data input, init"));
                }
                let init = match fields[3] {
                    "0" => false,
                    "1" => true,
                    _ => return Err(malformed("dff init must be 0 or 1")),
                };
                let q = nl.dff_placeholder(init);
                nl.set_name(q, fields[1].to_string());
                names.insert(fields[1].to_string(), q);
                dff_fixups.push((lineno, q, fields[2].to_string()));
            }
            "output" => {
                if fields.len() != 3 {
                    return Err(malformed("output needs a name and a node"));
                }
                let id = names.get(fields[2]).ok_or_else(|| ParseNetlistError::UnknownName {
                    line: lineno,
                    name: fields[2].to_string(),
                })?;
                nl.set_output(fields[1].to_string(), *id);
            }
            "group" => {
                if fields.len() != 3 {
                    return Err(malformed("group needs a node and a group name"));
                }
                let id = *names.get(fields[1]).ok_or_else(|| ParseNetlistError::UnknownName {
                    line: lineno,
                    name: fields[1].to_string(),
                })?;
                let g = nl.group(fields[2].to_string());
                nl.set_node_group(id, g);
            }
            other => return Err(malformed(&format!("unknown declaration '{other}'"))),
        }
    }
    for (lineno, q, dname) in dff_fixups {
        let d = *names
            .get(&dname)
            .ok_or(ParseNetlistError::UnknownName { line: lineno, name: dname })?;
        nl.connect_dff_d(q, d);
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::streams;
    use crate::ZeroDelaySim;

    #[test]
    fn round_trip_combinational() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let zero = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, zero);
        nl.output_bus("s", &s);
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("well-formed");
        assert_eq!(back.input_count(), nl.input_count());
        assert_eq!(back.gate_count(), nl.gate_count());
        let vecs: Vec<Vec<bool>> = streams::random(1, 8).take(200).collect();
        let mut s1 = ZeroDelaySim::new(&nl).expect("acyclic");
        let mut s2 = ZeroDelaySim::new(&back).expect("acyclic");
        for v in &vecs {
            assert_eq!(
                s1.eval_combinational(v).expect("width"),
                s2.eval_combinational(v).expect("width")
            );
        }
    }

    #[test]
    fn round_trip_sequential_with_feedback() {
        // q = dff(xor(q, en)): a toggle register with feedback.
        let mut nl = Netlist::new();
        let en = nl.input("en");
        let q = nl.dff_placeholder(false);
        let d = nl.xor([q, en]);
        nl.connect_dff_d(q, d);
        nl.set_output("q", q);
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("well-formed");
        let mut s1 = ZeroDelaySim::new(&nl).expect("ok");
        let mut s2 = ZeroDelaySim::new(&back).expect("ok");
        for v in [true, false, true, true, false, true] {
            s1.step(&[v]).expect("width");
            s2.step(&[v]).expect("width");
            assert_eq!(s1.output_values(), s2.output_values());
        }
    }

    #[test]
    fn groups_survive_round_trip() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.with_group("control logic", |nl| nl.and([a, b]));
        nl.set_output("y", y);
        let back = parse_netlist(&write_netlist(&nl)).expect("well-formed");
        let yid = back.outputs()[0].1;
        assert_eq!(back.group_name(back.node_group(yid).expect("grouped")), "control_logic");
    }

    #[test]
    fn parse_errors_carry_lines() {
        assert!(matches!(
            parse_netlist("input a\nfrobnicate x\n"),
            Err(ParseNetlistError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            parse_netlist("gate g and x y\n"),
            Err(ParseNetlistError::UnknownName { line: 1, .. })
        ));
        assert!(matches!(
            parse_netlist("input a\ngate g frob a a\n"),
            Err(ParseNetlistError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\ninput a\n  # indented comment\noutput y a\n";
        let nl = parse_netlist(text).expect("well-formed");
        assert_eq!(nl.input_count(), 1);
        assert_eq!(nl.outputs().len(), 1);
    }
}
