//! Structural netlist representation.

use std::fmt;

use crate::error::NetlistError;
use crate::library::{GateKind, Library};

/// Identifier of a node (net driver) within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node in the netlist's node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a named power-accounting group.
///
/// Groups let a caller attribute switched capacitance to design components
/// (e.g. "execution units" vs "control logic" as in the survey's Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(pub(crate) u32);

/// A bus is an ordered list of nodes, least-significant bit first.
pub type Bus = Vec<NodeId>;

/// The functional kind of a netlist node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A constant driver.
    Const(bool),
    /// A primary input.
    Input,
    /// A combinational gate over the listed fanins.
    Gate {
        /// The logic function.
        kind: GateKind,
        /// Fanin nodes, in pin order.
        inputs: Vec<NodeId>,
    },
    /// A rising-edge D flip-flop. Its output is a sequential boundary: the
    /// value of `d` sampled at the previous clock edge.
    Dff {
        /// Data input node.
        d: NodeId,
        /// Power-on value.
        init: bool,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) name: Option<String>,
    pub(crate) group: Option<GroupId>,
}

/// A gate-level netlist: an arena of nodes (constants, primary inputs,
/// combinational gates, flip-flops) with named primary outputs.
///
/// Netlists are built incrementally through the gate constructor methods and
/// are then analyzed/simulated in place. Construction methods validate gate
/// arity eagerly; combinational cycles are detected when an evaluation order
/// is first requested.
///
/// # Example
///
/// ```
/// use hlpower_netlist::Netlist;
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let y = nl.and([a, b]);
/// nl.set_output("y", y);
/// assert_eq!(nl.gate_count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
    dffs: Vec<NodeId>,
    groups: Vec<String>,
    default_group: Option<GroupId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    fn push(&mut self, kind: NodeKind, name: Option<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, name, group: self.default_group });
        id
    }

    /// Adds a named primary input and returns its node.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(NodeKind::Input, Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Adds a bus of `width` primary inputs named `name[0]..name[width-1]`,
    /// least-significant bit first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Bus {
        (0..width).map(|i| self.input(format!("{name}[{i}]"))).collect()
    }

    /// Adds (or reuses) a constant driver.
    pub fn constant(&mut self, value: bool) -> NodeId {
        // Reuse an existing constant node if one exists.
        for (i, n) in self.nodes.iter().enumerate() {
            if n.kind == NodeKind::Const(value) {
                return NodeId(i as u32);
            }
        }
        self.push(NodeKind::Const(value), None)
    }

    /// Adds a combinational gate of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the number of inputs
    /// violates the gate kind's arity.
    pub fn gate(
        &mut self,
        kind: GateKind,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId, NetlistError> {
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        let min = kind.min_arity();
        let ok = if kind.is_variadic() { inputs.len() >= min } else { inputs.len() == min };
        if !ok {
            return Err(NetlistError::ArityMismatch {
                gate: kind.name(),
                got: inputs.len(),
                expected: min,
            });
        }
        Ok(self.push(NodeKind::Gate { kind, inputs }, None))
    }

    fn gate_infallible(&mut self, kind: GateKind, inputs: Vec<NodeId>) -> NodeId {
        self.gate(kind, inputs).expect("arity checked by caller")
    }

    /// N-input AND gate.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are supplied.
    pub fn and(&mut self, inputs: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.gate_infallible(GateKind::And, inputs.into_iter().collect())
    }

    /// N-input OR gate.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are supplied.
    pub fn or(&mut self, inputs: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.gate_infallible(GateKind::Or, inputs.into_iter().collect())
    }

    /// N-input NAND gate.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are supplied.
    pub fn nand(&mut self, inputs: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.gate_infallible(GateKind::Nand, inputs.into_iter().collect())
    }

    /// N-input NOR gate.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are supplied.
    pub fn nor(&mut self, inputs: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.gate_infallible(GateKind::Nor, inputs.into_iter().collect())
    }

    /// N-input XOR (odd parity) gate.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are supplied.
    pub fn xor(&mut self, inputs: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.gate_infallible(GateKind::Xor, inputs.into_iter().collect())
    }

    /// N-input XNOR (even parity) gate.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are supplied.
    pub fn xnor(&mut self, inputs: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.gate_infallible(GateKind::Xnor, inputs.into_iter().collect())
    }

    /// Inverter.
    pub fn not(&mut self, input: NodeId) -> NodeId {
        self.gate_infallible(GateKind::Not, vec![input])
    }

    /// Buffer.
    pub fn buf(&mut self, input: NodeId) -> NodeId {
        self.gate_infallible(GateKind::Buf, vec![input])
    }

    /// 2:1 multiplexer: returns `a` when `sel` is false, `b` when true.
    pub fn mux(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.gate_infallible(GateKind::Mux, vec![sel, a, b])
    }

    /// Adds a rising-edge D flip-flop with the given data input and power-on
    /// value; returns the flip-flop's output node.
    pub fn dff(&mut self, d: NodeId, init: bool) -> NodeId {
        let id = self.push(NodeKind::Dff { d, init }, None);
        self.dffs.push(id);
        id
    }

    /// Registers a whole bus through flip-flops initialized to zero.
    pub fn dff_bus(&mut self, d: &[NodeId]) -> Bus {
        d.iter().map(|&b| self.dff(b, false)).collect()
    }

    /// Adds a D flip-flop whose data input is not yet known (it temporarily
    /// feeds back from its own output). Use [`connect_dff_d`] to patch in
    /// the real data input once it has been built — this is how sequential
    /// feedback (e.g. FSM state registers) is expressed in an append-only
    /// netlist.
    ///
    /// [`connect_dff_d`]: Netlist::connect_dff_d
    pub fn dff_placeholder(&mut self, init: bool) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Dff { d: id, init },
            name: None,
            group: self.default_group,
        });
        self.dffs.push(id);
        id
    }

    /// Patches the data input of a flip-flop created with
    /// [`dff_placeholder`](Netlist::dff_placeholder).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a flip-flop.
    pub fn connect_dff_d(&mut self, q: NodeId, d: NodeId) {
        match &mut self.nodes[q.index()].kind {
            NodeKind::Dff { d: slot, .. } => *slot = d,
            _ => panic!("connect_dff_d called on non-flip-flop node {q}"),
        }
    }

    /// Rewires an existing combinational gate in place: `node` keeps its
    /// id, name, and group but computes `kind` over `inputs` from now on.
    /// This is the mutation primitive behind dirty-cone incremental
    /// re-simulation ([`crate::IncrementalSim`]) and the local rewrite
    /// optimization passes — the arena stays append-only for everything
    /// else, so downstream node ids remain stable.
    ///
    /// The rewiring is *not* checked for combinational cycles here; a
    /// cycle introduced by pointing an input at a downstream node is
    /// caught by the next [`topo_order`](Netlist::topo_order) (and thus by
    /// every simulator constructor).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the number of inputs
    /// violates the gate kind's arity.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a combinational gate (inputs, constants,
    /// and flip-flops have no gate function to replace).
    pub fn replace_gate(
        &mut self,
        node: NodeId,
        kind: GateKind,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<(), NetlistError> {
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        let min = kind.min_arity();
        let ok = if kind.is_variadic() { inputs.len() >= min } else { inputs.len() == min };
        if !ok {
            return Err(NetlistError::ArityMismatch {
                gate: kind.name(),
                got: inputs.len(),
                expected: min,
            });
        }
        match &mut self.nodes[node.index()].kind {
            k @ NodeKind::Gate { .. } => *k = NodeKind::Gate { kind, inputs },
            _ => panic!("replace_gate called on non-gate node {node}"),
        }
        Ok(())
    }

    /// Restores a node's functional kind without validation — the undo
    /// primitive of [`crate::NetlistEditor`]'s journal. Only ever called
    /// with a kind that was previously read from the same node.
    pub(crate) fn set_kind_raw(&mut self, node: NodeId, kind: NodeKind) {
        self.nodes[node.index()].kind = kind;
    }

    /// Drops every node appended after the first `keep` nodes — the
    /// rollback primitive of [`crate::NetlistEditor`]. The caller
    /// guarantees no surviving node, output, or input references a
    /// truncated id (the editor only appends gates/flip-flops and never
    /// declares new outputs, so undoing its journaled rewires and output
    /// rebinds first restores that invariant).
    pub(crate) fn truncate_nodes_raw(&mut self, keep: usize) {
        self.nodes.truncate(keep);
        self.dffs.retain(|q| q.index() < keep);
    }

    /// Repoints an existing primary-output binding — the output-rebind
    /// primitive of [`crate::NetlistEditor`]. The caller guarantees the
    /// index is in range and the node exists.
    pub(crate) fn set_output_node_raw(&mut self, index: usize, node: NodeId) {
        self.outputs[index].1 = node;
    }

    /// Declares a named primary output.
    pub fn set_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Declares a bus of primary outputs named `name[0]..`.
    pub fn output_bus(&mut self, name: &str, bus: &[NodeId]) {
        for (i, &b) in bus.iter().enumerate() {
            self.set_output(format!("{name}[{i}]"), b);
        }
    }

    /// Creates (or finds) a power-accounting group with the given name.
    pub fn group(&mut self, name: impl Into<String>) -> GroupId {
        let name = name.into();
        if let Some(i) = self.groups.iter().position(|g| *g == name) {
            return GroupId(i as u32);
        }
        self.groups.push(name);
        GroupId((self.groups.len() - 1) as u32)
    }

    /// Sets the group that subsequently created nodes are attributed to.
    /// Pass `None` to stop attributing.
    pub fn set_default_group(&mut self, group: Option<GroupId>) {
        self.default_group = group;
    }

    /// Runs `f` with the default group set to `name`, restoring it after.
    pub fn with_group<T>(&mut self, name: &str, f: impl FnOnce(&mut Netlist) -> T) -> T {
        let g = self.group(name);
        let prev = self.default_group;
        self.default_group = Some(g);
        let out = f(self);
        self.default_group = prev;
        out
    }

    /// Assigns a node to an accounting group.
    pub fn set_node_group(&mut self, node: NodeId, group: GroupId) {
        self.nodes[node.index()].group = Some(group);
    }

    /// The group a node is attributed to, if any.
    pub fn node_group(&self, node: NodeId) -> Option<GroupId> {
        self.nodes[node.index()].group
    }

    /// The name of a group.
    pub fn group_name(&self, group: GroupId) -> &str {
        &self.groups[group.0 as usize]
    }

    /// Number of accounting groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The node's functional kind.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node.index()].kind
    }

    /// The node's name, if it was given one (primary inputs always are).
    pub fn name(&self, node: NodeId) -> Option<&str> {
        self.nodes[node.index()].name.as_deref()
    }

    /// Assigns a debug name to a node.
    pub fn set_name(&mut self, node: NodeId, name: impl Into<String>) {
        self.nodes[node.index()].name = Some(name.into());
    }

    /// Total number of nodes (inputs + constants + gates + flip-flops).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Named primary outputs, in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Primary output nodes, in declaration order.
    pub fn output_nodes(&self) -> Vec<NodeId> {
        self.outputs.iter().map(|&(_, n)| n).collect()
    }

    /// Flip-flop nodes, in creation order.
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Number of combinational gates.
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n.kind, NodeKind::Gate { .. })).count()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Equivalent-gate area of the netlist under a library.
    pub fn area_gates(&self, lib: &Library) -> f64 {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Gate { kind, .. } => lib.cell(*kind).area_gates,
                NodeKind::Dff { .. } => lib.dff_area_gates,
                _ => 0.0,
            })
            .sum()
    }

    /// Number of fanout pins of every node (how many gate/flip-flop input
    /// pins each node drives), plus primary-output loads counted separately
    /// by the power model.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Gate { inputs, .. } => {
                    for i in inputs {
                        counts[i.index()] += 1;
                    }
                }
                NodeKind::Dff { d, .. } => counts[d.index()] += 1,
                _ => {}
            }
        }
        counts
    }

    /// Fanout adjacency: for each node, the list of nodes that read it.
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut f = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            match &n.kind {
                NodeKind::Gate { inputs, .. } => {
                    for inp in inputs {
                        f[inp.index()].push(id);
                    }
                }
                NodeKind::Dff { d, .. } => f[d.index()].push(id),
                _ => {}
            }
        }
        f
    }

    /// Load capacitance (in femtofarads) presented to each node: the sum of
    /// the input-pin capacitances of its fanouts, a statistical wire load,
    /// and pad load for primary outputs.
    pub fn load_caps_ff(&self, lib: &Library) -> Vec<f64> {
        let mut caps = vec![0.0f64; self.nodes.len()];
        let mut fanout_pins = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Gate { kind, inputs } => {
                    let pin = lib.cell(*kind).input_cap_ff;
                    for i in inputs {
                        caps[i.index()] += pin;
                        fanout_pins[i.index()] += 1;
                    }
                }
                NodeKind::Dff { d, .. } => {
                    caps[d.index()] += lib.dff_d_cap_ff;
                    fanout_pins[d.index()] += 1;
                }
                _ => {}
            }
        }
        for &(_, o) in &self.outputs {
            caps[o.index()] += lib.output_load_ff;
            fanout_pins[o.index()] += 1;
        }
        for (i, c) in caps.iter_mut().enumerate() {
            if fanout_pins[i] > 0 {
                *c += lib.wire_cap_base_ff + lib.wire_cap_per_fanout_ff * fanout_pins[i] as f64;
            }
        }
        caps
    }

    /// A topological order over the combinational part of the netlist.
    /// Constants, primary inputs and flip-flop outputs are sources; gates
    /// appear after all of their fanins.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the gates form a
    /// cycle (flip-flops legally break cycles).
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        // Indegree counts only gate->gate edges; sources (inputs, constants,
        // DFF outputs) start at zero.
        let mut indegree = vec![0u32; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<NodeId> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            match &n.kind {
                NodeKind::Gate { inputs, .. } => {
                    let deg = inputs
                        .iter()
                        .filter(|x| matches!(self.nodes[x.index()].kind, NodeKind::Gate { .. }))
                        .count() as u32;
                    indegree[i] = deg;
                    if deg == 0 {
                        stack.push(NodeId(i as u32));
                    }
                }
                _ => {
                    order.push(NodeId(i as u32));
                }
            }
        }
        let fanouts = self.fanouts();
        let mut emitted = 0usize;
        let gate_total =
            self.nodes.iter().filter(|n| matches!(n.kind, NodeKind::Gate { .. })).count();
        while let Some(id) = stack.pop() {
            order.push(id);
            emitted += 1;
            for &f in &fanouts[id.index()] {
                if let NodeKind::Gate { .. } = self.nodes[f.index()].kind {
                    indegree[f.index()] -= 1;
                    if indegree[f.index()] == 0 {
                        stack.push(f);
                    }
                }
            }
        }
        if emitted != gate_total {
            // Find some gate still blocked to report.
            let node = (0..self.nodes.len())
                .map(|i| NodeId(i as u32))
                .find(|id| {
                    matches!(self.nodes[id.index()].kind, NodeKind::Gate { .. })
                        && indegree[id.index()] > 0
                })
                .expect("a blocked gate must exist when the order is incomplete");
            return Err(NetlistError::CombinationalCycle { node });
        }
        Ok(order)
    }

    /// Logic depth (number of gates on the longest combinational path).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn logic_depth(&self) -> Result<u32, NetlistError> {
        let order = self.topo_order()?;
        let mut depth = vec![0u32; self.nodes.len()];
        let mut max = 0;
        for id in order {
            if let NodeKind::Gate { inputs, .. } = &self.nodes[id.index()].kind {
                let d = 1 + inputs.iter().map(|i| depth[i.index()]).max().unwrap_or(0);
                depth[id.index()] = d;
                max = max.max(d);
            }
        }
        Ok(max)
    }

    /// Arrival time of each node in picoseconds under the library's delay
    /// model (transport delay, zero input arrival).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn arrival_times_ps(&self, lib: &Library) -> Result<Vec<f64>, NetlistError> {
        let order = self.topo_order()?;
        let mut at = vec![0.0f64; self.nodes.len()];
        for id in order {
            if let NodeKind::Gate { kind, inputs } = &self.nodes[id.index()].kind {
                let cell = lib.cell(*kind);
                let gd = cell.delay_ps
                    + cell.delay_per_fanin_ps * (inputs.len().saturating_sub(1)) as f64;
                let worst = inputs.iter().map(|i| at[i.index()]).fold(0.0, f64::max);
                at[id.index()] = worst + gd;
            }
        }
        Ok(at)
    }

    /// Critical-path delay in picoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn critical_path_ps(&self, lib: &Library) -> Result<f64, NetlistError> {
        Ok(self.arrival_times_ps(lib)?.into_iter().fold(0.0, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.and([a, b]);
        nl.set_output("y", y);
        assert_eq!(nl.input_count(), 2);
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.outputs().len(), 1);
        assert_eq!(nl.name(a), Some("a"));
    }

    #[test]
    fn constants_are_shared() {
        let mut nl = Netlist::new();
        let c1 = nl.constant(true);
        let c2 = nl.constant(true);
        let c3 = nl.constant(false);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
    }

    #[test]
    fn arity_validation() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let err = nl.gate(GateKind::And, [a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
        let err = nl.gate(GateKind::Mux, [a, a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn topo_order_is_consistent() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor([a, b]);
        let y = nl.and([x, a]);
        let z = nl.or([y, x]);
        nl.set_output("z", z);
        let order = nl.topo_order().unwrap();
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        assert!(pos[&x] < pos[&y]);
        assert!(pos[&y] < pos[&z]);
        assert!(pos[&a] < pos[&x]);
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        // q feeds back through a gate into its own D input: legal.
        // Build with a placeholder then patch is not supported, so build the
        // feedback with dff-of-gate-of-dff: create dff first via two-step.
        // Here: g = xor(a, q) where q = dff(g). Construct via late binding:
        // netlist nodes are append-only, so make q = dff of a temporary buf
        // chain is impossible; instead test that dff output as gate input
        // topologically sorts (q is a source).
        let q = nl.dff(a, false);
        let g = nl.xor([a, q]);
        nl.set_output("g", g);
        assert!(nl.topo_order().is_ok());
        assert_eq!(nl.dffs().len(), 1);
    }

    #[test]
    fn combinational_cycle_detected() {
        // Hand-craft a cycle by constructing a netlist through the public
        // API is impossible (append-only), which is itself the safety
        // property; verify depth on an acyclic circuit instead and that a
        // diamond has depth 2.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let x = nl.not(a);
        let y = nl.not(a);
        let z = nl.and([x, y]);
        nl.set_output("z", z);
        assert_eq!(nl.logic_depth().unwrap(), 2);
    }

    #[test]
    fn load_caps_reflect_fanout() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.and([a, b]);
        let _y1 = nl.not(x);
        let _y2 = nl.not(x);
        let lib = Library::default();
        let caps = nl.load_caps_ff(&lib);
        // x drives two inverter pins; a drives one AND pin.
        assert!(caps[x.index()] > caps[a.index()]);
    }

    #[test]
    fn groups_attribute_nodes() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.with_group("exec", |nl| nl.and([a, b]));
        let y = nl.or([a, b]);
        assert_eq!(nl.group_name(nl.node_group(x).unwrap()), "exec");
        assert!(nl.node_group(y).is_none());
    }

    #[test]
    fn critical_path_grows_with_depth() {
        let lib = Library::default();
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let mut x = nl.and([a, b]);
        let d1 = nl.critical_path_ps(&lib).unwrap();
        for _ in 0..4 {
            x = nl.xor([x, b]);
        }
        nl.set_output("x", x);
        let d2 = nl.critical_path_ps(&lib).unwrap();
        assert!(d2 > d1);
    }
}
