//! Probabilistic power estimation: signal probabilities and switching
//! activities propagated through the netlist under the spatial-independence
//! assumption (the probabilistic-simulation family of the survey's refs
//! \[27\]–\[31\]).
//!
//! Each signal carries a stationary pair model `(p, d)`: `p` is the
//! probability of being 1 and `d` the probability of toggling between
//! consecutive cycles (zero-delay semantics, so `d` is also the expected
//! transitions per cycle). Under input independence the propagation below
//! is *exact* for fanout-free circuits; reconvergent fanout introduces the
//! correlation error that the survey's sampling-based methods address.

use crate::error::NetlistError;
use crate::library::Library;
use crate::netlist::{Netlist, NodeId, NodeKind};

/// Signal statistics of one node.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SignalStats {
    /// Probability that the signal is logic 1.
    pub probability: f64,
    /// Probability of a (zero-delay) transition between consecutive cycles.
    pub density: f64,
}

impl SignalStats {
    /// Statistics of an independent fair coin re-drawn every cycle.
    pub fn uniform() -> Self {
        SignalStats { probability: 0.5, density: 0.5 }
    }

    /// Joint probability of being 1 in two consecutive cycles, assuming
    /// stationarity: `P11 = p - d/2`.
    pub fn p11(&self) -> f64 {
        (self.probability - self.density / 2.0).max(0.0)
    }

    /// Joint probability of being 0 in two consecutive cycles.
    pub fn p00(&self) -> f64 {
        (1.0 - self.probability - self.density / 2.0).max(0.0)
    }
}

/// Probabilistic analysis of a netlist: per-node signal probability and
/// switching activity, from which an analytic power estimate is derived.
#[derive(Debug, Clone)]
pub struct ProbabilityAnalysis {
    stats: Vec<SignalStats>,
}

impl ProbabilityAnalysis {
    /// Propagates the given primary-input statistics through the netlist.
    ///
    /// `input_stats` must contain one entry per primary input, in
    /// declaration order. Flip-flop outputs are fixed-point iterated.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `input_stats` has the
    /// wrong length, or [`NetlistError::CombinationalCycle`] if the netlist
    /// is cyclic.
    pub fn propagate(netlist: &Netlist, input_stats: &[SignalStats]) -> Result<Self, NetlistError> {
        if input_stats.len() != netlist.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                got: input_stats.len(),
                expected: netlist.input_count(),
            });
        }
        let order = netlist.topo_order()?;
        let mut stats = vec![SignalStats::default(); netlist.node_count()];
        for (i, &inp) in netlist.inputs().iter().enumerate() {
            stats[inp.index()] = input_stats[i];
        }
        for id in netlist.node_ids() {
            match netlist.kind(id) {
                NodeKind::Const(v) => {
                    stats[id.index()] =
                        SignalStats { probability: if *v { 1.0 } else { 0.0 }, density: 0.0 }
                }
                NodeKind::Dff { .. } => stats[id.index()] = SignalStats::uniform(),
                _ => {}
            }
        }
        // Fixed point over sequential feedback.
        for _ in 0..50 {
            for &id in &order {
                if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
                    let fanin: Vec<SignalStats> = inputs.iter().map(|f| stats[f.index()]).collect();
                    stats[id.index()] = propagate_gate(*kind, &fanin);
                }
            }
            let mut delta = 0.0f64;
            for &q in netlist.dffs() {
                if let NodeKind::Dff { d, .. } = netlist.kind(q) {
                    // q is d delayed one cycle: identical stationary stats.
                    let new = stats[d.index()];
                    delta = delta
                        .max((new.probability - stats[q.index()].probability).abs())
                        .max((new.density - stats[q.index()].density).abs());
                    stats[q.index()] = new;
                }
            }
            if delta < 1e-10 {
                break;
            }
        }
        Ok(ProbabilityAnalysis { stats })
    }

    /// Propagates uniform random input statistics (`p = 0.5`, toggle
    /// probability 0.5).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist is cyclic.
    pub fn propagate_uniform(netlist: &Netlist) -> Result<Self, NetlistError> {
        let stats = vec![SignalStats::uniform(); netlist.input_count()];
        Self::propagate(netlist, &stats)
    }

    /// The statistics of one node.
    pub fn stats(&self, node: NodeId) -> SignalStats {
        self.stats[node.index()]
    }

    /// Analytic average-power estimate in microwatts: `sum(0.5 Vdd^2 C_i
    /// D_i) * f` plus internal energies weighted by densities and the clock
    /// tree contribution.
    pub fn power_uw(&self, netlist: &Netlist, lib: &Library) -> f64 {
        let caps = netlist.load_caps_ff(lib);
        let period_s = lib.clock_period_ns() * 1e-9;
        let mut fj_per_cycle = 0.0;
        for id in netlist.node_ids() {
            let d = self.stats[id.index()].density;
            if d == 0.0 {
                continue;
            }
            let mut e = lib.switching_energy_fj(caps[id.index()]) * d;
            match netlist.kind(id) {
                NodeKind::Gate { kind, .. } => e += lib.cell(*kind).internal_energy_fj * d,
                NodeKind::Dff { .. } => e += lib.dff_internal_energy_fj * d,
                _ => {}
            }
            fj_per_cycle += e;
        }
        let n_dff = netlist.dffs().len() as f64;
        fj_per_cycle += lib.switching_energy_fj(lib.dff_clk_cap_ff) * 2.0 * n_dff
            + lib.dff_clock_energy_fj * n_dff;
        fj_per_cycle * 1e-15 / period_s * 1e6
    }
}

/// Propagate `(p, d)` across one gate assuming independent, stationary
/// fanins. Exact for every gate kind.
fn propagate_gate(kind: crate::library::GateKind, fanin: &[SignalStats]) -> SignalStats {
    use crate::library::GateKind::*;
    let clamp = |s: SignalStats| SignalStats {
        probability: s.probability.clamp(0.0, 1.0),
        density: s.density.clamp(0.0, 1.0),
    };
    let out = match kind {
        Buf => fanin[0],
        Not => SignalStats { probability: 1.0 - fanin[0].probability, density: fanin[0].density },
        And | Nand => {
            let p: f64 = fanin.iter().map(|s| s.probability).product();
            let p11: f64 = fanin.iter().map(|s| s.p11()).product();
            let d = 2.0 * (p - p11);
            let p = if kind == And { p } else { 1.0 - p };
            SignalStats { probability: p, density: d }
        }
        Or | Nor => {
            let q: f64 = fanin.iter().map(|s| 1.0 - s.probability).product();
            let p00: f64 = fanin.iter().map(|s| s.p00()).product();
            let d = 2.0 * (q - p00);
            let p = if kind == Or { 1.0 - q } else { q };
            SignalStats { probability: p, density: d }
        }
        Xor | Xnor => {
            // Probability by pairwise combination; the output toggles iff an
            // odd number of inputs toggle.
            let mut p = 0.0;
            for s in fanin {
                p = p * (1.0 - s.probability) + (1.0 - p) * s.probability;
            }
            let prod: f64 = fanin.iter().map(|s| 1.0 - 2.0 * s.density).product();
            let d = (1.0 - prod) / 2.0;
            SignalStats { probability: if kind == Xor { p } else { 1.0 - p }, density: d }
        }
        Mux => mux_exact(fanin[0], fanin[1], fanin[2]),
    };
    clamp(out)
}

/// Exact two-cycle enumeration for the 2:1 mux `y = s ? b : a`.
fn mux_exact(s: SignalStats, a: SignalStats, b: SignalStats) -> SignalStats {
    // Pair distribution of one signal: [P00, P01, P10, P11].
    let pairs = |x: SignalStats| [x.p00(), x.density / 2.0, x.density / 2.0, x.p11()];
    let (ps, pa, pb) = (pairs(s), pairs(a), pairs(b));
    let bit = |pair_idx: usize, cycle: usize| -> bool {
        if cycle == 0 {
            pair_idx & 2 != 0
        } else {
            pair_idx & 1 != 0
        }
    };
    let mut p1 = 0.0;
    let mut toggle = 0.0;
    for is in 0..4 {
        for ia in 0..4 {
            for ib in 0..4 {
                let w = ps[is] * pa[ia] * pb[ib];
                if w == 0.0 {
                    continue;
                }
                let y0 = if bit(is, 0) { bit(ib, 0) } else { bit(ia, 0) };
                let y1 = if bit(is, 1) { bit(ib, 1) } else { bit(ia, 1) };
                if y1 {
                    p1 += w;
                }
                if y0 != y1 {
                    toggle += w;
                }
            }
        }
    }
    SignalStats { probability: p1, density: toggle }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::sim::ZeroDelaySim;
    use crate::streams;

    #[test]
    fn and_gate_probability_and_density() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.and([a, b]);
        nl.set_output("y", y);
        let pa = ProbabilityAnalysis::propagate_uniform(&nl).unwrap();
        assert!((pa.stats(y).probability - 0.25).abs() < 1e-12);
        // For iid uniform inputs: P(toggle) = 2 * (1/4 - 1/16) = 3/8.
        assert!((pa.stats(y).density - 0.375).abs() < 1e-12);
    }

    #[test]
    fn xor_gate_probability_and_density() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.xor([a, b]);
        nl.set_output("y", y);
        let pa = ProbabilityAnalysis::propagate_uniform(&nl).unwrap();
        assert!((pa.stats(y).probability - 0.5).abs() < 1e-12);
        assert!((pa.stats(y).density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_inputs_have_zero_density() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let c = nl.constant(true);
        let y = nl.and([a, c]);
        nl.set_output("y", y);
        let pa = ProbabilityAnalysis::propagate_uniform(&nl).unwrap();
        assert!((pa.stats(y).probability - 0.5).abs() < 1e-12);
        assert!((pa.stats(y).density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mux_matches_composition() {
        // y = s ? b : a with uniform inputs: p = 0.5; density measured
        // against simulation below.
        let mut nl = Netlist::new();
        let s = nl.input("s");
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.mux(s, a, b);
        nl.set_output("y", y);
        let pa = ProbabilityAnalysis::propagate_uniform(&nl).unwrap();
        assert!((pa.stats(y).probability - 0.5).abs() < 1e-12);
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(streams::random(31, 3).take(100_000)).expect("width matches");
        let measured = act.node_activity(y);
        assert!(
            (pa.stats(y).density - measured).abs() < 0.01,
            "analytic {} vs measured {}",
            pa.stats(y).density,
            measured
        );
    }

    #[test]
    fn estimate_tracks_simulation_on_tree_circuit() {
        // A fanout-free tree: independence holds exactly, so the analytic
        // estimate should closely match simulation.
        let mut nl = Netlist::new();
        let ins = nl.input_bus("x", 8);
        let g1 = nl.and([ins[0], ins[1]]);
        let g2 = nl.or([ins[2], ins[3]]);
        let g3 = nl.xor([ins[4], ins[5]]);
        let g4 = nl.nand([ins[6], ins[7]]);
        let g5 = nl.or([g1, g2]);
        let g6 = nl.and([g3, g4]);
        let y = nl.xor([g5, g6]);
        nl.set_output("y", y);
        let lib = crate::Library::default();
        let pa = ProbabilityAnalysis::propagate_uniform(&nl).unwrap();
        let est = pa.power_uw(&nl, &lib);
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(streams::random(9, 8).take(50_000)).expect("width matches");
        let measured = act.power(&nl, &lib).total_power_uw();
        let rel = (est - measured).abs() / measured;
        assert!(rel < 0.03, "estimate {est:.3} vs measured {measured:.3} (rel {rel:.3})");
    }

    #[test]
    fn biased_inputs_propagate() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.or([a, b]);
        nl.set_output("y", y);
        // p(a)=0.9 iid => d(a) = 2*0.9*0.1 = 0.18.
        let s = SignalStats { probability: 0.9, density: 0.18 };
        let pa = ProbabilityAnalysis::propagate(&nl, &[s, s]).unwrap();
        assert!((pa.stats(y).probability - 0.99).abs() < 1e-12);
    }

    #[test]
    fn input_stats_length_validated() {
        let mut nl = Netlist::new();
        let _ = nl.input("a");
        let err = ProbabilityAnalysis::propagate(&nl, &[]).unwrap_err();
        assert!(matches!(err, NetlistError::InputWidthMismatch { .. }));
    }

    #[test]
    fn sequential_fixed_point_converges() {
        let mut nl = Netlist::new();
        let en = nl.input("en");
        let t = nl.dff(en, false);
        let q = nl.xor([t, en]);
        nl.set_output("q", q);
        let pa = ProbabilityAnalysis::propagate_uniform(&nl).unwrap();
        let s = pa.stats(q);
        assert!(s.probability > 0.0 && s.probability < 1.0);
        assert!(s.density > 0.0 && s.density <= 1.0);
    }
}
