use std::error::Error;
use std::fmt;

use crate::netlist::NodeId;

/// The external netlist format a parse error originated from.
///
/// Carried by the `Parse*` variants of [`NetlistError`] so a caller (or a
/// log line) can say *which* front-end rejected the input. The formats
/// themselves are specified normatively in `docs/FORMATS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFormat {
    /// The native line-oriented `.nl` interchange format of [`crate::io`].
    NativeNl,
    /// The structural-Verilog subset of [`crate::ingest::parse_verilog`].
    Verilog,
    /// The EDIF 2.0.0 subset of [`crate::ingest::parse_edif`].
    Edif,
}

impl SourceFormat {
    /// Lowercase human-readable name (`"nl"`, `"verilog"`, `"edif"`).
    pub fn name(self) -> &'static str {
        match self {
            SourceFormat::NativeNl => "nl",
            SourceFormat::Verilog => "verilog",
            SourceFormat::Edif => "edif",
        }
    }
}

impl fmt::Display for SourceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A source position plus the offending line of text, carried by every
/// parse-error variant of [`NetlistError`].
///
/// `line` and `col` are 1-based; `snippet` is the source line the error
/// points into (trimmed of trailing whitespace, truncated to 120 chars)
/// so error messages are self-contained even when the input file is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrcLoc {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters).
    pub col: usize,
    /// The source line the error points into.
    pub snippet: String,
}

impl fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: `{}`", self.line, self.col, self.snippet)
    }
}

/// Errors produced while building or analyzing a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// The combinational part of the netlist contains a cycle through the
    /// given node, so no topological evaluation order exists.
    CombinationalCycle {
        /// A node participating in the cycle.
        node: NodeId,
    },
    /// A gate was constructed with the wrong number of inputs.
    ArityMismatch {
        /// The offending gate kind, as a human-readable name.
        gate: &'static str,
        /// Number of inputs supplied.
        got: usize,
        /// Number of inputs expected (minimum for variadic gates).
        expected: usize,
    },
    /// Two buses that must have equal widths do not.
    WidthMismatch {
        /// Width of the first operand.
        left: usize,
        /// Width of the second operand.
        right: usize,
    },
    /// A vector supplied to a simulator does not match the input count.
    InputWidthMismatch {
        /// Number of bits supplied.
        got: usize,
        /// Number of primary inputs of the netlist.
        expected: usize,
    },
    /// An empty stream or workload was supplied where at least one vector is
    /// required.
    EmptyStream,
    /// The requested worker-thread count is invalid (zero, or an
    /// `HLPOWER_THREADS` value that does not parse as a positive integer).
    InvalidThreadCount {
        /// Human-readable description of the offending configuration.
        reason: String,
    },
    /// Two [`crate::Activity`] records from different netlists (different
    /// node counts) were merged.
    ActivitySizeMismatch {
        /// Node count of the record being merged into.
        left: usize,
        /// Node count of the record being merged from.
        right: usize,
    },
    /// A combinational-only engine was asked to simulate a sequential
    /// netlist.
    NotCombinational {
        /// Number of flip-flops in the offending netlist.
        dffs: usize,
    },
    /// A [`crate::TimedActivity`] records more functional transitions than
    /// total transitions on a node, so the glitch count would underflow.
    /// This indicates the record was assembled from mismatched runs (e.g.
    /// counters taken mid-stream or merged across different stimuli).
    GlitchUnderflow {
        /// Index of the offending node.
        node: usize,
        /// Total transitions recorded for the node.
        toggles: u64,
        /// Functional transitions recorded for the node.
        functional: u64,
    },
    /// A [`crate::TimedActivity`]'s functional-transition vector does not
    /// have one entry per node of its toggle vector.
    FunctionalSizeMismatch {
        /// Length of the toggle vector.
        toggles: usize,
        /// Length of the functional vector.
        functional: usize,
    },
    /// An external netlist file violated its format's grammar: an
    /// unexpected token, a malformed declaration, or (for instance
    /// networks) a combinational cycle that makes node construction
    /// impossible. `message` says what was expected.
    ParseSyntax {
        /// The front-end that rejected the input.
        format: SourceFormat,
        /// Where in the source the violation was detected.
        at: SrcLoc,
        /// What was expected versus found.
        message: String,
    },
    /// An identifier (net, instance, or port name) was referenced but
    /// never declared or driven in a context that requires a declaration.
    ParseUnknownName {
        /// The front-end that rejected the input.
        format: SourceFormat,
        /// Where the undeclared name was referenced.
        at: SrcLoc,
        /// The undeclared name.
        name: String,
    },
    /// An instance references a cell (module) name outside the supported
    /// primitive/library-cell vocabulary (see `docs/FORMATS.md` for the
    /// accepted cell names and the suffix-stripping rule).
    ParseUnknownCell {
        /// The front-end that rejected the input.
        format: SourceFormat,
        /// Where the instance appears.
        at: SrcLoc,
        /// The unrecognized cell name, as written.
        cell: String,
    },
    /// The input uses a construct that is valid in the full source
    /// language but outside the structural subset this crate ingests
    /// (e.g. behavioral Verilog, expression assigns, hierarchical EDIF).
    ParseUnsupported {
        /// The front-end that rejected the input.
        format: SourceFormat,
        /// Where the construct appears.
        at: SrcLoc,
        /// A short description of the unsupported construct.
        construct: String,
    },
    /// A net is driven by more than one source (two instance outputs,
    /// or an instance output and a continuous assign).
    ParseMultipleDrivers {
        /// The front-end that rejected the input.
        format: SourceFormat,
        /// Where the second driver appears.
        at: SrcLoc,
        /// The multiply-driven net name.
        name: String,
    },
    /// A mutated netlist handed to [`crate::IncrementalSim::resim`] is not
    /// an incremental edit of the recorded base netlist: its primary
    /// inputs differ, it contains flip-flops, nodes were removed, or a
    /// pre-existing node changed without being declared in the change set.
    IncrementalMismatch {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
    /// A net is read (by an instance pin or a primary output) but has no
    /// driver: no instance output, assign, constant, or input port.
    ParseUndriven {
        /// The front-end that rejected the input.
        format: SourceFormat,
        /// Where the undriven net is read.
        at: SrcLoc,
        /// The undriven net name.
        name: String,
    },
    /// A pre-compiled [`crate::CompiledKernel`] was paired with a netlist
    /// it was not compiled from (node counts differ). Kernel caches must
    /// key kernels by the exact netlist they were built from.
    KernelMismatch {
        /// Node count of the netlist handed to the simulator.
        expected: usize,
        /// Node count the kernel was compiled for.
        got: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            NetlistError::ArityMismatch { gate, got, expected } => {
                write!(f, "gate {gate} built with {got} inputs, expected {expected}")
            }
            NetlistError::WidthMismatch { left, right } => {
                write!(f, "bus width mismatch: {left} vs {right}")
            }
            NetlistError::InputWidthMismatch { got, expected } => {
                write!(f, "input vector has {got} bits, netlist has {expected} primary inputs")
            }
            NetlistError::EmptyStream => write!(f, "input stream produced no vectors"),
            NetlistError::InvalidThreadCount { reason } => {
                write!(f, "invalid worker-thread count: {reason}")
            }
            NetlistError::ActivitySizeMismatch { left, right } => {
                write!(f, "activity size mismatch: {left} vs {right} nodes")
            }
            NetlistError::NotCombinational { dffs } => {
                write!(f, "netlist is sequential ({dffs} flip-flops), expected combinational")
            }
            NetlistError::GlitchUnderflow { node, toggles, functional } => {
                write!(
                    f,
                    "glitch count underflow on node {node}: {toggles} toggles < {functional} \
                     functional transitions"
                )
            }
            NetlistError::FunctionalSizeMismatch { toggles, functional } => {
                write!(
                    f,
                    "timed activity size mismatch: {toggles} toggle entries vs {functional} \
                     functional entries"
                )
            }
            NetlistError::IncrementalMismatch { reason } => {
                write!(f, "netlist is not an incremental edit of the recorded base: {reason}")
            }
            NetlistError::ParseSyntax { format, at, message } => {
                write!(f, "{format} parse error at {at}: {message}")
            }
            NetlistError::ParseUnknownName { format, at, name } => {
                write!(f, "{format} parse error at {at}: unknown name '{name}'")
            }
            NetlistError::ParseUnknownCell { format, at, cell } => {
                write!(f, "{format} parse error at {at}: unknown cell '{cell}'")
            }
            NetlistError::ParseUnsupported { format, at, construct } => {
                write!(f, "{format} parse error at {at}: unsupported construct: {construct}")
            }
            NetlistError::ParseMultipleDrivers { format, at, name } => {
                write!(f, "{format} parse error at {at}: net '{name}' has multiple drivers")
            }
            NetlistError::ParseUndriven { format, at, name } => {
                write!(f, "{format} parse error at {at}: net '{name}' is read but never driven")
            }
            NetlistError::KernelMismatch { expected, got } => {
                write!(
                    f,
                    "compiled kernel was built for a {got}-node netlist, \
                     but the netlist has {expected} nodes"
                )
            }
        }
    }
}

impl Error for NetlistError {}
