use std::error::Error;
use std::fmt;

use crate::netlist::NodeId;

/// Errors produced while building or analyzing a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// The combinational part of the netlist contains a cycle through the
    /// given node, so no topological evaluation order exists.
    CombinationalCycle {
        /// A node participating in the cycle.
        node: NodeId,
    },
    /// A gate was constructed with the wrong number of inputs.
    ArityMismatch {
        /// The offending gate kind, as a human-readable name.
        gate: &'static str,
        /// Number of inputs supplied.
        got: usize,
        /// Number of inputs expected (minimum for variadic gates).
        expected: usize,
    },
    /// Two buses that must have equal widths do not.
    WidthMismatch {
        /// Width of the first operand.
        left: usize,
        /// Width of the second operand.
        right: usize,
    },
    /// A vector supplied to a simulator does not match the input count.
    InputWidthMismatch {
        /// Number of bits supplied.
        got: usize,
        /// Number of primary inputs of the netlist.
        expected: usize,
    },
    /// An empty stream or workload was supplied where at least one vector is
    /// required.
    EmptyStream,
    /// The requested worker-thread count is invalid (zero, or an
    /// `HLPOWER_THREADS` value that does not parse as a positive integer).
    InvalidThreadCount {
        /// Human-readable description of the offending configuration.
        reason: String,
    },
    /// Two [`crate::Activity`] records from different netlists (different
    /// node counts) were merged.
    ActivitySizeMismatch {
        /// Node count of the record being merged into.
        left: usize,
        /// Node count of the record being merged from.
        right: usize,
    },
    /// A combinational-only engine was asked to simulate a sequential
    /// netlist.
    NotCombinational {
        /// Number of flip-flops in the offending netlist.
        dffs: usize,
    },
    /// A [`crate::TimedActivity`] records more functional transitions than
    /// total transitions on a node, so the glitch count would underflow.
    /// This indicates the record was assembled from mismatched runs (e.g.
    /// counters taken mid-stream or merged across different stimuli).
    GlitchUnderflow {
        /// Index of the offending node.
        node: usize,
        /// Total transitions recorded for the node.
        toggles: u64,
        /// Functional transitions recorded for the node.
        functional: u64,
    },
    /// A [`crate::TimedActivity`]'s functional-transition vector does not
    /// have one entry per node of its toggle vector.
    FunctionalSizeMismatch {
        /// Length of the toggle vector.
        toggles: usize,
        /// Length of the functional vector.
        functional: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            NetlistError::ArityMismatch { gate, got, expected } => {
                write!(f, "gate {gate} built with {got} inputs, expected {expected}")
            }
            NetlistError::WidthMismatch { left, right } => {
                write!(f, "bus width mismatch: {left} vs {right}")
            }
            NetlistError::InputWidthMismatch { got, expected } => {
                write!(f, "input vector has {got} bits, netlist has {expected} primary inputs")
            }
            NetlistError::EmptyStream => write!(f, "input stream produced no vectors"),
            NetlistError::InvalidThreadCount { reason } => {
                write!(f, "invalid worker-thread count: {reason}")
            }
            NetlistError::ActivitySizeMismatch { left, right } => {
                write!(f, "activity size mismatch: {left} vs {right} nodes")
            }
            NetlistError::NotCombinational { dffs } => {
                write!(f, "netlist is sequential ({dffs} flip-flops), expected combinational")
            }
            NetlistError::GlitchUnderflow { node, toggles, functional } => {
                write!(
                    f,
                    "glitch count underflow on node {node}: {toggles} toggles < {functional} \
                     functional transitions"
                )
            }
            NetlistError::FunctionalSizeMismatch { toggles, functional } => {
                write!(
                    f,
                    "timed activity size mismatch: {toggles} toggle entries vs {functional} \
                     functional entries"
                )
            }
        }
    }
}

impl Error for NetlistError {}
