//! Per-node energy attribution: the power-profiler backend behind
//! `repro --profile`.
//!
//! [`attribute`] rolls each node's switched-capacitance energy up the
//! netlist's naming hierarchy — bus names (`x[i]` → bus `x`) and
//! power-accounting groups — into an [`AttributionReport`]: a hotspot
//! list (every node, sorted by energy), per-group and per-bus rollups,
//! and a collapsed-stack rendering for flamegraph tools.
//!
//! The attribution replicates `PowerReport::from_activity`'s arithmetic
//! node-for-node in the same iteration order, so its totals reconcile
//! with [`PowerReport::total_switched_cap_pf`] to ≤1e-9 relative error
//! ([`AttributionReport::reconcile`] asserts this) — the profiler doubles
//! as a cross-check on the power accounting itself.

use std::collections::BTreeMap;

use crate::library::Library;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::power::PowerReport;
use crate::sim::Activity;

/// Energy attributed to one netlist node over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAttribution {
    /// Dense node index (`NodeId::index`).
    pub index: usize,
    /// Display label: the node's own name, else its first primary-output
    /// name, else `<kind>:n<index>`.
    pub label: String,
    /// Accounting group (`"(ungrouped)"` when the node has none).
    pub group: String,
    /// Bus prefix when the label has the bus shape `name[i]`.
    pub bus: Option<String>,
    /// Transitions over the run.
    pub toggles: u64,
    /// Switched load capacitance over the run, in fF (`cap × toggles`).
    pub switched_cap_ff: f64,
    /// Dynamic energy over the run, in fJ (net + cell-internal).
    pub energy_fj: f64,
}

/// One rollup bucket (a group or a bus).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RollupEntry {
    /// Nodes contributing to this bucket.
    pub nodes: usize,
    /// Transitions over the run.
    pub toggles: u64,
    /// Switched load capacitance over the run, in fF.
    pub switched_cap_ff: f64,
    /// Dynamic energy over the run, in fJ.
    pub energy_fj: f64,
}

/// The full per-node energy attribution of one [`Activity`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// Cycles the underlying activity covers.
    pub cycles: u64,
    /// Every toggling node, sorted by energy (descending, node index as
    /// the deterministic tie-break).
    pub nodes: Vec<NodeAttribution>,
    /// Per-group rollups, including the `"registers/clock"` pseudo-group
    /// carrying the clock-tree term.
    pub by_group: BTreeMap<String, RollupEntry>,
    /// Per-bus rollups (only nodes named like `x[i]`).
    pub by_bus: BTreeMap<String, RollupEntry>,
    /// Clock-tree energy over the run, in fJ (attributed to
    /// `"registers/clock"`, exactly as the [`PowerReport`] does).
    pub clock_energy_fj: f64,
    /// Clock-tree switched capacitance over the run, in fF.
    pub clock_switched_cap_ff: f64,
    /// Total switched capacitance over the run, in fF, accumulated in
    /// the same node order as `PowerReport::from_activity`.
    pub total_switched_cap_ff: f64,
    /// Total dynamic energy over the run, in fJ (net + internal + clock).
    pub total_energy_fj: f64,
}

impl AttributionReport {
    /// Total switched capacitance over the run in picofarads — the
    /// quantity that must reconcile with
    /// [`PowerReport::total_switched_cap_pf`].
    pub fn total_switched_cap_pf(&self) -> f64 {
        self.total_switched_cap_ff / 1000.0
    }

    /// The `n` hottest nodes.
    pub fn top_n(&self, n: usize) -> &[NodeAttribution] {
        &self.nodes[..n.min(self.nodes.len())]
    }

    /// Sum of the per-group energies, in fJ (equals
    /// [`total_energy_fj`](Self::total_energy_fj) up to f64 reassociation).
    pub fn group_energy_sum_fj(&self) -> f64 {
        self.by_group.values().map(|g| g.energy_fj).sum()
    }

    /// Checks that this attribution reconciles with a [`PowerReport`] of
    /// the same activity: the total switched capacitance and the
    /// per-group rollup sum must each match to `1e-9` relative error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn reconcile(&self, report: &PowerReport) -> Result<(), String> {
        let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
        let total_pf = report.total_switched_cap_pf();
        if rel(self.total_switched_cap_pf(), total_pf) > 1e-9 {
            return Err(format!(
                "total switched cap: attribution {} pF vs power report {} pF",
                self.total_switched_cap_pf(),
                total_pf
            ));
        }
        let group_sum_pf: f64 =
            self.by_group.values().map(|g| g.switched_cap_ff).sum::<f64>() / 1000.0;
        if rel(group_sum_pf, total_pf) > 1e-9 {
            return Err(format!(
                "per-group rollup: sum {group_sum_pf} pF vs power report {total_pf} pF"
            ));
        }
        let energy_sum = self.group_energy_sum_fj();
        if rel(energy_sum, self.total_energy_fj) > 1e-9 {
            return Err(format!(
                "per-group energy: sum {energy_sum} fJ vs total {} fJ",
                self.total_energy_fj
            ));
        }
        Ok(())
    }

    /// Renders the report in collapsed-stack format — one
    /// `group;bus;label energy_fj` line per node (plus the clock term) —
    /// the input format of standard flamegraph tooling.
    ///
    /// Energies are rounded to integer femtojoules (collapsed-stack
    /// values must be integers); nodes rounding to zero are kept at 1 so
    /// no toggling node disappears from the graph.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            let bus = n.bus.as_deref().unwrap_or("(scalar)");
            let fj = (n.energy_fj.round() as u64).max(1);
            out.push_str(&format!("{};{};{} {}\n", n.group, bus, n.label, fj));
        }
        if self.clock_energy_fj > 0.0 {
            let fj = (self.clock_energy_fj.round() as u64).max(1);
            out.push_str(&format!("registers/clock;(clock);clk_tree {fj}\n"));
        }
        out
    }
}

/// Extracts the bus prefix from a `name[i]` label.
fn bus_of(label: &str) -> Option<String> {
    let open = label.find('[')?;
    if open == 0 || !label.ends_with(']') {
        return None;
    }
    label[open + 1..label.len() - 1].parse::<usize>().ok()?;
    Some(label[..open].to_string())
}

/// Output names as a label fallback: primary-output names (e.g. the
/// `sum[i]` of an `output_bus`) live in the output list, not on the
/// driving node. First declaration wins for multiply-named drivers.
fn output_label_map(netlist: &Netlist) -> std::collections::HashMap<usize, &str> {
    let mut out_names: std::collections::HashMap<usize, &str> = std::collections::HashMap::new();
    for (name, id) in netlist.outputs() {
        out_names.entry(id.index()).or_insert(name.as_str());
    }
    out_names
}

/// The per-node attribution arithmetic shared by [`attribute`] and
/// [`attribute_delta`]: load-capacitance switching energy plus the
/// driving cell's internal energy, exactly as
/// `PowerReport::from_activity` computes it. The caller has already
/// filtered out zero-toggle nodes.
fn attribute_node(
    netlist: &Netlist,
    lib: &Library,
    caps: &[f64],
    out_names: &std::collections::HashMap<usize, &str>,
    id: NodeId,
    toggles_u: u64,
) -> NodeAttribution {
    let toggles = toggles_u as f64;
    let cap = caps[id.index()];
    let e_net = lib.switching_energy_fj(cap) * toggles;
    let e_int = match netlist.kind(id) {
        NodeKind::Gate { kind, .. } => lib.cell(*kind).internal_energy_fj * toggles,
        NodeKind::Dff { .. } => lib.dff_internal_energy_fj * toggles,
        _ => 0.0,
    };
    let label = match netlist.name(id).or_else(|| out_names.get(&id.index()).copied()) {
        Some(name) => name.to_string(),
        None => {
            let kind = match netlist.kind(id) {
                NodeKind::Gate { kind, .. } => kind.name(),
                NodeKind::Dff { .. } => "dff",
                NodeKind::Input => "input",
                NodeKind::Const(_) => "const",
            };
            format!("{kind}:n{}", id.index())
        }
    };
    let group = netlist
        .node_group(id)
        .map(|g| netlist.group_name(g).to_string())
        .unwrap_or_else(|| "(ungrouped)".to_string());
    let bus = bus_of(&label);
    NodeAttribution {
        index: id.index(),
        label,
        group,
        bus,
        toggles: toggles_u,
        switched_cap_ff: cap * toggles,
        energy_fj: e_net + e_int,
    }
}

/// Aggregates finished per-node attributions (already in ascending node
/// order) plus the clock-tree term into a report. Accumulation happens
/// in node-index order — the same order `PowerReport::from_activity`
/// uses — so the f64 totals are bit-identical however the per-node
/// entries were produced.
fn assemble_report(
    netlist: &Netlist,
    lib: &Library,
    act: &Activity,
    mut nodes: Vec<NodeAttribution>,
) -> AttributionReport {
    let cycles = act.cycles.max(1) as f64;
    let mut by_group: BTreeMap<String, RollupEntry> = BTreeMap::new();
    let mut by_bus: BTreeMap<String, RollupEntry> = BTreeMap::new();
    let mut total_switched_cap_ff = 0.0f64;
    let mut total_energy_fj = 0.0f64;

    for n in &nodes {
        total_switched_cap_ff += n.switched_cap_ff;
        total_energy_fj += n.energy_fj;
        let g = by_group.entry(n.group.clone()).or_default();
        g.nodes += 1;
        g.toggles += n.toggles;
        g.switched_cap_ff += n.switched_cap_ff;
        g.energy_fj += n.energy_fj;
        if let Some(b) = &n.bus {
            let e = by_bus.entry(b.clone()).or_default();
            e.nodes += 1;
            e.toggles += n.toggles;
            e.switched_cap_ff += n.switched_cap_ff;
            e.energy_fj += n.energy_fj;
        }
    }

    // Clock tree, exactly as the PowerReport accounts it: two transitions
    // per cycle per DFF clock pin plus per-edge internal energy.
    let n_dff = netlist.dffs().len() as f64;
    let clk_cap_per_cycle = n_dff * lib.dff_clk_cap_ff * 2.0;
    let clk_fj_per_cycle =
        lib.switching_energy_fj(lib.dff_clk_cap_ff) * 2.0 * n_dff + lib.dff_clock_energy_fj * n_dff;
    let clock_switched_cap_ff = clk_cap_per_cycle * cycles;
    let clock_energy_fj = clk_fj_per_cycle * cycles;
    if n_dff > 0.0 {
        let g = by_group.entry("registers/clock".to_string()).or_default();
        g.switched_cap_ff += clock_switched_cap_ff;
        g.energy_fj += clock_energy_fj;
        total_switched_cap_ff += clock_switched_cap_ff;
        total_energy_fj += clock_energy_fj;
    }

    nodes.sort_by(|a, b| b.energy_fj.total_cmp(&a.energy_fj).then_with(|| a.index.cmp(&b.index)));

    AttributionReport {
        cycles: act.cycles,
        nodes,
        by_group,
        by_bus,
        clock_energy_fj,
        clock_switched_cap_ff,
        total_switched_cap_ff,
        total_energy_fj,
    }
}

/// Attributes an [`Activity`]'s energy to every node, group, and bus.
///
/// The per-node arithmetic — load-capacitance switching energy plus the
/// driving cell's internal energy, and the flip-flop clock-tree term —
/// is exactly `PowerReport::from_activity`'s, evaluated in the same
/// node order, so [`AttributionReport::reconcile`] holds by construction.
pub fn attribute(netlist: &Netlist, lib: &Library, act: &Activity) -> AttributionReport {
    let caps = netlist.load_caps_ff(lib);
    let out_names = output_label_map(netlist);
    let mut nodes: Vec<NodeAttribution> = Vec::new();
    for id in netlist.node_ids() {
        let toggles_u = act.toggles[id.index()];
        if toggles_u == 0 {
            continue;
        }
        nodes.push(attribute_node(netlist, lib, &caps, &out_names, id, toggles_u));
    }
    assemble_report(netlist, lib, act, nodes)
}

/// Re-attributes after an incremental netlist edit, recomputing only the
/// `touched` nodes and carrying every other per-node entry over from
/// `base` — the delta-re-attribution backend behind the dirty-cone
/// optimizer loop (`IncrementalSim::resim` → score → commit).
///
/// `act` is the mutated netlist's full activity (e.g.
/// [`crate::ConeResim::activity`]) and `touched` must contain every node
/// whose attribution inputs could have changed:
///
/// * the resim **cone** (toggle counts may differ, and appended nodes
///   have no base entry), and
/// * the **fan-ins of every rewired gate (both old and new) and of every
///   appended node** — load capacitance is derived from fanout pin
///   counts, so repointing a gate input or hanging new logic off a net
///   changes the caps of the nets involved even though their values (and
///   toggles) are untouched.
///
/// Nodes may appear in `touched` more than once; extra never-changed
/// nodes are harmless (they are simply recomputed). The result is
/// **bit-identical** to a full [`attribute`] of the mutated netlist:
/// untouched per-node values are reused verbatim and every rollup and
/// total is re-accumulated in node-index order, so no f64 reassociation
/// creeps in. Debug builds assert that carried-over entries really are
/// unchanged, catching an under-declared `touched` set.
pub fn attribute_delta(
    netlist: &Netlist,
    lib: &Library,
    base: &AttributionReport,
    act: &Activity,
    touched: &[NodeId],
) -> AttributionReport {
    let caps = netlist.load_caps_ff(lib);
    let out_names = output_label_map(netlist);
    let mut is_touched = vec![false; netlist.node_count()];
    for &t in touched {
        is_touched[t.index()] = true;
    }

    let mut nodes: Vec<NodeAttribution> = Vec::with_capacity(base.nodes.len());
    for n in &base.nodes {
        if is_touched[n.index] {
            continue;
        }
        debug_assert_eq!(
            act.toggles[n.index], n.toggles,
            "node {} toggled differently but is not in the touched set",
            n.index
        );
        debug_assert_eq!(
            (caps[n.index] * n.toggles as f64).to_bits(),
            n.switched_cap_ff.to_bits(),
            "node {} load changed but is not in the touched set",
            n.index
        );
        nodes.push(n.clone());
    }
    for id in netlist.node_ids() {
        let toggles_u = act.toggles[id.index()];
        if !is_touched[id.index()] || toggles_u == 0 {
            continue;
        }
        nodes.push(attribute_node(netlist, lib, &caps, &out_names, id, toggles_u));
    }
    nodes.sort_by_key(|n| n.index);
    assemble_report(netlist, lib, act, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::sim::ZeroDelaySim;
    use crate::streams;

    fn adder_run(cycles: usize) -> (Netlist, Library, Activity) {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("sum", &s);
        let lib = Library::default();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(streams::random(11, nl.input_count()).take(cycles)).unwrap();
        (nl, lib, act)
    }

    #[test]
    fn attribution_reconciles_with_power_report() {
        let (nl, lib, act) = adder_run(400);
        let attr = attribute(&nl, &lib, &act);
        let report = act.power(&nl, &lib);
        attr.reconcile(&report).expect("attribution reconciles");
    }

    #[test]
    fn hotspots_are_sorted_and_rollups_cover_all_nodes() {
        let (nl, lib, act) = adder_run(300);
        let attr = attribute(&nl, &lib, &act);
        assert!(!attr.nodes.is_empty());
        assert!(
            attr.nodes.windows(2).all(|w| w[0].energy_fj >= w[1].energy_fj),
            "hotspots sorted desc"
        );
        let group_nodes: usize = attr.by_group.values().map(|g| g.nodes).sum();
        assert_eq!(group_nodes, attr.nodes.len());
        // Bus rollups pick up the named input/output buses.
        assert!(attr.by_bus.contains_key("a"));
        assert!(attr.by_bus.contains_key("sum"));
        assert_eq!(attr.top_n(3).len(), 3);
        assert_eq!(attr.top_n(usize::MAX).len(), attr.nodes.len());
    }

    #[test]
    fn collapsed_stacks_have_one_line_per_node() {
        let (nl, lib, act) = adder_run(100);
        let attr = attribute(&nl, &lib, &act);
        let stacks = attr.collapsed_stacks();
        // No DFFs in the pure adder → no clock line.
        assert_eq!(stacks.lines().count(), attr.nodes.len());
        for line in stacks.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("space-separated value");
            assert_eq!(stack.split(';').count(), 3, "{line}");
            value.parse::<u64>().expect("integer value");
        }
    }

    #[test]
    fn clock_term_lands_in_registers_group() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let q = nl.dff(a, false);
        nl.set_output("q", q);
        let lib = Library::default();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(std::iter::repeat_n(vec![false], 50)).unwrap();
        let attr = attribute(&nl, &lib, &act);
        assert!(attr.clock_energy_fj > 0.0);
        assert!(attr.by_group["registers/clock"].energy_fj >= attr.clock_energy_fj);
        assert!(attr.collapsed_stacks().contains("clk_tree"));
        attr.reconcile(&act.power(&nl, &lib)).expect("idle circuit reconciles");
    }

    #[test]
    fn delta_attribution_is_bit_identical_after_a_function_flip() {
        use crate::incremental::IncrementalSim;
        use crate::library::GateKind;

        let (nl, lib, _) = adder_run(1);
        let stream: Vec<Vec<bool>> = streams::random(17, nl.input_count()).take(180).collect();
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        let base_attr = attribute(&nl, &lib, &inc.activity());

        // Flip an XOR to XNOR: same fan-ins, so the cone alone is the
        // complete touched set.
        let mut mutated = nl.clone();
        let target = mutated
            .node_ids()
            .find(|&id| matches!(mutated.kind(id), NodeKind::Gate { kind: GateKind::Xor, .. }))
            .unwrap();
        let NodeKind::Gate { inputs, .. } = mutated.kind(target).clone() else { unreachable!() };
        mutated.replace_gate(target, GateKind::Xnor, inputs).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();

        let delta = attribute_delta(&mutated, &lib, &base_attr, &resim.activity, &resim.cone);
        let full = attribute(&mutated, &lib, &resim.activity);
        assert_eq!(delta, full, "delta attribution must be bit-identical to a full recompute");
        assert!(delta.reconcile(&resim.activity.power(&mutated, &lib)).is_ok());
    }

    #[test]
    fn delta_attribution_tracks_load_changes_from_rewiring() {
        use crate::incremental::IncrementalSim;
        use crate::library::GateKind;

        let (nl, lib, _) = adder_run(1);
        let stream: Vec<Vec<bool>> = streams::random(29, nl.input_count()).take(100).collect();
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        let base_attr = attribute(&nl, &lib, &inc.activity());

        // Repoint an OR input at a freshly appended inverter: the net the
        // gate left loses a fanout pin and the inverter's input gains one,
        // so the rewired gate's old and new fan-ins AND the appended
        // node's fan-in must join the touched set even though their
        // values never change.
        let mut mutated = nl.clone();
        let b1 = mutated.inputs()[1];
        let inv = mutated.not(b1);
        let target = mutated
            .node_ids()
            .find(|&id| {
                matches!(mutated.kind(id),
                    NodeKind::Gate { kind: GateKind::Or, inputs } if inputs.len() == 2)
            })
            .unwrap();
        let NodeKind::Gate { inputs: old_inputs, .. } = mutated.kind(target).clone() else {
            unreachable!()
        };
        let new_inputs = vec![old_inputs[0], inv];
        mutated.replace_gate(target, GateKind::Or, new_inputs.clone()).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();

        let mut touched = resim.cone.clone();
        touched.extend(old_inputs);
        touched.extend(new_inputs);
        touched.push(b1); // the appended inverter's fan-in
        let delta = attribute_delta(&mutated, &lib, &base_attr, &resim.activity, &touched);
        let full = attribute(&mutated, &lib, &resim.activity);
        assert_eq!(delta, full, "delta attribution must track fan-in load changes");
    }

    #[test]
    fn bus_extraction_handles_non_bus_labels() {
        assert_eq!(bus_of("x[3]"), Some("x".to_string()));
        assert_eq!(bus_of("sum[12]"), Some("sum".to_string()));
        assert_eq!(bus_of("[3]"), None);
        assert_eq!(bus_of("x[a]"), None);
        assert_eq!(bus_of("x[3"), None);
        assert_eq!(bus_of("plain"), None);
    }
}
