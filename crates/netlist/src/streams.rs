//! Input-vector stream generators.
//!
//! The survey's estimation techniques are all sensitive to the *statistics*
//! of the applied stimulus (random vs temporally correlated vs signed
//! "dual-bit-type" data vs sequential addresses). This module provides
//! seeded, reproducible generators for each stream family.
//!
//! Each random family comes in two forms: a seed-taking constructor
//! (`random(seed, width)`) for standalone use, and an [`Rng`]-taking
//! constructor (`random_rng(rng, width)`) for use with *split* generator
//! streams — the form the parallel Monte-Carlo estimator
//! ([`crate::monte_carlo_power_seeded`]) uses to give every batch its own
//! independent, thread-count-invariant stream.

use hlpower_rng::Rng;

use crate::words::to_bits;

/// Uniform random vectors: every bit is an independent fair coin each cycle.
pub fn random(seed: u64, width: usize) -> impl Iterator<Item = Vec<bool>> {
    random_rng(Rng::seed_from_u64(seed), width)
}

/// [`random`], drawing from an externally constructed (e.g. split) stream.
pub fn random_rng(mut rng: Rng, width: usize) -> impl Iterator<Item = Vec<bool>> {
    std::iter::from_fn(move || Some((0..width).map(|_| rng.gen_bool(0.5)).collect()))
}

/// Biased random vectors: each bit is 1 with probability `p`.
pub fn biased(seed: u64, width: usize, p: f64) -> impl Iterator<Item = Vec<bool>> {
    biased_rng(Rng::seed_from_u64(seed), width, p)
}

/// [`biased`], drawing from an externally constructed (e.g. split) stream.
pub fn biased_rng(mut rng: Rng, width: usize, p: f64) -> impl Iterator<Item = Vec<bool>> {
    std::iter::from_fn(move || Some((0..width).map(|_| rng.gen_bool(p)).collect()))
}

/// Temporally correlated vectors: each bit *flips* with probability
/// `toggle_p` per cycle (lag-1 correlation; `toggle_p = 0.5` is random,
/// small values are highly correlated / low activity).
pub fn correlated(seed: u64, width: usize, toggle_p: f64) -> impl Iterator<Item = Vec<bool>> {
    correlated_rng(Rng::seed_from_u64(seed), width, toggle_p)
}

/// [`correlated`], drawing from an externally constructed (e.g. split)
/// stream.
pub fn correlated_rng(
    mut rng: Rng,
    width: usize,
    toggle_p: f64,
) -> impl Iterator<Item = Vec<bool>> {
    let mut state: Vec<bool> = (0..width).map(|_| rng.gen_bool(0.5)).collect();
    std::iter::from_fn(move || {
        for b in &mut state {
            if rng.gen_bool(toggle_p) {
                *b = !*b;
            }
        }
        Some(state.clone())
    })
}

/// Signed data words from a bounded Gaussian-like random walk, in two's
/// complement. High-order (sign) bits are strongly temporally correlated
/// while low-order bits look random: the regime the dual-bit-type
/// macro-model (Landman–Rabaey) was designed for. `width` must be <= 63.
pub fn signed_walk(seed: u64, width: usize, step: i64) -> impl Iterator<Item = Vec<bool>> {
    signed_walk_rng(Rng::seed_from_u64(seed), width, step)
}

/// [`signed_walk`], drawing from an externally constructed (e.g. split)
/// stream.
pub fn signed_walk_rng(mut rng: Rng, width: usize, step: i64) -> impl Iterator<Item = Vec<bool>> {
    assert!(width <= 63, "signed_walk supports at most 63-bit words");
    let max = (1i64 << (width - 1)) - 1;
    let mut x: i64 = 0;
    std::iter::from_fn(move || {
        x += rng.gen_range(-step..=step);
        x = x.clamp(-max, max);
        Some(to_bits((x as u64) & ((1u64 << width) - 1), width))
    })
}

/// Consecutive unsigned words (a counter): the canonical sequential address
/// stream for the Gray / T0 bus-encoding experiments.
pub fn counter(start: u64, width: usize) -> impl Iterator<Item = Vec<bool>> {
    let mut x = start;
    std::iter::from_fn(move || {
        let v = to_bits(x, width);
        x = x.wrapping_add(1);
        Some(v)
    })
}

/// Vectors from an explicit list of words.
pub fn from_words(words: Vec<u64>, width: usize) -> impl Iterator<Item = Vec<bool>> {
    words.into_iter().map(move |w| to_bits(w, width))
}

/// Concatenates two per-cycle streams into one wider vector stream (e.g. to
/// drive a two-operand module).
pub fn zip_concat(
    a: impl Iterator<Item = Vec<bool>>,
    b: impl Iterator<Item = Vec<bool>>,
) -> impl Iterator<Item = Vec<bool>> {
    a.zip(b).map(|(mut x, y)| {
        x.extend(y);
        x
    })
}

/// A stream that holds one operand constant (data-dependency probe for the
/// power-factor-approximation weakness discussed in §II-C1).
pub fn constant_word(word: u64, width: usize) -> impl Iterator<Item = Vec<bool>> {
    std::iter::repeat(to_bits(word, width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::from_bits;

    #[test]
    fn random_is_reproducible() {
        let a: Vec<_> = random(5, 8).take(10).collect();
        let b: Vec<_> = random(5, 8).take(10).collect();
        assert_eq!(a, b);
        let c: Vec<_> = random(6, 8).take(10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn biased_matches_probability() {
        let ones: usize =
            biased(1, 16, 0.9).take(1000).map(|v| v.iter().filter(|&&b| b).count()).sum();
        let frac = ones as f64 / 16000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn correlated_has_low_toggle_rate() {
        let vecs: Vec<_> = correlated(2, 16, 0.05).take(1000).collect();
        let mut toggles = 0usize;
        for w in vecs.windows(2) {
            toggles += w[0].iter().zip(&w[1]).filter(|(a, b)| a != b).count();
        }
        let rate = toggles as f64 / (999.0 * 16.0);
        assert!((rate - 0.05).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn signed_walk_sign_bits_correlated() {
        let vecs: Vec<_> = signed_walk(3, 16, 100).take(2000).collect();
        let msb_toggles = vecs.windows(2).filter(|w| w[0][15] != w[1][15]).count();
        let lsb_toggles = vecs.windows(2).filter(|w| w[0][0] != w[1][0]).count();
        assert!(msb_toggles * 3 < lsb_toggles, "msb {msb_toggles} lsb {lsb_toggles}");
    }

    #[test]
    fn counter_counts() {
        let vecs: Vec<_> = counter(254, 10).take(3).collect();
        assert_eq!(from_bits(&vecs[0]), 254);
        assert_eq!(from_bits(&vecs[1]), 255);
        assert_eq!(from_bits(&vecs[2]), 256);
    }

    #[test]
    fn zip_concat_widths_add() {
        let s = zip_concat(random(1, 4), counter(0, 4));
        for v in s.take(5) {
            assert_eq!(v.len(), 8);
        }
    }
}
