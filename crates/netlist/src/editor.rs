//! In-place, invariant-checked netlist mutation with an undo journal.
//!
//! Optimize passes explore many candidate edits per accepted one. Cloning
//! the whole [`Netlist`] per candidate makes scoring `O(circuit)` before
//! a single gate is re-simulated; [`NetlistEditor`] instead applies the
//! edit *in place*, records exactly what it changed, and can
//! [`rollback`](NetlistEditor::rollback) a rejected candidate in
//! `O(edit)` — the mutation-safe core of the incremental optimization
//! loop (see [`crate::IncrementalSim`] and the optimize crate's passes).
//!
//! Invariants the editor enforces at each operation:
//!
//! * every fanin id is in range and refers to an existing node;
//! * gate arity matches the gate kind (via the same checks as
//!   [`Netlist::gate`]);
//! * only combinational gates are rewired in place (inputs, constants,
//!   and flip-flops keep their kind), and node ids are stable — "remove"
//!   ties a gate to a constant buffer instead of deleting it;
//! * appended nodes come after every pre-existing node, so the arena
//!   stays append-only and a rollback is a truncation.
//!
//! Combinational cycles are *not* checked per operation (a rewire's
//! legality can depend on later edits of the same candidate); call
//! [`validate`](NetlistEditor::validate) once per candidate, or rely on
//! the next simulator construction / [`IncrementalSim::resim`] to surface
//! [`NetlistError::CombinationalCycle`].
//!
//! [`IncrementalSim::resim`]: crate::IncrementalSim::resim

use crate::error::NetlistError;
use crate::library::GateKind;
use crate::netlist::{Netlist, NodeId, NodeKind};

/// One journaled, undoable edit.
#[derive(Debug, Clone)]
enum UndoOp {
    /// `node` was a gate with this kind before the edit.
    Rewired { node: NodeId, prev: NodeKind },
    /// The `index`-th primary output was bound to `prev` before the edit.
    OutputRebound { index: usize, prev: NodeId },
}

/// An in-place mutation session over a [`Netlist`]: apply candidate
/// edits, read the change set for dirty-cone re-simulation, then either
/// [`finish`](NetlistEditor::finish) (keep) or
/// [`rollback`](NetlistEditor::rollback) (undo everything, restoring the
/// netlist to structural equality with its pre-session state).
///
/// # Example
///
/// ```
/// use hlpower_netlist::{GateKind, Netlist, NetlistEditor};
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let y = nl.and([a, b]);
/// nl.set_output("y", y);
/// let before = nl.clone();
///
/// let mut ed = NetlistEditor::begin(&mut nl);
/// ed.replace_gate(y, GateKind::Nand, [a, b]).unwrap();
/// assert_eq!(ed.changed(), &[y]);
/// ed.rollback();
/// assert_eq!(nl, before);
/// ```
#[derive(Debug)]
pub struct NetlistEditor<'a> {
    netlist: &'a mut Netlist,
    journal: Vec<UndoOp>,
    /// Node count at `begin`; everything past it was appended here.
    base_nodes: usize,
    /// Pre-existing nodes whose function or fanins changed, deduplicated,
    /// in first-edit order — exactly the `changed` set
    /// [`crate::IncrementalSim::resim`] wants.
    changed: Vec<NodeId>,
}

impl<'a> NetlistEditor<'a> {
    /// Starts a mutation session on `netlist`.
    pub fn begin(netlist: &'a mut Netlist) -> Self {
        let base_nodes = netlist.node_count();
        NetlistEditor { netlist, journal: Vec::new(), base_nodes, changed: Vec::new() }
    }

    /// The netlist in its current (edited) state.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Pre-existing gates whose function or fanins changed so far,
    /// deduplicated — feed this to [`crate::IncrementalSim::resim`].
    /// Appended nodes are not listed (the incremental engine discovers
    /// them from the node-count delta).
    pub fn changed(&self) -> &[NodeId] {
        &self.changed
    }

    /// Nodes appended during this session, in creation order.
    pub fn appended(&self) -> Vec<NodeId> {
        (self.base_nodes..self.netlist.node_count()).map(|i| NodeId(i as u32)).collect()
    }

    /// True if the session has made no edits.
    pub fn is_clean(&self) -> bool {
        self.journal.is_empty() && self.netlist.node_count() == self.base_nodes
    }

    fn check_fanins(&self, node: Option<NodeId>, inputs: &[NodeId]) -> Result<(), NetlistError> {
        let n = self.netlist.node_count();
        for &f in inputs {
            if f.index() >= n {
                return Err(NetlistError::IncrementalMismatch {
                    reason: format!("fanin {f} is out of range (netlist has {n} nodes)"),
                });
            }
            if Some(f) == node {
                return Err(NetlistError::IncrementalMismatch {
                    reason: format!("gate {f} cannot feed itself combinationally"),
                });
            }
        }
        Ok(())
    }

    /// Records the pre-edit kind of a just-rewired gate. Appended nodes
    /// roll back by truncation; pre-existing ones need their original kind
    /// journaled once (first edit wins, so a rollback replays to the
    /// pre-session state, not an intermediate). Called only after the
    /// mutation succeeded, so a rejected edit journals nothing.
    fn journal_rewire(&mut self, node: NodeId, prev: NodeKind) {
        if node.index() < self.base_nodes && !self.changed.contains(&node) {
            self.journal.push(UndoOp::Rewired { node, prev });
            self.changed.push(node);
        }
    }

    /// Rewires `node` in place to compute `kind` over `inputs`. The node
    /// keeps its id, name, group, and output bindings.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] for a bad input count, or
    /// [`NetlistError::IncrementalMismatch`] if `node` is not a gate, a
    /// fanin is out of range, or a fanin is the node itself.
    pub fn replace_gate(
        &mut self,
        node: NodeId,
        kind: GateKind,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<(), NetlistError> {
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        self.check_fanins(Some(node), &inputs)?;
        let prev = match self.netlist.kind(node) {
            g @ NodeKind::Gate { .. } => g.clone(),
            other => {
                return Err(NetlistError::IncrementalMismatch {
                    reason: format!("node {node} is not a combinational gate ({other:?})"),
                })
            }
        };
        self.netlist.replace_gate(node, kind, inputs)?;
        self.journal_rewire(node, prev);
        Ok(())
    }

    /// Repoints one fanin pin of an existing gate at `new_src`, keeping
    /// the gate kind and every other pin.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::IncrementalMismatch`] if `node` is not a
    /// gate, `pin` is out of range, or `new_src` is invalid.
    pub fn rewire_input(
        &mut self,
        node: NodeId,
        pin: usize,
        new_src: NodeId,
    ) -> Result<(), NetlistError> {
        let NodeKind::Gate { kind, inputs } = self.netlist.kind(node) else {
            return Err(NetlistError::IncrementalMismatch {
                reason: format!("node {node} is not a combinational gate"),
            });
        };
        if pin >= inputs.len() {
            return Err(NetlistError::IncrementalMismatch {
                reason: format!("gate {node} has {} pins, no pin {pin}", inputs.len()),
            });
        }
        let (kind, mut ins) = (*kind, inputs.clone());
        ins[pin] = new_src;
        self.replace_gate(node, kind, ins)
    }

    /// Appends a fresh gate over existing nodes and returns its id.
    /// Appended nodes are discovered by the incremental engine from the
    /// node-count delta and vanish on [`rollback`](Self::rollback).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] for a bad input count or
    /// [`NetlistError::IncrementalMismatch`] for an out-of-range fanin.
    pub fn insert_gate(
        &mut self,
        kind: GateKind,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId, NetlistError> {
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        self.check_fanins(None, &inputs)?;
        self.netlist.gate(kind, inputs)
    }

    /// Appends a rising-edge flip-flop fed by `d` (a register-insertion
    /// edit, e.g. a retiming pipeline cut) and returns its output node.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::IncrementalMismatch`] if `d` is out of
    /// range.
    pub fn insert_dff(&mut self, d: NodeId, init: bool) -> Result<NodeId, NetlistError> {
        self.check_fanins(None, &[d])?;
        Ok(self.netlist.dff(d, init))
    }

    /// Repoints the `index`-th primary output binding at `node` — the
    /// boundary step of a register-insertion edit (a retiming cut
    /// registers outputs whose arrival lies below the threshold).
    /// Output bindings carry load capacitance but compute nothing, so a
    /// rebind never joins the [`changed`](Self::changed) set.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::IncrementalMismatch`] if `index` is out
    /// of range or `node` does not exist.
    pub fn rebind_output(&mut self, index: usize, node: NodeId) -> Result<(), NetlistError> {
        self.check_fanins(None, &[node])?;
        let Some(&(_, prev)) = self.netlist.outputs().get(index) else {
            return Err(NetlistError::IncrementalMismatch {
                reason: format!(
                    "netlist has {} outputs, no output {index}",
                    self.netlist.outputs().len()
                ),
            });
        };
        self.netlist.set_output_node_raw(index, node);
        self.journal.push(UndoOp::OutputRebound { index, prev });
        Ok(())
    }

    /// "Removes" a gate by tying it to a constant-false buffer: the id
    /// stays valid (downstream indices are untouched) but the gate stops
    /// toggling and presents no function. Mirrors the rewrite pass's
    /// dead-gate sweep.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::IncrementalMismatch`] if `node` is not a
    /// gate or still has fanouts / output bindings (removing a live gate
    /// would silently change the circuit function).
    pub fn remove_gate(&mut self, node: NodeId) -> Result<(), NetlistError> {
        let fanout = self.netlist.fanout_counts();
        if fanout[node.index()] != 0 || self.netlist.outputs().iter().any(|&(_, o)| o == node) {
            return Err(NetlistError::IncrementalMismatch {
                reason: format!("gate {node} is still observed and cannot be removed"),
            });
        }
        let tie = self.netlist.constant(false);
        self.replace_gate(node, GateKind::Buf, [tie])
    }

    /// Checks the structural invariants that are only decidable globally:
    /// the edited netlist must still be acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the edits
    /// introduced a combinational cycle.
    pub fn validate(&self) -> Result<(), NetlistError> {
        self.netlist.topo_order().map(|_| ())
    }

    /// Keeps every edit and ends the session.
    pub fn finish(self) {}

    /// Undoes every edit of this session in reverse order: journaled
    /// rewires are restored and appended nodes are truncated away,
    /// leaving the netlist structurally equal (`==`) to its pre-session
    /// state.
    pub fn rollback(self) {
        for op in self.journal.into_iter().rev() {
            match op {
                UndoOp::Rewired { node, prev } => self.netlist.set_kind_raw(node, prev),
                UndoOp::OutputRebound { index, prev } => {
                    self.netlist.set_output_node_raw(index, prev)
                }
            }
        }
        self.netlist.truncate_nodes_raw(self.base_nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Netlist, NodeId, NodeId, NodeId) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.and([a, b]);
        nl.set_output("y", y);
        (nl, a, b, y)
    }

    #[test]
    fn rollback_restores_structural_equality() {
        let (mut nl, a, b, y) = small();
        let before = nl.clone();
        let mut ed = NetlistEditor::begin(&mut nl);
        ed.replace_gate(y, GateKind::Nand, [a, b]).unwrap();
        let inv = ed.insert_gate(GateKind::Not, [a]).unwrap();
        let q = ed.insert_dff(inv, false).unwrap();
        ed.rewire_input(y, 1, q).unwrap();
        assert_eq!(ed.changed(), &[y]);
        assert_eq!(ed.appended(), vec![inv, q]);
        ed.rollback();
        assert_eq!(nl, before);
        assert_eq!(nl.dffs().len(), 0);
    }

    #[test]
    fn finish_keeps_edits_and_changed_is_deduplicated() {
        let (mut nl, a, b, y) = small();
        let mut ed = NetlistEditor::begin(&mut nl);
        ed.replace_gate(y, GateKind::Or, [a, b]).unwrap();
        ed.replace_gate(y, GateKind::Xor, [a, b]).unwrap();
        assert_eq!(ed.changed(), &[y], "double edit journals once");
        ed.finish();
        assert!(matches!(nl.kind(y), NodeKind::Gate { kind: GateKind::Xor, .. }));
    }

    #[test]
    fn rollback_after_double_edit_restores_the_original() {
        let (mut nl, a, b, y) = small();
        let before = nl.clone();
        let mut ed = NetlistEditor::begin(&mut nl);
        ed.replace_gate(y, GateKind::Or, [a, b]).unwrap();
        ed.rewire_input(y, 0, b).unwrap();
        ed.rollback();
        assert_eq!(nl, before);
    }

    #[test]
    fn structural_validation_rejects_bad_edits() {
        let (mut nl, a, _b, y) = small();
        let mut ed = NetlistEditor::begin(&mut nl);
        // Out-of-range fanin.
        let ghost = NodeId(99);
        assert!(matches!(
            ed.replace_gate(y, GateKind::And, [a, ghost]),
            Err(NetlistError::IncrementalMismatch { .. })
        ));
        // Self-loop.
        assert!(matches!(
            ed.replace_gate(y, GateKind::And, [a, y]),
            Err(NetlistError::IncrementalMismatch { .. })
        ));
        // Rewiring a non-gate.
        assert!(matches!(
            ed.replace_gate(a, GateKind::Not, [y]),
            Err(NetlistError::IncrementalMismatch { .. })
        ));
        // Arity violation.
        assert!(matches!(
            ed.replace_gate(y, GateKind::Mux, [a, a]),
            Err(NetlistError::ArityMismatch { .. })
        ));
        // Failed edits journal nothing.
        assert!(ed.is_clean());
        ed.rollback();
    }

    #[test]
    fn validate_surfaces_cycles() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let g1 = nl.not(a);
        let g2 = nl.not(g1);
        nl.set_output("y", g2);
        let mut ed = NetlistEditor::begin(&mut nl);
        ed.rewire_input(g1, 0, g2).unwrap();
        assert!(matches!(ed.validate(), Err(NetlistError::CombinationalCycle { .. })));
        ed.rollback();
        assert!(nl.topo_order().is_ok());
    }

    #[test]
    fn rebind_output_moves_the_binding_and_rolls_back() {
        let (mut nl, _a, _b, y) = small();
        let before = nl.clone();
        let mut ed = NetlistEditor::begin(&mut nl);
        let q = ed.insert_dff(y, false).unwrap();
        ed.rebind_output(0, q).unwrap();
        assert_eq!(ed.netlist().outputs()[0].1, q);
        assert!(ed.changed().is_empty(), "output rebinds change no node values");
        ed.rollback();
        assert_eq!(nl, before);

        let mut ed = NetlistEditor::begin(&mut nl);
        let q = ed.insert_dff(y, false).unwrap();
        ed.rebind_output(0, q).unwrap();
        assert!(ed.rebind_output(5, q).is_err(), "out-of-range output index");
        ed.finish();
        assert_eq!(nl.outputs()[0].1, q);
        assert_eq!(nl.outputs()[0].0, "y", "rebinding keeps the name");
    }

    #[test]
    fn remove_gate_ties_off_and_rejects_live_gates() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let live = nl.and([a, b]);
        let dead = nl.xor([a, b]);
        nl.set_output("y", live);
        let before = nl.clone();
        let mut ed = NetlistEditor::begin(&mut nl);
        assert!(ed.remove_gate(live).is_err(), "output-bound gate must not be removable");
        ed.remove_gate(dead).unwrap();
        ed.rollback();
        assert_eq!(nl, before);
        let mut ed = NetlistEditor::begin(&mut nl);
        ed.remove_gate(dead).unwrap();
        ed.finish();
        let NodeKind::Gate { kind: GateKind::Buf, inputs } = nl.kind(dead) else {
            panic!("tied-off gate must be a buffer")
        };
        assert!(matches!(nl.kind(inputs[0]), NodeKind::Const(false)));
    }
}
