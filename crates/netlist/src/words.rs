//! Bit-vector <-> machine-word helpers (least-significant bit first) and
//! the [`Word`] abstraction behind the wide packed simulation kernels.
//!
//! A [`Word`] is a fixed-width bundle of independent bit lanes with the
//! boolean word operations the compiled kernels need. Three widths are
//! provided: plain `u64` (64 lanes), [`W256`] (256 lanes as `[u64; 4]`)
//! and [`W512`] (512 lanes as `[u64; 8]`). The wide types are plain
//! chunk arrays with SIMD-friendly alignment; their operations are
//! written as straight-line per-chunk loops so the compiler can lower
//! them to vector instructions (the hot settle loop additionally carries
//! an AVX2/AVX-512 re-compiled fast path, selected at runtime — see
//! the `simwide` module).

/// A fixed-width bundle of independent bit lanes, the element type of the
/// wide packed simulation kernels ([`crate::WideSim`],
/// [`crate::WideTimedSim`]).
///
/// Lane `l` lives in bit `l % 64` of chunk `l / 64`. All operations are
/// lane-wise; no information crosses lanes, which is what makes one
/// packed run bit-identical to [`LANES`](Self::LANES) independent scalar
/// runs.
pub trait Word: Copy + Send + Sync + std::fmt::Debug + PartialEq + 'static {
    /// Number of independent bit lanes in one word.
    const LANES: usize;
    /// Number of `u64` chunks backing one word (`LANES / 64`).
    const CHUNKS: usize;
    /// The all-zero word.
    fn zero() -> Self;
    /// Broadcasts one bit across all lanes.
    fn splat(v: bool) -> Self;
    /// Lane-wise AND.
    fn and(self, other: Self) -> Self;
    /// Lane-wise OR.
    fn or(self, other: Self) -> Self;
    /// Lane-wise XOR.
    fn xor(self, other: Self) -> Self;
    /// Lane-wise NOT.
    fn not(self) -> Self;
    /// True if no lane is set.
    fn is_zero(self) -> bool;
    /// Number of set lanes.
    fn count_ones(self) -> u32;
    /// The bit in lane `l`.
    fn lane(self, l: usize) -> bool;
    /// Sets or clears the bit in lane `l`.
    fn set_lane(&mut self, l: usize, v: bool);
    /// A word with the low `n` lanes set (`n <= LANES`; `n == LANES`
    /// yields the all-ones word). This is the overflow-safe form of
    /// `(1 << n) - 1` for any lane count.
    fn low_mask(n: usize) -> Self;
    /// The backing `u64` chunks, low lanes first.
    fn chunks(&self) -> &[u64];
    /// Mutable access to the backing chunks.
    fn chunks_mut(&mut self) -> &mut [u64];
}

impl Word for u64 {
    const LANES: usize = 64;
    const CHUNKS: usize = 1;
    #[inline(always)]
    fn zero() -> Self {
        0
    }
    #[inline(always)]
    fn splat(v: bool) -> Self {
        if v {
            !0
        } else {
            0
        }
    }
    #[inline(always)]
    fn and(self, other: Self) -> Self {
        self & other
    }
    #[inline(always)]
    fn or(self, other: Self) -> Self {
        self | other
    }
    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    #[inline(always)]
    fn not(self) -> Self {
        !self
    }
    #[inline(always)]
    fn is_zero(self) -> bool {
        self == 0
    }
    #[inline(always)]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }
    #[inline(always)]
    fn lane(self, l: usize) -> bool {
        (self >> l) & 1 == 1
    }
    #[inline(always)]
    fn set_lane(&mut self, l: usize, v: bool) {
        if v {
            *self |= 1u64 << l;
        } else {
            *self &= !(1u64 << l);
        }
    }
    #[inline(always)]
    fn low_mask(n: usize) -> Self {
        debug_assert!(n <= 64);
        if n >= 64 {
            !0
        } else {
            (1u64 << n) - 1
        }
    }
    #[inline(always)]
    fn chunks(&self) -> &[u64] {
        std::slice::from_ref(self)
    }
    #[inline(always)]
    fn chunks_mut(&mut self) -> &mut [u64] {
        std::slice::from_mut(self)
    }
}

/// Declares a wide word type backed by a `u64` chunk array.
macro_rules! wide_word {
    ($(#[$doc:meta])* $name:ident, $chunks:expr, $align:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        #[repr(align($align))]
        pub struct $name(pub [u64; $chunks]);

        impl Word for $name {
            const LANES: usize = $chunks * 64;
            const CHUNKS: usize = $chunks;
            #[inline(always)]
            fn zero() -> Self {
                $name([0; $chunks])
            }
            #[inline(always)]
            fn splat(v: bool) -> Self {
                $name([if v { !0 } else { 0 }; $chunks])
            }
            #[inline(always)]
            fn and(mut self, other: Self) -> Self {
                for c in 0..$chunks {
                    self.0[c] &= other.0[c];
                }
                self
            }
            #[inline(always)]
            fn or(mut self, other: Self) -> Self {
                for c in 0..$chunks {
                    self.0[c] |= other.0[c];
                }
                self
            }
            #[inline(always)]
            fn xor(mut self, other: Self) -> Self {
                for c in 0..$chunks {
                    self.0[c] ^= other.0[c];
                }
                self
            }
            #[inline(always)]
            fn not(mut self) -> Self {
                for c in 0..$chunks {
                    self.0[c] = !self.0[c];
                }
                self
            }
            #[inline(always)]
            fn is_zero(self) -> bool {
                self.0.iter().fold(0u64, |acc, &c| acc | c) == 0
            }
            #[inline(always)]
            fn count_ones(self) -> u32 {
                self.0.iter().map(|c| c.count_ones()).sum()
            }
            #[inline(always)]
            fn lane(self, l: usize) -> bool {
                (self.0[l / 64] >> (l % 64)) & 1 == 1
            }
            #[inline(always)]
            fn set_lane(&mut self, l: usize, v: bool) {
                if v {
                    self.0[l / 64] |= 1u64 << (l % 64);
                } else {
                    self.0[l / 64] &= !(1u64 << (l % 64));
                }
            }
            #[inline]
            fn low_mask(n: usize) -> Self {
                debug_assert!(n <= Self::LANES);
                let mut w = Self::zero();
                for c in 0..$chunks {
                    let lo = c * 64;
                    if n >= lo + 64 {
                        w.0[c] = !0;
                    } else if n > lo {
                        w.0[c] = (1u64 << (n - lo)) - 1;
                    }
                }
                w
            }
            #[inline(always)]
            fn chunks(&self) -> &[u64] {
                &self.0
            }
            #[inline(always)]
            fn chunks_mut(&mut self) -> &mut [u64] {
                &mut self.0
            }
        }
    };
}

wide_word!(
    /// A 256-lane packed word: four `u64` chunks, 32-byte aligned so the
    /// AVX2 settle fast path can use full-width vector loads.
    W256,
    4,
    32
);
wide_word!(
    /// A 512-lane packed word: eight `u64` chunks, 64-byte aligned so the
    /// AVX-512 settle fast path can use full-width vector loads.
    W512,
    8,
    64
);

/// Expands the low `width` bits of `value` into a bit vector, LSB first.
///
/// # Panics
///
/// Panics if `width > 64`.
pub fn to_bits(value: u64, width: usize) -> Vec<bool> {
    assert!(width <= 64, "width {width} exceeds 64 bits");
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Packs a bit vector (LSB first) into a word.
///
/// # Panics
///
/// Panics if `bits.len() > 64`.
pub fn from_bits(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "bit vector of {} bits exceeds 64", bits.len());
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Interprets a bit vector (LSB first) as a two's-complement signed value.
///
/// # Panics
///
/// Panics if `bits` is empty or longer than 64.
pub fn from_bits_signed(bits: &[bool]) -> i64 {
    assert!(!bits.is_empty() && bits.len() <= 64);
    let raw = from_bits(bits);
    let w = bits.len();
    if w == 64 {
        raw as i64
    } else if bits[w - 1] {
        (raw as i64) - (1i64 << w)
    } else {
        raw as i64
    }
}

/// Hamming distance between two equal-length bit vectors.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn hamming(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal widths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for v in [0u64, 1, 5, 255, 256, 0xDEAD] {
            assert_eq!(from_bits(&to_bits(v, 16)), v & 0xFFFF);
        }
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(from_bits_signed(&to_bits(0xFF, 8)), -1);
        assert_eq!(from_bits_signed(&to_bits(0x80, 8)), -128);
        assert_eq!(from_bits_signed(&to_bits(0x7F, 8)), 127);
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(hamming(&to_bits(0b1010, 4), &to_bits(0b0110, 4)), 2);
        assert_eq!(hamming(&to_bits(0, 4), &to_bits(0xF, 4)), 4);
    }

    fn exercise_word<W: Word>() {
        assert_eq!(W::CHUNKS * 64, W::LANES);
        assert!(W::zero().is_zero());
        assert!(!W::splat(true).is_zero());
        assert_eq!(W::splat(true).count_ones() as usize, W::LANES);
        assert_eq!(W::splat(true), W::zero().not());
        assert_eq!(W::low_mask(W::LANES), W::splat(true));
        assert_eq!(W::low_mask(0), W::zero());
        // Lane get/set round-trips, including chunk boundaries. (The
        // index list can repeat a lane at LANES == 64, so only assert the
        // post-set state.)
        let mut w = W::zero();
        for l in [0, 1, 63, W::LANES / 2, W::LANES - 1] {
            w.set_lane(l, true);
            assert!(w.lane(l), "lane {l}");
        }
        assert_eq!(w.count_ones(), if W::LANES == 64 { 4 } else { 5 });
        for l in [0, W::LANES - 1] {
            w.set_lane(l, false);
            assert!(!w.lane(l));
        }
        // low_mask(n) sets exactly lanes 0..n.
        for n in [1, 63, 64, W::LANES - 1, W::LANES] {
            let m = W::low_mask(n);
            assert_eq!(m.count_ones() as usize, n, "low_mask({n})");
            assert!(m.lane(n - 1));
            if n < W::LANES {
                assert!(!m.lane(n));
            }
        }
        // Boolean ops are lane-wise.
        let a = W::low_mask(W::LANES - 1);
        let b = W::low_mask(1);
        assert_eq!(a.and(b), b);
        assert_eq!(a.or(b), a);
        assert_eq!(a.xor(a), W::zero());
        assert_eq!(a.not().or(a), W::splat(true));
        assert_eq!(a.chunks().len(), W::CHUNKS);
    }

    #[test]
    fn word_impls_agree_on_the_lane_contract() {
        exercise_word::<u64>();
        exercise_word::<W256>();
        exercise_word::<W512>();
    }

    #[test]
    fn wide_words_are_simd_aligned() {
        assert_eq!(std::mem::align_of::<W256>(), 32);
        assert_eq!(std::mem::align_of::<W512>(), 64);
        assert_eq!(std::mem::size_of::<W256>(), 32);
        assert_eq!(std::mem::size_of::<W512>(), 64);
    }
}
