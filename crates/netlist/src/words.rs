//! Bit-vector <-> machine-word helpers (least-significant bit first).

/// Expands the low `width` bits of `value` into a bit vector, LSB first.
///
/// # Panics
///
/// Panics if `width > 64`.
pub fn to_bits(value: u64, width: usize) -> Vec<bool> {
    assert!(width <= 64, "width {width} exceeds 64 bits");
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Packs a bit vector (LSB first) into a word.
///
/// # Panics
///
/// Panics if `bits.len() > 64`.
pub fn from_bits(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "bit vector of {} bits exceeds 64", bits.len());
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Interprets a bit vector (LSB first) as a two's-complement signed value.
///
/// # Panics
///
/// Panics if `bits` is empty or longer than 64.
pub fn from_bits_signed(bits: &[bool]) -> i64 {
    assert!(!bits.is_empty() && bits.len() <= 64);
    let raw = from_bits(bits);
    let w = bits.len();
    if w == 64 {
        raw as i64
    } else if bits[w - 1] {
        (raw as i64) - (1i64 << w)
    } else {
        raw as i64
    }
}

/// Hamming distance between two equal-length bit vectors.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn hamming(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal widths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for v in [0u64, 1, 5, 255, 256, 0xDEAD] {
            assert_eq!(from_bits(&to_bits(v, 16)), v & 0xFFFF);
        }
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(from_bits_signed(&to_bits(0xFF, 8)), -1);
        assert_eq!(from_bits_signed(&to_bits(0x80, 8)), -128);
        assert_eq!(from_bits_signed(&to_bits(0x7F, 8)), 127);
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(hamming(&to_bits(0b1010, 4), &to_bits(0b0110, 4)), 2);
        assert_eq!(hamming(&to_bits(0, 4), &to_bits(0xF, 4)), 4);
    }
}
