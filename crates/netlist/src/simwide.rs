//! Width-generic compiled packed simulation: 64/256/512 stimulus lanes
//! from one instruction stream.
//!
//! This module generalizes the bit-parallel kernels of [`crate::sim64`]
//! and [`crate::sim64timed`] over the [`Word`] abstraction: the same
//! compiled opcode+slot instruction stream drives [`Word::LANES`]
//! independent stimulus lanes per pass, with one word per node. `u64`
//! reproduces the original 64-lane kernels ([`crate::Sim64`] and
//! [`crate::TimedSim64`] are aliases of [`WideSim`]/[`WideTimedSim`] at
//! `W = u64`); [`W256`]/[`W512`] quadruple/octuple the lanes per
//! instruction decode, amortizing the per-instruction overhead (decode,
//! bounds checks, toggle-counter carry chains) over 4x/8x the data.
//!
//! # Runtime SIMD fast path
//!
//! The zero-delay settle loop — the hot core of every packed step — is
//! compiled a second time inside `#[target_feature]` wrappers for AVX2
//! (and AVX-512F for [`W512`]) and dispatched at runtime via
//! [`simd_level`], so wide words use full-width vector loads and logic
//! ops on machines that have them while the portable per-chunk code
//! remains the fallback everywhere else. The timed kernel's wheel drain
//! is dominated by data-dependent scheduling rather than straight-line
//! word ops, so it intentionally has no hand-dispatched variant: it
//! relies on ordinary autovectorization of the generic chunk loops.
//!
//! # Determinism contract
//!
//! Lane `l` of a packed run is *bit-identical* to a scalar run over the
//! same stream for **every** word width, and the SIMD fast path computes
//! the same words as the portable path (bitwise boolean algebra has no
//! rounding). `tests/wide_differential.rs` locks both claims in across
//! every circuit generator and the ingested example netlists.

use std::any::TypeId;
use std::sync::OnceLock;

use hlpower_obs::metrics as obs;

use crate::error::NetlistError;
use crate::event::{gate_delays_ps, TimedActivity};
use crate::library::Library;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::power::PowerModel;
use crate::sim::Activity;
use crate::sim64::{CompiledKernel, Program};
use crate::words::{Word, W256, W512};

/// Bit planes per node in the vertical carry-save toggle counters: a node
/// can absorb `2^PLANES - 1` toggles per lane between flushes.
pub(crate) const PLANES: usize = 16;

/// Counted steps between plane flushes in the zero-delay kernel; one
/// fewer than the plane capacity so the carry chain can never overflow
/// out of the top plane.
const FLUSH_INTERVAL: u64 = (1 << PLANES) - 1;

/// The vector instruction set the hot settle loop runs on, detected once
/// per process (see [`simd_level`]). Ordering is by width, so
/// `level >= SimdLevel::Avx2` asks "are 256-bit ops available".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable per-chunk code only (non-x86-64, or no AVX2).
    Scalar,
    /// 256-bit AVX2 loads/logic for [`W256`] and [`W512`] words.
    Avx2,
    /// 512-bit AVX-512F loads/logic for [`W512`] words.
    Avx512,
}

/// Runtime-detected SIMD capability of this machine, cached after the
/// first call. Purely a wall-clock concern: every level computes
/// bit-identical results.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx2")
            {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// Adds `carry` (a set of lanes that toggled) into a node's vertical
/// bit-plane counter. Amortized cost is ~2 word operations: the carry
/// chain almost always dies in the low planes.
#[inline(always)]
pub(crate) fn bump_planes<W: Word>(planes: &mut [W], base: usize, mut carry: W) {
    let mut p = 0;
    while !carry.is_zero() {
        let t = planes[base + p];
        planes[base + p] = t.xor(carry);
        carry = carry.and(t);
        p += 1;
    }
}

/// Adds `carry` into a node's vertical bit-plane counter, spilling
/// exactly into the 64-bit totals if the carry ripples out of the top
/// plane (the timed kernel can toggle a node many times per step, so the
/// flush-schedule trick of the zero-delay kernel does not apply).
#[inline]
fn bump_planes_spill<W: Word>(
    planes: &mut [W],
    base: usize,
    lane_totals: &mut [u64],
    lane_base: usize,
    mut carry: W,
) {
    for p in 0..PLANES {
        if carry.is_zero() {
            return;
        }
        let t = planes[base + p];
        planes[base + p] = t.xor(carry);
        carry = carry.and(t);
    }
    // Carry out of the top plane: the plane stack wrapped modulo
    // `2^PLANES` for these lanes, so credit the wrapped weight directly.
    for (c, &chunk) in carry.chunks().iter().enumerate() {
        let mut m = chunk;
        while m != 0 {
            let l = c * 64 + m.trailing_zeros() as usize;
            lane_totals[lane_base + l] += 1u64 << PLANES;
            m &= m - 1;
        }
    }
}

/// Drains a bit-plane array into exact per-lane totals
/// (`node * W::LANES + lane`).
fn flush_planes<W: Word>(planes: &mut [W], lane_totals: &mut [u64], nodes: usize) {
    for node in 0..nodes {
        let base = node * PLANES;
        for p in 0..PLANES {
            let w = planes[base + p];
            if w.is_zero() {
                continue;
            }
            planes[base + p] = W::zero();
            let weight = 1u64 << p;
            for (c, &chunk) in w.chunks().iter().enumerate() {
                let mut m = chunk;
                while m != 0 {
                    let l = c * 64 + m.trailing_zeros() as usize;
                    lane_totals[node * W::LANES + l] += weight;
                    m &= m - 1;
                }
            }
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The zero-delay settle loop: evaluates the compiled instruction stream
/// against the packed values, bumping toggle planes for changed lanes.
/// Kept as one `#[inline(always)]` body so the `#[target_feature]`
/// wrappers below re-compile the identical code under wider vector ISAs.
#[inline(always)]
fn settle_body<W: Word>(program: &Program, values: &mut [W], planes: &mut [W], count_mask: W) {
    for idx in 0..program.instrs.len() {
        let ins = program.instrs[idx];
        let new = program.eval(values, &ins);
        let slot = ins.out as usize;
        bump_planes(planes, slot * PLANES, values[slot].xor(new).and(count_mask));
        values[slot] = new;
    }
}

/// `settle_body` re-compiled with AVX2 codegen. Monomorphic (rather than
/// a generic `#[target_feature]` fn) so dispatch stays a plain TypeId
/// check with identity slice casts.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn settle_avx2_w256(
    program: &Program,
    values: &mut [W256],
    planes: &mut [W256],
    count_mask: W256,
) {
    settle_body(program, values, planes, count_mask);
}

/// `settle_body` for [`W512`] under AVX2 (two 256-bit ops per word).
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn settle_avx2_w512(
    program: &Program,
    values: &mut [W512],
    planes: &mut [W512],
    count_mask: W512,
) {
    settle_body(program, values, planes, count_mask);
}

/// `settle_body` for [`W512`] under AVX-512F (one 512-bit op per word).
///
/// # Safety
///
/// The caller must have verified AVX-512F support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn settle_avx512_w512(
    program: &Program,
    values: &mut [W512],
    planes: &mut [W512],
    count_mask: W512,
) {
    settle_body(program, values, planes, count_mask);
}

/// Dispatches the settle loop to the widest vector path this machine and
/// word width support. Bit-identical to the portable path by
/// construction (pure boolean algebra, no reassociation-sensitive math).
fn settle<W: Word>(program: &Program, values: &mut [W], planes: &mut [W], count_mask: W) {
    #[cfg(target_arch = "x86_64")]
    {
        let level = simd_level();
        if level >= SimdLevel::Avx2 && TypeId::of::<W>() == TypeId::of::<W256>() {
            // SAFETY: the TypeId check proves `W == W256`, so the raw
            // slice casts are identity casts; AVX2 was runtime-verified.
            unsafe {
                settle_avx2_w256(
                    program,
                    &mut *(values as *mut [W] as *mut [W256]),
                    &mut *(planes as *mut [W] as *mut [W256]),
                    *(&count_mask as *const W as *const W256),
                );
            }
            return;
        }
        if TypeId::of::<W>() == TypeId::of::<W512>() && level >= SimdLevel::Avx2 {
            // SAFETY: as above with `W == W512`; the chosen wrapper's
            // feature was runtime-verified.
            unsafe {
                let values = &mut *(values as *mut [W] as *mut [W512]);
                let planes = &mut *(planes as *mut [W] as *mut [W512]);
                let count_mask = *(&count_mask as *const W as *const W512);
                if level >= SimdLevel::Avx512 {
                    settle_avx512_w512(program, values, planes, count_mask);
                } else {
                    settle_avx2_w512(program, values, planes, count_mask);
                }
            }
            return;
        }
    }
    settle_body(program, values, planes, count_mask);
}

/// The width-generic lane-parallel compiled simulator: [`Word::LANES`]
/// independent stimulus lanes advance one clock cycle per
/// [`step`](WideSim::step).
///
/// Sequencing per step matches [`crate::ZeroDelaySim`] exactly:
/// flip-flops present their previously-sampled values, primary inputs are
/// applied, the combinational network settles in topological order,
/// flip-flops sample their D inputs. The first step initializes values
/// without counting toggles. [`crate::Sim64`] is this type at `W = u64`.
#[derive(Debug, Clone)]
pub struct WideSim<'a, W: Word> {
    netlist: &'a Netlist,
    program: Program,
    /// Packed node values; lane `l` of a word is stimulus stream `l`.
    values: Vec<W>,
    /// Next-state words latched per DFF (parallel to `netlist.dffs()`).
    dff_next: Vec<W>,
    /// Per-DFF D-input slots, resolved once at construction.
    dff_d: Vec<u32>,
    /// Vertical carry-save toggle counters: `PLANES` words per node.
    planes: Vec<W>,
    /// Exact per-lane toggle counts flushed out of the planes
    /// (`node * W::LANES + lane`).
    lane_toggles: Vec<u64>,
    /// Counted cycles per lane (`W::LANES` entries).
    lane_cycles: Vec<u64>,
    /// Counted steps since the last plane flush.
    pending: u64,
    initialized: bool,
}

impl<'a, W: Word> WideSim<'a, W> {
    /// Compiles the netlist and creates a simulator with all lanes at
    /// their initial values.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        Self::from_program(netlist, Program::compile(netlist)?)
    }

    /// Creates a simulator from a pre-compiled [`CompiledKernel`] without
    /// recompiling the instruction stream (the kernel-cache fast path of
    /// long-running services: compile once per circuit, stamp out
    /// simulators per request).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::KernelMismatch`] if `kernel` was compiled
    /// from a different netlist.
    pub fn with_kernel(
        netlist: &'a Netlist,
        kernel: &CompiledKernel,
    ) -> Result<Self, NetlistError> {
        kernel.check_matches(netlist)?;
        Self::from_program(netlist, kernel.program.clone())
    }

    fn from_program(netlist: &'a Netlist, program: Program) -> Result<Self, NetlistError> {
        let values = program.init_words::<W>();
        let mut dff_next = Vec::with_capacity(netlist.dffs().len());
        let mut dff_d = Vec::with_capacity(netlist.dffs().len());
        for &q in netlist.dffs() {
            if let NodeKind::Dff { d, init } = netlist.kind(q) {
                dff_next.push(W::splat(*init));
                dff_d.push(d.index() as u32);
            }
        }
        let n = netlist.node_count();
        Ok(WideSim {
            netlist,
            program,
            values,
            dff_next,
            dff_d,
            planes: vec![W::zero(); n * PLANES],
            lane_toggles: vec![0; n * W::LANES],
            lane_cycles: vec![0; W::LANES],
            pending: 0,
            initialized: false,
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Packed current value of a node (lane `l` is stream `l`).
    pub fn value_word(&self, node: NodeId) -> W {
        self.values[node.index()]
    }

    /// Packed current values of the primary outputs, in declaration order.
    pub fn output_words(&self) -> Vec<W> {
        self.netlist.outputs().iter().map(|&(_, n)| self.values[n.index()]).collect()
    }

    /// Advances every lane by one clock cycle. `inputs[i]` packs the bit
    /// of primary input `i` for all lanes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// have one word per primary input.
    pub fn step(&mut self, inputs: &[W]) -> Result<(), NetlistError> {
        self.step_masked(inputs, W::splat(true))
    }

    /// [`step`](Self::step) restricted to the lanes set in `mask`.
    ///
    /// Masked-out lanes do not accumulate toggles or cycles this step, so
    /// lanes whose stimulus streams end early stop exactly where their
    /// scalar runs would. A lane must not be re-activated after a masked
    /// step: the contract is a prefix-closed active set per lane (active
    /// for its first `k` steps, inactive afterwards), matching a scalar
    /// run over a `k`-vector stream. Input bits of inactive lanes are
    /// don't-cares.
    ///
    /// # Errors
    ///
    /// As [`step`](Self::step).
    pub fn step_masked(&mut self, inputs: &[W], mask: W) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                got: inputs.len(),
                expected: self.netlist.input_count(),
            });
        }
        obs::SIM64_STEPS.inc();
        obs::SIM64_GATE_EVALS.add(self.program.instrs.len() as u64);
        // The first step only establishes values (no previous vector to
        // toggle from); count nothing by masking every diff to zero.
        let count_mask = if self.initialized { mask } else { W::zero() };
        // Present DFF outputs (sampled at the previous edge).
        for (i, &q) in self.netlist.dffs().iter().enumerate() {
            let slot = q.index();
            let new = self.dff_next[i];
            bump_planes(
                &mut self.planes,
                slot * PLANES,
                self.values[slot].xor(new).and(count_mask),
            );
            self.values[slot] = new;
        }
        // Apply primary inputs.
        for (i, &inp) in self.netlist.inputs().iter().enumerate() {
            let slot = inp.index();
            let new = inputs[i];
            bump_planes(
                &mut self.planes,
                slot * PLANES,
                self.values[slot].xor(new).and(count_mask),
            );
            self.values[slot] = new;
        }
        // Settle combinational logic via the compiled instruction stream
        // (runtime-dispatched to the widest available vector path).
        settle(&self.program, &mut self.values, &mut self.planes, count_mask);
        // Sample D inputs for the next cycle.
        for (i, &d) in self.dff_d.iter().enumerate() {
            self.dff_next[i] = self.values[d as usize];
        }
        if self.initialized {
            obs::SIM64_LANE_CYCLES.add(mask.count_ones() as u64);
            for l in 0..W::LANES {
                self.lane_cycles[l] += mask.lane(l) as u64;
            }
            self.pending += 1;
            if self.pending >= FLUSH_INTERVAL {
                flush_planes(&mut self.planes, &mut self.lane_toggles, self.netlist.node_count());
                self.pending = 0;
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// Returns the per-lane activity records and resets the counters
    /// (values, flip-flop state, and the initialized flag are preserved so
    /// runs can be chained, mirroring the scalar `take_activity`).
    ///
    /// Lane `l`'s record is bit-identical to what a scalar
    /// [`crate::ZeroDelaySim`] run over lane `l`'s stream would have
    /// accumulated.
    pub fn take_lane_activities(&mut self) -> Vec<Activity> {
        let n = self.netlist.node_count();
        flush_planes(&mut self.planes, &mut self.lane_toggles, n);
        self.pending = 0;
        // Transpose node-major: one sequential pass over the strided
        // totals, scattering into at most `LANES` write streams (which
        // stay cache-resident), instead of `LANES` strided gathers that
        // each touch one cache line per node.
        let mut out: Vec<Activity> = self
            .lane_cycles
            .iter()
            .map(|&cycles| Activity { toggles: vec![0u64; n], cycles })
            .collect();
        let mut total_toggles = 0u64;
        for (node, row) in self.lane_toggles.chunks_exact(W::LANES).enumerate() {
            for (l, &t) in row.iter().enumerate() {
                if t != 0 {
                    out[l].toggles[node] = t;
                    total_toggles += t;
                }
            }
        }
        obs::SIM64_TOGGLES.add(total_toggles);
        self.lane_toggles.iter_mut().for_each(|t| *t = 0);
        self.lane_cycles.iter_mut().for_each(|c| *c = 0);
        out
    }

    /// Finalizes the run straight into per-lane `(total power µW,
    /// counted cycles)` samples under a precomputed [`PowerModel`],
    /// resetting the counters exactly like
    /// [`take_lane_activities`](Self::take_lane_activities).
    ///
    /// This is the Monte-Carlo fast path: the conversion runs node-major
    /// over the strided totals without materializing `LANES` per-lane
    /// toggle vectors, which otherwise costs more than the packed
    /// simulation itself at 256/512 lanes. Lane `l`'s sample is
    /// bit-identical to `model.total_power_uw(&lane_activity)` of the
    /// record [`take_lane_activities`](Self::take_lane_activities) would
    /// have returned for that lane.
    pub fn take_lane_powers(&mut self, model: &PowerModel) -> Vec<(f64, u64)> {
        let n = self.netlist.node_count();
        flush_planes(&mut self.planes, &mut self.lane_toggles, n);
        self.pending = 0;
        obs::SIM64_TOGGLES.add(self.lane_toggles.iter().sum());
        let powers = model.lane_powers_uw(&self.lane_toggles, W::LANES, &self.lane_cycles);
        let out = powers.into_iter().zip(self.lane_cycles.iter().copied()).collect();
        self.lane_toggles.iter_mut().for_each(|t| *t = 0);
        self.lane_cycles.iter_mut().for_each(|c| *c = 0);
        out
    }

    /// Returns the lane-collapsed activity (all lanes merged: toggles
    /// summed per node, cycles summed) and resets the counters.
    pub fn take_activity(&mut self) -> Activity {
        let n = self.netlist.node_count();
        flush_planes(&mut self.planes, &mut self.lane_toggles, n);
        self.pending = 0;
        let mut toggles = vec![0u64; n];
        for (node, t) in toggles.iter_mut().enumerate() {
            *t = self.lane_toggles[node * W::LANES..(node + 1) * W::LANES].iter().sum();
        }
        obs::SIM64_TOGGLES.add(toggles.iter().sum::<u64>());
        self.lane_toggles.iter_mut().for_each(|t| *t = 0);
        let cycles = self.lane_cycles.iter().sum();
        self.lane_cycles.iter_mut().for_each(|c| *c = 0);
        Activity { toggles, cycles }
    }
}

/// The width-generic lane-parallel compiled *timed* (glitch-capturing)
/// simulator: [`Word::LANES`] independent stimulus lanes advance one
/// clock cycle per [`step`](WideTimedSim::step), with every glitch
/// counted.
///
/// Sequencing per step matches [`crate::EventDrivenSim`] exactly:
/// flip-flop outputs and primary inputs change at time zero, events
/// propagate through a discretized time wheel in `(time, node)` order
/// under the library's transport delays, functional transitions are
/// recovered from the settled-state diff, and flip-flops sample their D
/// inputs. The first step initializes values without counting.
/// [`crate::TimedSim64`] is this type at `W = u64`.
#[derive(Debug, Clone)]
pub struct WideTimedSim<'a, W: Word> {
    netlist: &'a Netlist,
    program: Program,
    /// Per-node index into `program.instrs`, `u32::MAX` for non-gates.
    instr_of: Vec<u32>,
    /// CSR fanout graph restricted to gate fanouts: entry `(gate, delay)`
    /// where `delay` is the *bucketed* transport delay of the fanout gate.
    fan_start: Vec<u32>,
    fan: Vec<(u32, u32)>,
    /// Time-wheel extent: max bucketed gate delay + 1 (all pending events
    /// lie within one wheel revolution of the cursor).
    wheel_len: usize,
    /// Pending-evaluation lane masks, `wheel_len x node_count`.
    wheel: Vec<W>,
    /// Nodes with a nonzero mask per wheel slot.
    touched: Vec<Vec<u32>>,
    /// Total touched entries pending across all slots.
    outstanding: usize,
    /// Packed node values; lane `l` of a word is stimulus stream `l`.
    values: Vec<W>,
    /// Settled values at the start of the current step (functional diff).
    step_start: Vec<W>,
    /// Next-state words latched per DFF (parallel to `netlist.dffs()`).
    dff_next: Vec<W>,
    /// Per-DFF D-input slots.
    dff_d: Vec<u32>,
    /// Scratch buffer for one wheel slot's node list (sorted ascending).
    slot_nodes: Vec<u32>,
    /// Vertical counters for all transitions (functional + glitch).
    toggle_planes: Vec<W>,
    /// Vertical counters for functional (settled-state) transitions.
    func_planes: Vec<W>,
    /// Exact per-lane totals flushed out of the planes
    /// (`node * W::LANES + lane`).
    lane_toggles: Vec<u64>,
    lane_functional: Vec<u64>,
    lane_cycles: Vec<u64>,
    initialized: bool,
}

impl<'a, W: Word> WideTimedSim<'a, W> {
    /// Compiles the netlist under `lib`'s delay model and creates a
    /// simulator with all lanes at their settled initial values.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn new(netlist: &'a Netlist, lib: &Library) -> Result<Self, NetlistError> {
        Self::from_program(netlist, lib, Program::compile(netlist)?)
    }

    /// Creates a simulator from a pre-compiled [`CompiledKernel`] without
    /// recompiling the instruction stream. The delay wheel and fanout
    /// graph are still derived per instance (they depend on `lib`), but
    /// the dominant topological-sort + instruction-selection cost is
    /// skipped.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::KernelMismatch`] if `kernel` was compiled
    /// from a different netlist.
    pub fn with_kernel(
        netlist: &'a Netlist,
        lib: &Library,
        kernel: &CompiledKernel,
    ) -> Result<Self, NetlistError> {
        kernel.check_matches(netlist)?;
        Self::from_program(netlist, lib, kernel.program.clone())
    }

    fn from_program(
        netlist: &'a Netlist,
        lib: &Library,
        program: Program,
    ) -> Result<Self, NetlistError> {
        let _span = hlpower_obs::trace::span("sim64timed", "sim64timed.compile");
        let n = netlist.node_count();
        let mut instr_of = vec![u32::MAX; n];
        for (i, ins) in program.instrs.iter().enumerate() {
            instr_of[ins.out as usize] = i as u32;
        }
        // Bucket gate delays to the library's resolution: the GCD of all
        // gate delays. (1 for the default library; coarser libraries get a
        // proportionally shorter wheel.)
        let delays_ps = gate_delays_ps(netlist, lib);
        let resolution =
            delays_ps.iter().filter(|&&d| d > 0).fold(0u64, |acc, &d| gcd(d, acc)).max(1);
        let buckets: Vec<u64> = delays_ps.iter().map(|&d| d / resolution).collect();
        let wheel_len = buckets.iter().max().copied().unwrap_or(0) as usize + 1;
        // Gate-only fanout CSR, annotated with the fanout's own delay.
        let fanouts = netlist.fanouts();
        let mut fan_start = vec![0u32; n + 1];
        let mut fan = Vec::new();
        for u in 0..n {
            for &f in &fanouts[u] {
                if matches!(netlist.kind(f), NodeKind::Gate { .. }) {
                    fan.push((f.index() as u32, buckets[f.index()] as u32));
                }
            }
            fan_start[u + 1] = fan.len() as u32;
        }
        // Settle the combinational network from the broadcast initial
        // state, mirroring the scalar constructor.
        let mut values = program.init_words::<W>();
        for ins in &program.instrs {
            values[ins.out as usize] = program.eval(&values, ins);
        }
        let mut dff_next = Vec::with_capacity(netlist.dffs().len());
        let mut dff_d = Vec::with_capacity(netlist.dffs().len());
        for &q in netlist.dffs() {
            if let NodeKind::Dff { d, init } = netlist.kind(q) {
                dff_next.push(W::splat(*init));
                dff_d.push(d.index() as u32);
            }
        }
        Ok(WideTimedSim {
            netlist,
            program,
            instr_of,
            fan_start,
            fan,
            wheel_len,
            wheel: vec![W::zero(); wheel_len * n],
            touched: vec![Vec::new(); wheel_len],
            outstanding: 0,
            values,
            step_start: vec![W::zero(); n],
            dff_next,
            dff_d,
            slot_nodes: Vec::new(),
            toggle_planes: vec![W::zero(); n * PLANES],
            func_planes: vec![W::zero(); n * PLANES],
            lane_toggles: vec![0; n * W::LANES],
            lane_functional: vec![0; n * W::LANES],
            lane_cycles: vec![0; W::LANES],
            initialized: false,
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Packed current value of a node (lane `l` is stream `l`).
    pub fn value_word(&self, node: NodeId) -> W {
        self.values[node.index()]
    }

    /// Applies a source-node change: updates lanes in `mask`, counts
    /// toggles in `count_mask`, and schedules the gate fanouts of the
    /// changed lanes at their transport delays (time zero of this step).
    fn seed_source(&mut self, node: usize, new: W, mask: W, count_mask: W) {
        let changed = self.values[node].xor(new).and(mask);
        if changed.is_zero() {
            return;
        }
        self.values[node] = self.values[node].xor(changed);
        bump_planes_spill(
            &mut self.toggle_planes,
            node * PLANES,
            &mut self.lane_toggles,
            node * W::LANES,
            changed.and(count_mask),
        );
        let n = self.instr_of.len();
        for k in self.fan_start[node] as usize..self.fan_start[node + 1] as usize {
            let (f, db) = self.fan[k];
            // Gate delays are >= 1 bucket, so at time zero the target slot
            // is the delay itself (no wrap).
            let idx = db as usize * n + f as usize;
            if self.wheel[idx].is_zero() {
                self.touched[db as usize].push(f);
                self.outstanding += 1;
            }
            self.wheel[idx] = self.wheel[idx].or(changed);
        }
    }

    /// Processes the wheel until no events remain, counting toggles in
    /// `count_mask`. Returns the number of word-wide evaluations (each
    /// coalesces up to `W::LANES` scalar heap pops at one `(time, node)`
    /// point).
    fn drain(&mut self, count_mask: W) -> u64 {
        let n = self.instr_of.len();
        let mut events = 0u64;
        let mut t = 0usize;
        while self.outstanding > 0 {
            t += 1;
            let slot = t % self.wheel_len;
            if self.touched[slot].is_empty() {
                continue;
            }
            let mut nodes = std::mem::take(&mut self.slot_nodes);
            std::mem::swap(&mut nodes, &mut self.touched[slot]);
            self.outstanding -= nodes.len();
            // Scalar tie-break: equal-time events pop in ascending node-id
            // order. A node appears at most once per slot (wheel dedup).
            nodes.sort_unstable();
            for &node in &nodes {
                let idx = slot * n + node as usize;
                let sched = self.wheel[idx];
                self.wheel[idx] = W::zero();
                events += 1;
                let ins = self.program.instrs[self.instr_of[node as usize] as usize];
                let new = self.program.eval(&self.values, &ins);
                let node = node as usize;
                let changed = self.values[node].xor(new).and(sched);
                if changed.is_zero() {
                    continue;
                }
                self.values[node] = self.values[node].xor(changed);
                bump_planes_spill(
                    &mut self.toggle_planes,
                    node * PLANES,
                    &mut self.lane_toggles,
                    node * W::LANES,
                    changed.and(count_mask),
                );
                for k in self.fan_start[node] as usize..self.fan_start[node + 1] as usize {
                    let (f, db) = self.fan[k];
                    // Delays are in [1, wheel_len - 1], so the target slot
                    // never collides with the slot being processed.
                    let slot2 = (t + db as usize) % self.wheel_len;
                    let idx2 = slot2 * n + f as usize;
                    if self.wheel[idx2].is_zero() {
                        self.touched[slot2].push(f);
                        self.outstanding += 1;
                    }
                    self.wheel[idx2] = self.wheel[idx2].or(changed);
                }
            }
            nodes.clear();
            self.slot_nodes = nodes;
        }
        events
    }

    /// Advances every lane by one clock cycle. `inputs[i]` packs the bit
    /// of primary input `i` for all lanes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// have one word per primary input.
    pub fn step(&mut self, inputs: &[W]) -> Result<(), NetlistError> {
        self.step_masked(inputs, W::splat(true))
    }

    /// [`step`](Self::step) restricted to the lanes set in `mask`.
    ///
    /// The contract matches [`WideSim::step_masked`]: a prefix-closed
    /// active set per lane (active for its first `k` steps, inactive
    /// afterwards) makes lane `l` bit-identical to a scalar
    /// [`crate::EventDrivenSim`] run over a `k`-vector stream. Input bits
    /// of inactive lanes are don't-cares.
    ///
    /// # Errors
    ///
    /// As [`step`](Self::step).
    pub fn step_masked(&mut self, inputs: &[W], mask: W) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                got: inputs.len(),
                expected: self.netlist.input_count(),
            });
        }
        // The first step only establishes values; count nothing.
        let count_mask = if self.initialized { mask } else { W::zero() };
        self.step_start.copy_from_slice(&self.values);
        // Time-zero events: DFF outputs and primary inputs.
        for i in 0..self.dff_next.len() {
            let q = self.netlist.dffs()[i].index();
            let new = self.dff_next[i];
            self.seed_source(q, new, mask, count_mask);
        }
        for (i, &new) in inputs.iter().enumerate() {
            let inp = self.netlist.inputs()[i].index();
            self.seed_source(inp, new, mask, count_mask);
        }
        let events = self.drain(count_mask);
        obs::SIM_EVP_STEPS.inc();
        obs::SIM_EVP_EVENTS.add(events);
        // Functional transition accounting: settled-state diff.
        if !count_mask.is_zero() {
            for node in 0..self.values.len() {
                let diff = self.step_start[node].xor(self.values[node]).and(count_mask);
                if !diff.is_zero() {
                    bump_planes_spill(
                        &mut self.func_planes,
                        node * PLANES,
                        &mut self.lane_functional,
                        node * W::LANES,
                        diff,
                    );
                }
            }
        }
        // Sample D inputs for the next cycle.
        for (i, &d) in self.dff_d.iter().enumerate() {
            self.dff_next[i] = self.values[d as usize];
        }
        if self.initialized {
            obs::SIM_EVP_LANE_CYCLES.add(mask.count_ones() as u64);
            for l in 0..W::LANES {
                self.lane_cycles[l] += mask.lane(l) as u64;
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// Replays [`Word::LANES`] independent *transitions* of a single
    /// stream: lane `l` starts from settled state `from` and receives the
    /// source-node (primary input and flip-flop output) values of settled
    /// state `to`, both packed per node with lane `l` = transition `l`.
    /// Used by [`crate::timed_activity`]'s trajectory driver; every lane
    /// counts (no initialization step), and flip-flop latching state is
    /// bypassed, so do not mix transition blocks with
    /// [`step`](Self::step) calls on one instance.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ActivitySizeMismatch`] if `from`/`to` do
    /// not have one word per node.
    pub fn eval_transition_block(
        &mut self,
        from: &[W],
        to: &[W],
        mask: W,
    ) -> Result<(), NetlistError> {
        let n = self.values.len();
        if from.len() != n || to.len() != n {
            return Err(NetlistError::ActivitySizeMismatch {
                left: n,
                right: if from.len() != n { from.len() } else { to.len() },
            });
        }
        self.values.copy_from_slice(from);
        for i in 0..self.dff_next.len() {
            let q = self.netlist.dffs()[i].index();
            self.seed_source(q, to[q], mask, mask);
        }
        for i in 0..self.netlist.input_count() {
            // Primary inputs change at time zero like DFF outputs.
            let inp = self.netlist.inputs()[i].index();
            self.seed_source(inp, to[inp], mask, mask);
        }
        let events = self.drain(mask);
        obs::SIM_EVP_STEPS.inc();
        obs::SIM_EVP_EVENTS.add(events);
        obs::SIM_EVP_LANE_CYCLES.add(mask.count_ones() as u64);
        for node in 0..n {
            debug_assert!(
                self.values[node].xor(to[node]).and(mask).is_zero(),
                "event-driven settle diverged from the zero-delay trajectory at node {node}"
            );
            let diff = from[node].xor(self.values[node]).and(mask);
            if !diff.is_zero() {
                bump_planes_spill(
                    &mut self.func_planes,
                    node * PLANES,
                    &mut self.lane_functional,
                    node * W::LANES,
                    diff,
                );
            }
        }
        for l in 0..W::LANES {
            self.lane_cycles[l] += mask.lane(l) as u64;
        }
        Ok(())
    }

    /// Returns the per-lane timed-activity records and resets the
    /// counters (values, flip-flop state, and the initialized flag are
    /// preserved so runs can be chained, mirroring the scalar
    /// `take_activity`).
    ///
    /// Lane `l`'s record is bit-identical to what a scalar
    /// [`crate::EventDrivenSim`] run over lane `l`'s stream would have
    /// accumulated.
    pub fn take_lane_activities(&mut self) -> Vec<TimedActivity> {
        let n = self.values.len();
        flush_planes(&mut self.toggle_planes, &mut self.lane_toggles, n);
        flush_planes(&mut self.func_planes, &mut self.lane_functional, n);
        // Node-major transpose, for the same cache reasons as
        // `WideSim::take_lane_activities`.
        let mut out: Vec<TimedActivity> = self
            .lane_cycles
            .iter()
            .map(|&cycles| TimedActivity {
                activity: Activity { toggles: vec![0u64; n], cycles },
                functional: vec![0u64; n],
            })
            .collect();
        let mut total_toggles = 0u64;
        let mut total_glitches = 0u64;
        for node in 0..n {
            let row = &self.lane_toggles[node * W::LANES..(node + 1) * W::LANES];
            let func = &self.lane_functional[node * W::LANES..(node + 1) * W::LANES];
            for (l, (&t, &f)) in row.iter().zip(func).enumerate() {
                if t != 0 || f != 0 {
                    out[l].activity.toggles[node] = t;
                    out[l].functional[node] = f;
                    total_toggles += t;
                    total_glitches += t.saturating_sub(f);
                }
            }
        }
        obs::SIM_EVP_TRANSITIONS.add(total_toggles);
        obs::SIM_EVP_GLITCHES.add(total_glitches);
        self.lane_toggles.iter_mut().for_each(|t| *t = 0);
        self.lane_functional.iter_mut().for_each(|t| *t = 0);
        self.lane_cycles.iter_mut().for_each(|c| *c = 0);
        out
    }

    /// Finalizes the run straight into per-lane `(total power µW,
    /// counted cycles)` samples under a precomputed [`PowerModel`] — the
    /// glitch-aware sibling of [`WideSim::take_lane_powers`], over the
    /// glitch-inclusive toggle totals. Lane `l`'s sample is bit-identical
    /// to `model.total_power_uw(&lane.activity)` of the record
    /// [`take_lane_activities`](Self::take_lane_activities) would have
    /// returned for that lane.
    pub fn take_lane_powers(&mut self, model: &PowerModel) -> Vec<(f64, u64)> {
        let n = self.values.len();
        flush_planes(&mut self.toggle_planes, &mut self.lane_toggles, n);
        flush_planes(&mut self.func_planes, &mut self.lane_functional, n);
        let (mut total_toggles, mut total_glitches) = (0u64, 0u64);
        for (&t, &f) in self.lane_toggles.iter().zip(&self.lane_functional) {
            total_toggles += t;
            total_glitches += t.saturating_sub(f);
        }
        obs::SIM_EVP_TRANSITIONS.add(total_toggles);
        obs::SIM_EVP_GLITCHES.add(total_glitches);
        let powers = model.lane_powers_uw(&self.lane_toggles, W::LANES, &self.lane_cycles);
        let out = powers.into_iter().zip(self.lane_cycles.iter().copied()).collect();
        self.lane_toggles.iter_mut().for_each(|t| *t = 0);
        self.lane_functional.iter_mut().for_each(|t| *t = 0);
        self.lane_cycles.iter_mut().for_each(|c| *c = 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventDrivenSim;
    use crate::sim::ZeroDelaySim;
    use crate::{gen, streams};
    use hlpower_rng::Rng;

    fn adder(bits: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", bits);
        let b = nl.input_bus("b", bits);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        nl
    }

    fn fir() -> Netlist {
        let mut nl = Netlist::new();
        let x = nl.input_bus("x", 6);
        let y = gen::fir_filter(&mut nl, &x, &[7, 13, 7], true);
        nl.output_bus("y", &y);
        nl
    }

    /// Packs per-lane bool vectors into input words.
    fn pack<W: Word>(vectors: &[Vec<bool>]) -> Vec<W> {
        let width = vectors[0].len();
        let mut words = vec![W::zero(); width];
        for (lane, v) in vectors.iter().enumerate() {
            for (i, &b) in v.iter().enumerate() {
                words[i].set_lane(lane, b);
            }
        }
        words
    }

    fn wide_lanes_match_scalar<W: Word>(sample: &[usize]) {
        let nl = fir();
        let w = nl.input_count();
        let root = Rng::seed_from_u64(42);
        let cycles = 60;
        let mut sim = WideSim::<W>::new(&nl).unwrap();
        let mut iters: Vec<_> =
            (0..W::LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        for _ in 0..cycles {
            let vectors: Vec<Vec<bool>> = iters.iter_mut().map(|it| it.next().unwrap()).collect();
            sim.step(&pack(&vectors)).unwrap();
        }
        let lanes = sim.take_lane_activities();
        assert_eq!(lanes.len(), W::LANES);
        for &l in sample {
            let mut scalar = ZeroDelaySim::new(&nl).unwrap();
            let act = scalar
                .run(streams::random_rng(root.split(l as u64), w).take(cycles))
                .expect("width matches");
            assert_eq!(lanes[l], act, "lane {l} diverged from its scalar stream");
        }
    }

    #[test]
    fn w256_lanes_match_scalar_streams() {
        wide_lanes_match_scalar::<W256>(&[0, 63, 64, 128, 255]);
    }

    #[test]
    fn w512_lanes_match_scalar_streams() {
        wide_lanes_match_scalar::<W512>(&[0, 64, 255, 256, 511]);
    }

    fn wide_timed_lanes_match_scalar<W: Word>(sample: &[usize]) {
        let nl = adder(4);
        let lib = Library::default();
        let w = nl.input_count();
        let root = Rng::seed_from_u64(7);
        let cycles = 40;
        let mut sim = WideTimedSim::<W>::new(&nl, &lib).unwrap();
        let mut iters: Vec<_> =
            (0..W::LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        for _ in 0..cycles {
            let vectors: Vec<Vec<bool>> = iters.iter_mut().map(|it| it.next().unwrap()).collect();
            sim.step(&pack(&vectors)).unwrap();
        }
        let lanes = sim.take_lane_activities();
        for &l in sample {
            let mut scalar = EventDrivenSim::new(&nl, &lib).unwrap();
            let act =
                scalar.run(streams::random_rng(root.split(l as u64), w).take(cycles)).unwrap();
            assert_eq!(lanes[l], act, "timed lane {l} diverged from its scalar stream");
        }
    }

    #[test]
    fn w256_timed_lanes_match_scalar_event_sim() {
        wide_timed_lanes_match_scalar::<W256>(&[0, 64, 255]);
    }

    #[test]
    fn w512_timed_lanes_match_scalar_event_sim() {
        wide_timed_lanes_match_scalar::<W512>(&[0, 256, 511]);
    }

    #[test]
    fn plane_spill_is_exact_past_the_top_plane() {
        // Force the carry chain out of the 16-plane stack and check that
        // the spilled weight lands exactly in the 64-bit totals, for every
        // word width.
        fn check<W: Word>() {
            let mut planes = vec![W::zero(); PLANES];
            let mut totals = vec![0u64; W::LANES];
            let reps = (1u64 << PLANES) + 5;
            for _ in 0..reps {
                bump_planes_spill(&mut planes, 0, &mut totals, 0, W::splat(true));
            }
            flush_planes(&mut planes, &mut totals, 1);
            for (l, &t) in totals.iter().enumerate() {
                assert_eq!(t, reps, "lane {l}");
            }
        }
        check::<u64>();
        check::<W256>();
        check::<W512>();
    }

    #[test]
    fn simd_level_is_stable_and_ordered() {
        let level = simd_level();
        assert_eq!(level, simd_level(), "detection must be cached/consistent");
        assert!(SimdLevel::Scalar < SimdLevel::Avx2);
        assert!(SimdLevel::Avx2 < SimdLevel::Avx512);
    }
}
