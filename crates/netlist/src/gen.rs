//! Parameterized benchmark-circuit generators.
//!
//! The survey's experiments ran on MCNC/ISCAS benchmark circuits and
//! datapath macros characterized with 1990s tooling. As a substitution this
//! module generates the same circuit *families* from scratch: ripple-carry
//! adders, array multipliers, shift-add constant multipliers (CSD recoded),
//! comparators, ALUs, parity trees, FIR filter datapaths, and seeded random
//! logic for regression-model training sets.
//!
//! All word-level generators use least-significant-bit-first buses and
//! two's-complement modulo arithmetic at the declared output width.

use hlpower_rng::Rng;

use crate::library::GateKind;
use crate::netlist::{Bus, Netlist, NodeId};

/// One-bit full adder; returns `(sum, carry_out)`.
pub fn full_adder(nl: &mut Netlist, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let s1 = nl.xor([a, b]);
    let sum = nl.xor([s1, cin]);
    let c1 = nl.and([a, b]);
    let c2 = nl.and([s1, cin]);
    let cout = nl.or([c1, c2]);
    (sum, cout)
}

/// Zero-extends a bus to `width` bits.
pub fn zero_extend(nl: &mut Netlist, bus: &[NodeId], width: usize) -> Bus {
    let zero = nl.constant(false);
    let mut out: Bus = bus.to_vec();
    while out.len() < width {
        out.push(zero);
    }
    out.truncate(width);
    out
}

/// Ripple-carry adder: `a + b + cin`, producing `max(|a|,|b|) + 1` bits
/// (the top bit is the carry out).
pub fn ripple_adder(nl: &mut Netlist, a: &[NodeId], b: &[NodeId], cin: NodeId) -> Bus {
    let w = a.len().max(b.len());
    let a = zero_extend(nl, a, w);
    let b = zero_extend(nl, b, w);
    let mut carry = cin;
    let mut out = Vec::with_capacity(w + 1);
    for i in 0..w {
        let (s, c) = full_adder(nl, a[i], b[i], carry);
        out.push(s);
        carry = c;
    }
    out.push(carry);
    out
}

/// Modulo adder: `(a + b) mod 2^width`.
pub fn add_mod(nl: &mut Netlist, a: &[NodeId], b: &[NodeId], width: usize) -> Bus {
    let a = zero_extend(nl, a, width);
    let b = zero_extend(nl, b, width);
    let zero = nl.constant(false);
    let mut out = ripple_adder(nl, &a, &b, zero);
    out.truncate(width);
    out
}

/// Modulo subtractor: `(a - b) mod 2^width` (two's complement).
pub fn sub_mod(nl: &mut Netlist, a: &[NodeId], b: &[NodeId], width: usize) -> Bus {
    let a = zero_extend(nl, a, width);
    let b = zero_extend(nl, b, width);
    let nb: Bus = b.iter().map(|&x| nl.not(x)).collect();
    let one = nl.constant(true);
    let mut out = ripple_adder(nl, &a, &nb, one);
    out.truncate(width);
    out
}

/// Left-shifts a bus by a constant amount within `width` bits.
pub fn shift_left(nl: &mut Netlist, a: &[NodeId], amount: usize, width: usize) -> Bus {
    let zero = nl.constant(false);
    let mut out = vec![zero; amount.min(width)];
    for &bit in a {
        if out.len() >= width {
            break;
        }
        out.push(bit);
    }
    while out.len() < width {
        out.push(zero);
    }
    out
}

/// Unsigned array multiplier: `a * b` producing `|a| + |b|` bits.
pub fn array_multiplier(nl: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Bus {
    let w = a.len() + b.len();
    let zero = nl.constant(false);
    let mut acc: Bus = vec![zero; w];
    for (i, &bi) in b.iter().enumerate() {
        // Partial product: a AND b_i, shifted by i.
        let pp: Bus = a.iter().map(|&aj| nl.and([aj, bi])).collect();
        let shifted = shift_left(nl, &pp, i, w);
        acc = add_mod(nl, &acc, &shifted, w);
    }
    acc
}

/// Canonical signed digit (CSD) recoding of a constant: returns digits in
/// `{-1, 0, +1}`, least-significant first, with no two adjacent nonzeros.
pub fn csd_digits(k: u64) -> Vec<i8> {
    let mut digits = Vec::new();
    let mut x = k as u128;
    while x != 0 {
        if x & 1 == 1 {
            // Choose +1 or -1 so the remaining value becomes even with a
            // longer run of zeros (standard CSD rule: look at bit 1).
            if x & 2 == 2 {
                digits.push(-1i8);
                x += 1;
            } else {
                digits.push(1i8);
                x -= 1;
            }
        } else {
            digits.push(0);
        }
        x >>= 1;
    }
    digits
}

/// Number of add/subtract operations a CSD shift-add multiplier by `k`
/// needs (nonzero digits minus one, floored at zero).
pub fn csd_adder_count(k: u64) -> usize {
    csd_digits(k).iter().filter(|&&d| d != 0).count().saturating_sub(1)
}

/// Constant multiplier by `k` implemented as CSD shift-add network, the
/// strength-reduction transformation of survey §III-C. Produces
/// `a.len() + bits(k)` bits, computed modulo that width.
pub fn csd_const_multiplier(nl: &mut Netlist, a: &[NodeId], k: u64) -> Bus {
    let kbits = 64 - k.leading_zeros() as usize;
    let w = a.len() + kbits.max(1);
    let zero = nl.constant(false);
    if k == 0 {
        return vec![zero; w];
    }
    let mut acc: Option<Bus> = None;
    for (i, &d) in csd_digits(k).iter().enumerate() {
        if d == 0 {
            continue;
        }
        let term = shift_left(nl, a, i, w);
        acc = Some(match acc {
            None => {
                if d > 0 {
                    term
                } else {
                    let z: Bus = vec![zero; w];
                    sub_mod(nl, &z, &term, w)
                }
            }
            Some(prev) => {
                if d > 0 {
                    add_mod(nl, &prev, &term, w)
                } else {
                    sub_mod(nl, &prev, &term, w)
                }
            }
        });
    }
    acc.expect("k != 0 has at least one nonzero CSD digit")
}

/// Equality comparator over two equal-width buses.
///
/// # Panics
///
/// Panics if the buses differ in width.
pub fn equality(nl: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> NodeId {
    assert_eq!(a.len(), b.len(), "equality comparator requires equal widths");
    let bits: Vec<NodeId> = a.iter().zip(b).map(|(&x, &y)| nl.xnor([x, y])).collect();
    if bits.len() == 1 {
        bits[0]
    } else {
        nl.and(bits)
    }
}

/// Unsigned magnitude comparator: returns a node that is 1 when `a < b`.
///
/// # Panics
///
/// Panics if the buses differ in width.
pub fn less_than(nl: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> NodeId {
    assert_eq!(a.len(), b.len(), "magnitude comparator requires equal widths");
    // Ripple borrow: lt_i = (~a_i & b_i) | (eq_i & lt_{i-1}).
    let mut lt = nl.constant(false);
    for i in 0..a.len() {
        let na = nl.not(a[i]);
        let strict = nl.and([na, b[i]]);
        let eq = nl.xnor([a[i], b[i]]);
        let carry = nl.and([eq, lt]);
        lt = nl.or([strict, carry]);
    }
    lt
}

/// Word-wide 2:1 mux.
///
/// # Panics
///
/// Panics if the buses differ in width.
pub fn mux_bus(nl: &mut Netlist, sel: NodeId, a: &[NodeId], b: &[NodeId]) -> Bus {
    assert_eq!(a.len(), b.len(), "mux requires equal widths");
    a.iter().zip(b).map(|(&x, &y)| nl.mux(sel, x, y)).collect()
}

/// A 4-function ALU selected by two opcode bits `op = [op0, op1]`:
/// `00 -> add`, `01 -> sub`, `10 -> and`, `11 -> or`. Produces
/// `a.len()`-bit results (modulo arithmetic).
pub fn alu(nl: &mut Netlist, op: [NodeId; 2], a: &[NodeId], b: &[NodeId]) -> Bus {
    let w = a.len();
    let add = add_mod(nl, a, b, w);
    let sub = sub_mod(nl, a, b, w);
    let band: Bus = a.iter().zip(b).map(|(&x, &y)| nl.and([x, y])).collect();
    let bor: Bus = a.iter().zip(b).map(|(&x, &y)| nl.or([x, y])).collect();
    let arith = mux_bus(nl, op[0], &add, &sub);
    let logic = mux_bus(nl, op[0], &band, &bor);
    mux_bus(nl, op[1], &arith, &logic)
}

/// Parity (XOR) tree over a bus.
///
/// # Panics
///
/// Panics if the bus is empty.
pub fn parity(nl: &mut Netlist, a: &[NodeId]) -> NodeId {
    assert!(!a.is_empty(), "parity of empty bus");
    if a.len() == 1 {
        a[0]
    } else {
        nl.xor(a.iter().copied())
    }
}

/// Seeded random combinational logic: `n_gates` gates of random kind and
/// 2-3 fanin drawn over the growing frontier. Returns the netlist's output
/// nodes (the last `n_outputs` gates). Used to build regression training
/// sets, as the survey's complexity-model papers did with random functions.
pub fn random_logic(
    nl: &mut Netlist,
    seed: u64,
    n_inputs: usize,
    n_gates: usize,
    n_outputs: usize,
) -> Vec<NodeId> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut pool: Vec<NodeId> = (0..n_inputs).map(|i| nl.input(format!("x[{i}]"))).collect();
    let kinds =
        [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor, GateKind::Xor, GateKind::Xnor];
    let mut gates = Vec::with_capacity(n_gates);
    for _ in 0..n_gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let fanin = rng.gen_range(2..=3usize.min(pool.len()));
        let mut ins = Vec::with_capacity(fanin);
        for _ in 0..fanin {
            ins.push(pool[rng.gen_range(0..pool.len())]);
        }
        let g = nl.gate(kind, ins).expect("fanin >= 2");
        pool.push(g);
        gates.push(g);
    }
    let n_outputs = n_outputs.min(gates.len());
    let outs: Vec<NodeId> = gates[gates.len() - n_outputs..].to_vec();
    for (i, &o) in outs.iter().enumerate() {
        nl.set_output(format!("y[{i}]"), o);
    }
    outs
}

/// Direct-form FIR filter datapath with constant coefficients.
///
/// The input sample bus `x` feeds a registered delay line; each tap is
/// multiplied by its coefficient and the products are summed. When
/// `shift_add` is false, coefficient multiplications use full array
/// multipliers against a constant-driven bus (the "before" column of the
/// survey's Table I); when true they use CSD shift-add networks (the
/// "after" column).
///
/// Nodes are attributed to Table I's component groups: `execution units`,
/// `registers/clock`, and `interconnect` (inter-stage buffers).
pub fn fir_filter(nl: &mut Netlist, x: &[NodeId], coeffs: &[u64], shift_add: bool) -> Bus {
    let w = x.len();
    let max_coef_bits =
        coeffs.iter().map(|&c| (64 - c.leading_zeros()) as usize).max().unwrap_or(1).max(1);
    let acc_w = w + max_coef_bits + coeffs.len().next_power_of_two().trailing_zeros() as usize + 1;

    // Delay line.
    let mut taps: Vec<Bus> = Vec::with_capacity(coeffs.len());
    let mut cur: Bus = x.to_vec();
    taps.push(cur.clone());
    nl.with_group("registers/clock", |nl| {
        for _ in 1..coeffs.len() {
            cur = nl.dff_bus(&cur);
            taps.push(cur.clone());
        }
    });

    // Tap products.
    let products: Vec<Bus> = nl.with_group("execution units", |nl| {
        taps.iter()
            .zip(coeffs)
            .map(|(tap, &c)| {
                if shift_add {
                    let p = csd_const_multiplier(nl, tap, c);
                    zero_extend(nl, &p, acc_w)
                } else {
                    // Constant-operand array multiplier: one operand is the
                    // coefficient driven onto a constant bus. The multiplier
                    // hardware is built in full, as an unoptimized RTL
                    // library instantiation would.
                    let cbits = 64 - c.leading_zeros() as usize;
                    let cb: Bus =
                        (0..cbits.max(1)).map(|i| nl.constant((c >> i) & 1 == 1)).collect();
                    let p = array_multiplier(nl, tap, &cb);
                    zero_extend(nl, &p, acc_w)
                }
            })
            .collect()
    });

    // Balanced adder tree with buffered (interconnect-attributed) stages.
    let mut layer = products;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.chunks(2);
        for pair in &mut it {
            if pair.len() == 2 {
                let s =
                    nl.with_group("execution units", |nl| add_mod(nl, &pair[0], &pair[1], acc_w));
                let buffered: Bus =
                    nl.with_group("interconnect", |nl| s.iter().map(|&b| nl.buf(b)).collect());
                next.push(buffered);
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
    }
    layer.pop().unwrap_or_default()
}

/// The canonical six-circuit benchmark suite used by the differential
/// test suites, golden snapshots, and `repro --profile`: an 8-bit ripple
/// adder, a 4×4 array multiplier, a 4-bit ALU, a 6-bit comparator, a
/// shift-add FIR filter, and seeded random logic.
///
/// Returns `(name, netlist)` pairs in a fixed order. Each build is
/// wrapped in an `obs::trace` span (`gen.build:<name>`) so generator
/// construction shows up in exported traces.
pub fn benchmark_suite() -> Vec<(&'static str, Netlist)> {
    let build = |name: &'static str, f: &dyn Fn(&mut Netlist)| {
        let _span = hlpower_obs::trace::span_dyn("gen", || format!("gen.build:{name}"));
        let mut nl = Netlist::new();
        f(&mut nl);
        (name, nl)
    };
    vec![
        build("ripple_adder", &|nl| {
            let a = nl.input_bus("a", 8);
            let b = nl.input_bus("b", 8);
            let c0 = nl.constant(false);
            let s = ripple_adder(nl, &a, &b, c0);
            nl.output_bus("sum", &s);
        }),
        build("array_multiplier", &|nl| {
            let a = nl.input_bus("a", 4);
            let b = nl.input_bus("b", 4);
            let p = array_multiplier(nl, &a, &b);
            nl.output_bus("p", &p);
        }),
        build("alu", &|nl| {
            let op0 = nl.input("op0");
            let op1 = nl.input("op1");
            let a = nl.input_bus("a", 4);
            let b = nl.input_bus("b", 4);
            let y = alu(nl, [op0, op1], &a, &b);
            nl.output_bus("y", &y);
        }),
        build("comparator", &|nl| {
            let a = nl.input_bus("a", 6);
            let b = nl.input_bus("b", 6);
            let eq = equality(nl, &a, &b);
            let lt = less_than(nl, &a, &b);
            nl.set_output("eq", eq);
            nl.set_output("lt", lt);
        }),
        build("fir_shift_add", &|nl| {
            let x = nl.input_bus("x", 8);
            let y = fir_filter(nl, &x, &[7, 13, 7], true);
            nl.output_bus("y", &y);
        }),
        build("random_logic", &|nl| {
            random_logic(nl, 2024, 6, 24, 3);
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ZeroDelaySim;
    use crate::streams;
    use crate::words::{from_bits, to_bits};

    fn eval_once(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut sim = ZeroDelaySim::new(nl).unwrap();
        sim.eval_combinational(inputs).unwrap()
    }

    #[test]
    fn adder_is_correct_exhaustively() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let c0 = nl.constant(false);
        let s = ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        for x in 0u64..16 {
            for y in 0u64..16 {
                let mut v = to_bits(x, 4);
                v.extend(to_bits(y, 4));
                let out = eval_once(&nl, &v);
                assert_eq!(from_bits(&out), x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn subtractor_wraps_mod_2w() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let d = sub_mod(&mut nl, &a, &b, 4);
        nl.output_bus("d", &d);
        for x in 0u64..16 {
            for y in 0u64..16 {
                let mut v = to_bits(x, 4);
                v.extend(to_bits(y, 4));
                let out = eval_once(&nl, &v);
                assert_eq!(from_bits(&out), (x.wrapping_sub(y)) & 0xF, "{x}-{y}");
            }
        }
    }

    #[test]
    fn multiplier_is_correct() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let p = array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        for x in 0u64..16 {
            for y in 0u64..16 {
                let mut v = to_bits(x, 4);
                v.extend(to_bits(y, 4));
                let out = eval_once(&nl, &v);
                assert_eq!(from_bits(&out), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn csd_digits_reconstruct_value() {
        for k in [1u64, 2, 3, 7, 11, 15, 23, 100, 255, 1000, 0xABCD] {
            let val: i128 = csd_digits(k).iter().enumerate().map(|(i, &d)| (d as i128) << i).sum();
            assert_eq!(val, k as i128, "k = {k}");
        }
    }

    #[test]
    fn csd_has_no_adjacent_nonzeros() {
        for k in 1u64..500 {
            let d = csd_digits(k);
            for w in d.windows(2) {
                assert!(!(w[0] != 0 && w[1] != 0), "k = {k}, digits {d:?}");
            }
        }
    }

    #[test]
    fn csd_multiplier_matches_multiplication() {
        for k in [1u64, 3, 5, 7, 10, 23, 100, 255] {
            let mut nl = Netlist::new();
            let a = nl.input_bus("a", 6);
            let p = csd_const_multiplier(&mut nl, &a, k);
            nl.output_bus("p", &p);
            let w = p.len();
            for x in [0u64, 1, 5, 17, 42, 63] {
                let out = eval_once(&nl, &to_bits(x, 6));
                assert_eq!(from_bits(&out), (x * k) & ((1u64 << w) - 1), "{x}*{k}");
            }
        }
    }

    #[test]
    fn csd_uses_fewer_adders_than_binary_for_runs() {
        // 0b111111 = 63 needs 5 adders in plain binary, 1 in CSD (64 - 1).
        assert_eq!(csd_adder_count(63), 1);
        assert!(csd_adder_count(0b1011101) <= 3);
    }

    #[test]
    fn comparators_are_correct() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let eq = equality(&mut nl, &a, &b);
        let lt = less_than(&mut nl, &a, &b);
        nl.set_output("eq", eq);
        nl.set_output("lt", lt);
        for x in 0u64..16 {
            for y in 0u64..16 {
                let mut v = to_bits(x, 4);
                v.extend(to_bits(y, 4));
                let out = eval_once(&nl, &v);
                assert_eq!(out[0], x == y);
                assert_eq!(out[1], x < y);
            }
        }
    }

    #[test]
    fn alu_functions() {
        let mut nl = Netlist::new();
        let op = [nl.input("op0"), nl.input("op1")];
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let y = alu(&mut nl, op, &a, &b);
        nl.output_bus("y", &y);
        #[allow(clippy::type_complexity)]
        let cases: [(bool, bool, fn(u64, u64) -> u64); 4] = [
            (false, false, |x, y| (x + y) & 0xF),
            (true, false, |x, y| x.wrapping_sub(y) & 0xF),
            (false, true, |x, y| x & y),
            (true, true, |x, y| x | y),
        ];
        for (op0, op1, f) in cases {
            for (x, y) in [(3u64, 5u64), (12, 7), (15, 15), (0, 9)] {
                let mut v = vec![op0, op1];
                v.extend(to_bits(x, 4));
                v.extend(to_bits(y, 4));
                let out = eval_once(&nl, &v);
                assert_eq!(from_bits(&out), f(x, y), "op ({op0},{op1}) on {x},{y}");
            }
        }
    }

    #[test]
    fn random_logic_is_reproducible_and_sized() {
        let mut n1 = Netlist::new();
        let o1 = random_logic(&mut n1, 9, 8, 40, 4);
        let mut n2 = Netlist::new();
        let o2 = random_logic(&mut n2, 9, 8, 40, 4);
        assert_eq!(n1.gate_count(), 40);
        assert_eq!(o1.len(), 4);
        // Same seed, same structure.
        assert_eq!(n1.node_count(), n2.node_count());
        let _ = o2;
    }

    #[test]
    fn fir_filter_computes_convolution() {
        let coeffs = [3u64, 1, 2];
        for shift_add in [false, true] {
            let mut nl = Netlist::new();
            let x = nl.input_bus("x", 4);
            let y = fir_filter(&mut nl, &x, &coeffs, shift_add);
            nl.output_bus("y", &y);
            let mut sim = ZeroDelaySim::new(&nl).unwrap();
            let samples = [1u64, 2, 3, 4, 5];
            let mut outs = Vec::new();
            for &s in &samples {
                sim.step(&to_bits(s, 4)).unwrap();
                outs.push(from_bits(&sim.output_values()));
            }
            // y[n] = 3 x[n] + 1 x[n-1] + 2 x[n-2]
            let expect = |n: usize| {
                let x = |i: isize| if i < 0 { 0 } else { samples[i as usize] };
                3 * x(n as isize) + x(n as isize - 1) + 2 * x(n as isize - 2)
            };
            for (n, &o) in outs.iter().enumerate() {
                assert_eq!(o, expect(n), "sample {n}, shift_add={shift_add}");
            }
        }
    }

    #[test]
    fn fir_shift_add_switches_less_capacitance() {
        let coeffs = [13u64, 7, 25, 7, 13];
        let build = |shift_add: bool| {
            let mut nl = Netlist::new();
            let x = nl.input_bus("x", 8);
            let y = fir_filter(&mut nl, &x, &coeffs, shift_add);
            nl.output_bus("y", &y);
            nl
        };
        let lib = crate::Library::default();
        let measure = |nl: &Netlist| {
            let mut sim = ZeroDelaySim::new(nl).unwrap();
            let act =
                sim.run(streams::random(4, nl.input_count()).take(300)).expect("width matches");
            act.power(nl, &lib).switched_cap_ff_per_cycle
        };
        let before = build(false);
        let after = build(true);
        assert!(measure(&after) < measure(&before));
    }
}
