//! Dirty-cone incremental re-simulation with real delays and glitches.
//!
//! [`crate::IncrementalSim`] answers "what is the *functional* activity of
//! this mutated netlist" in time proportional to the edit; the balance and
//! retiming passes need the same question answered under the transport-
//! delay model, where the quantity of interest is the *glitch* delta of a
//! candidate buffer insertion or register move. [`IncrementalTimedSim`]
//! provides that: it records one full event-driven simulation
//! ([`crate::EventDrivenSim`]) of the base netlist, caching
//!
//! * every node's settled per-cycle trajectory (packed 64 cycles/word,
//!   the same register-boundary snapshots as the untimed recording),
//! * every node's **event waveform** — the `(cycle, time_ps)` list of its
//!   actual value flips, glitches included, and
//! * the per-node toggle/functional totals,
//!
//! and then re-scores a mutated variant by replaying *only the dirty
//! cone*: a per-cycle miniature event loop over the cone's gates, with
//! the cone's boundary fan-ins played back from the cached waveforms
//! through the same `(time, node)`-ordered heap discipline as the scalar
//! engine. Because out-of-cone nodes cannot observe the mutation (the
//! cone is forward-closed), their cached waveforms are exact, and the
//! replay reproduces the scalar simulator's event order bit for bit — the
//! resulting [`TimedActivity`] is identical to a from-scratch re-record
//! of the mutated netlist, glitch counts and all. The in-file tests and
//! the optimize-crate differential suites lock this in.
//!
//! The workflow mirrors the untimed simulator: [`record`]
//! (IncrementalTimedSim::record) once, [`resim_into`]
//! (IncrementalTimedSim::resim_into) per candidate with a reusable
//! [`TimedResimScratch`] + [`TimedConeResim`] pair (rejection is
//! allocation-free once warm), [`commit`](IncrementalTimedSim::commit)
//! on acceptance.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hlpower_obs::metrics as obs;

use crate::error::NetlistError;
use crate::event::{EventDrivenSim, TimedActivity};
use crate::incremental::{build_fanout_csr, eval_gate_bool, refill, topo_into};
use crate::library::Library;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::sim::Activity;

/// One recorded flip: the cycle it happened in and the in-cycle
/// timestamp (picoseconds from the clock edge).
type Flip = (u32, u64);

/// A recorded event-driven simulation of a netlist over a fixed stimulus
/// stream, supporting dirty-cone re-simulation of mutated variants with
/// exact glitch deltas. See the module docs for the workflow.
#[derive(Debug, Clone)]
pub struct IncrementalTimedSim {
    base: Netlist,
    lib: Library,
    n_vectors: usize,
    blocks: usize,
    tail_mask: u64,
    /// Power-on settle values (all-false inputs, registers at init).
    init_values: Vec<bool>,
    /// Settled per-cycle trajectory, `node * blocks + b`.
    values: Vec<u64>,
    /// Per-node event waveforms: every value flip of the recording, in
    /// chronological order. This is what boundary playback reads.
    events_of: Vec<Vec<Flip>>,
    /// Cached totals of the base recording.
    toggles: Vec<u64>,
    functional: Vec<u64>,
}

/// The outcome of one timed dirty-cone re-simulation
/// ([`IncrementalTimedSim::resim`]): the replayed cone and the mutated
/// netlist's full timed activity, bit-identical to a from-scratch
/// event-driven run.
#[derive(Debug, Clone, Default)]
pub struct TimedConeResim {
    /// Every node that was replayed, in topological order.
    pub cone: Vec<NodeId>,
    /// Cone nodes whose settled trajectory differs from the base
    /// recording (appended nodes always count).
    pub changed_values: Vec<NodeId>,
    /// Timed activity of the mutated netlist over the recorded stream —
    /// glitches included — bit-identical to a from-scratch
    /// [`IncrementalTimedSim::record`].
    pub activity: TimedActivity,
    /// Settled packed values of the cone, cone-index-major.
    updates: Vec<u64>,
    blocks: usize,
    /// Replayed event waveforms of the cone (for
    /// [`IncrementalTimedSim::commit`]).
    cone_events: Vec<Vec<Flip>>,
    /// Power-on settle values of the cone under the mutated netlist.
    cone_init: Vec<bool>,
}

impl TimedConeResim {
    /// Packed `u64` words of settled trajectory this resim recomputed
    /// (`cone × blocks`) — the work metric the `opt_search` section
    /// reports.
    pub fn words_replayed(&self) -> u64 {
        (self.cone.len() * self.blocks) as u64
    }
}

/// Reusable working memory for [`IncrementalTimedSim::resim_into`]; the
/// timed twin of [`crate::ResimScratch`]. Every buffer is cleared and
/// refilled in place, so candidate rejection allocates nothing once warm.
#[derive(Debug, Clone, Default)]
pub struct TimedResimScratch {
    in_changed: Vec<bool>,
    in_cone: Vec<bool>,
    stack: Vec<u32>,
    update_of: Vec<usize>,
    fan_start: Vec<u32>,
    fan: Vec<u32>,
    cursor: Vec<u32>,
    indeg: Vec<u32>,
    topo_stack: Vec<u32>,
    order: Vec<NodeId>,
    /// Boundary playback state: the cone's direct out-of-cone fan-ins.
    boundary: Vec<u32>,
    /// Node index -> boundary index, `usize::MAX` elsewhere.
    b_index: Vec<usize>,
    /// Current boundary values during replay.
    bvals: Vec<bool>,
    /// Per-boundary-node cursor into its cached waveform.
    cursors: Vec<usize>,
    /// Cone replay state.
    cur: Vec<bool>,
    settled: Vec<bool>,
    dff_next: Vec<bool>,
    delays: Vec<u64>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

/// Transport delay of one gate under `lib`, matching
/// `event::gate_delays_ps` exactly.
fn gate_delay_ps(lib: &Library, kind: crate::library::GateKind, n_inputs: usize) -> u64 {
    let c = lib.cell(kind);
    (c.delay_ps + c.delay_per_fanin_ps * (n_inputs.saturating_sub(1)) as f64).round().max(1.0)
        as u64
}

impl IncrementalTimedSim {
    /// Records a full event-driven simulation of `netlist` over `stream`
    /// under `lib`'s delay model, caching settled trajectories and event
    /// waveforms for later dirty-cone re-simulation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::EmptyStream`],
    /// [`NetlistError::InputWidthMismatch`], or
    /// [`NetlistError::CombinationalCycle`] as the scalar engine would.
    pub fn record(
        netlist: &Netlist,
        lib: &Library,
        stream: &[Vec<bool>],
    ) -> Result<Self, NetlistError> {
        if stream.is_empty() {
            return Err(NetlistError::EmptyStream);
        }
        let n = netlist.node_count();
        let n_vectors = stream.len();
        let blocks = n_vectors.div_ceil(64);
        let tail_valid = n_vectors - (blocks - 1) * 64;
        let tail_mask = if tail_valid == 64 { !0 } else { (1u64 << tail_valid) - 1 };
        let mut sim = EventDrivenSim::new(netlist, lib)?;
        let init_values = sim.values_raw().to_vec();
        let mut values = vec![0u64; n * blocks];
        let mut events_of: Vec<Vec<Flip>> = vec![Vec::new(); n];
        let mut trace: Vec<(u64, u32)> = Vec::new();
        for (c, v) in stream.iter().enumerate() {
            trace.clear();
            sim.step_traced(v, &mut trace)?;
            for &(t, node) in &trace {
                events_of[node as usize].push((c as u32, t));
            }
            let (b, bit) = (c / 64, c % 64);
            for (node, &val) in sim.values_raw().iter().enumerate() {
                values[node * blocks + b] |= (val as u64) << bit;
            }
        }
        let timed = sim.take_activity();
        obs::SIM_INC_RECORDS.inc();
        Ok(IncrementalTimedSim {
            base: netlist.clone(),
            lib: lib.clone(),
            n_vectors,
            blocks,
            tail_mask,
            init_values,
            values,
            events_of,
            toggles: timed.activity.toggles,
            functional: timed.functional,
        })
    }

    /// The netlist the cached recording corresponds to (updated by
    /// [`commit`](Self::commit)).
    pub fn base(&self) -> &Netlist {
        &self.base
    }

    /// Number of stimulus vectors in the recorded stream.
    pub fn vectors(&self) -> usize {
        self.n_vectors
    }

    /// Timed activity of the base netlist over the recorded stream,
    /// bit-identical to a scalar [`EventDrivenSim`] run.
    pub fn activity(&self) -> TimedActivity {
        TimedActivity {
            activity: Activity {
                toggles: self.toggles.clone(),
                cycles: (self.n_vectors - 1) as u64,
            },
            functional: self.functional.clone(),
        }
    }

    /// The cached settled packed values of a node.
    pub fn value_words(&self, node: NodeId) -> &[u64] {
        &self.values[node.index() * self.blocks..(node.index() + 1) * self.blocks]
    }

    /// Re-simulates a mutated variant, allocating fresh buffers. Searches
    /// should prefer [`resim_into`](Self::resim_into).
    ///
    /// # Errors
    ///
    /// As [`resim_into`](Self::resim_into).
    pub fn resim(
        &self,
        mutated: &Netlist,
        changed: &[NodeId],
    ) -> Result<TimedConeResim, NetlistError> {
        let mut scratch = TimedResimScratch::default();
        let mut out = TimedConeResim::default();
        self.resim_into(mutated, changed, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Re-simulates a mutated variant of the base netlist over the
    /// recorded stream with exact glitch accounting, replaying only the
    /// dirty cone. Preconditions on `mutated` are those of
    /// [`crate::IncrementalSim::resim_into`]: an incremental edit with the
    /// same inputs, the pre-existing registers intact, and every
    /// pre-existing diff declared in `changed`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::IncrementalMismatch`] on a violated precondition,
    /// [`NetlistError::CombinationalCycle`] if the edit introduced a
    /// cycle.
    pub fn resim_into(
        &self,
        mutated: &Netlist,
        changed: &[NodeId],
        scratch: &mut TimedResimScratch,
        out: &mut TimedConeResim,
    ) -> Result<(), NetlistError> {
        let n_base = self.base.node_count();
        let n_new = mutated.node_count();
        let mismatch = |reason: String| NetlistError::IncrementalMismatch { reason };
        if n_new < n_base {
            return Err(mismatch(format!(
                "mutated netlist has {n_new} nodes, base has {n_base} (nodes were removed)"
            )));
        }
        if mutated.inputs() != self.base.inputs() {
            return Err(mismatch("primary inputs differ from the base netlist".into()));
        }
        let base_dffs = self.base.dffs().len();
        if mutated.dffs().len() < base_dffs || mutated.dffs()[..base_dffs] != *self.base.dffs() {
            return Err(mismatch("pre-existing flip-flops differ from the base netlist".into()));
        }
        refill(&mut scratch.in_changed, n_new, false);
        for &c in changed {
            if c.index() >= n_new {
                return Err(mismatch(format!("changed node {c} is out of range")));
            }
            if !matches!(mutated.kind(c), NodeKind::Gate { .. }) {
                return Err(mismatch(format!("changed node {c} is not a combinational gate")));
            }
            scratch.in_changed[c.index()] = true;
        }
        for id in self.base.node_ids() {
            if !scratch.in_changed[id.index()] && self.base.kind(id) != mutated.kind(id) {
                return Err(mismatch(format!(
                    "node {id} differs from the base but is not in the change set"
                )));
            }
        }
        build_fanout_csr(mutated, &mut scratch.fan_start, &mut scratch.fan, &mut scratch.cursor);
        topo_into(
            mutated,
            &scratch.fan_start,
            &scratch.fan,
            &mut scratch.indeg,
            &mut scratch.topo_stack,
            &mut scratch.order,
        )?;
        // Dirty cone: forward closure of changed ∪ appended through all
        // reader edges (register boundaries included).
        refill(&mut scratch.in_cone, n_new, false);
        scratch.stack.clear();
        scratch.stack.extend(changed.iter().map(|c| c.index() as u32));
        scratch.stack.extend(n_base as u32..n_new as u32);
        while let Some(u) = scratch.stack.pop() {
            let u = u as usize;
            if scratch.in_cone[u] {
                continue;
            }
            scratch.in_cone[u] = true;
            for k in scratch.fan_start[u] as usize..scratch.fan_start[u + 1] as usize {
                let f = scratch.fan[k] as usize;
                if !scratch.in_cone[f] {
                    scratch.stack.push(f as u32);
                }
            }
        }
        out.cone.clear();
        out.cone.extend(scratch.order.iter().copied().filter(|id| scratch.in_cone[id.index()]));
        refill(&mut scratch.update_of, n_new, usize::MAX);
        for (ci, &id) in out.cone.iter().enumerate() {
            scratch.update_of[id.index()] = ci;
        }
        self.replay_cone(mutated, scratch, out)?;
        // Settled-trajectory diff for `changed_values`.
        let blocks = self.blocks;
        out.changed_values.clear();
        for (ci, &id) in out.cone.iter().enumerate() {
            let differs = if id.index() >= n_base {
                true
            } else {
                let old = &self.values[id.index() * blocks..(id.index() + 1) * blocks];
                (0..blocks).any(|b| {
                    let mask = if b + 1 == blocks { self.tail_mask } else { !0 };
                    (old[b] ^ out.updates[ci * blocks + b]) & mask != 0
                })
            };
            if differs {
                out.changed_values.push(id);
            }
        }
        obs::SIM_INC_RESIMS.inc();
        obs::SIM_INC_CONE_NODES.add(out.cone.len() as u64);
        obs::SIM_INC_REUSED_NODES.add((n_new - out.cone.len()) as u64);
        Ok(())
    }

    /// The per-cycle miniature event loop over the cone, with boundary
    /// waveform playback. Reproduces the scalar engine's `(time, node)`
    /// pop order exactly: boundary flips are injected as heap entries
    /// carrying their real node ids, so ties at equal timestamps resolve
    /// the same way they did during recording.
    fn replay_cone(
        &self,
        mutated: &Netlist,
        scratch: &mut TimedResimScratch,
        out: &mut TimedConeResim,
    ) -> Result<(), NetlistError> {
        let mismatch = |reason: String| NetlistError::IncrementalMismatch { reason };
        let cone = &out.cone;
        let blocks = self.blocks;
        let n_base = self.base.node_count();
        // Boundary set: direct out-of-cone fan-ins of cone nodes. Appended
        // nodes are always in the cone, so boundary indices are < n_base.
        refill(&mut scratch.b_index, n_base, usize::MAX);
        scratch.boundary.clear();
        for &id in cone.iter() {
            let register = |f: NodeId, scratch: &mut TimedResimScratch| {
                if !scratch.in_cone[f.index()] && scratch.b_index[f.index()] == usize::MAX {
                    scratch.b_index[f.index()] = scratch.boundary.len();
                    scratch.boundary.push(f.index() as u32);
                }
            };
            match mutated.kind(id) {
                NodeKind::Gate { inputs, .. } => {
                    for &f in inputs {
                        register(f, scratch);
                    }
                }
                NodeKind::Dff { d, .. } => register(*d, scratch),
                _ => {}
            }
        }
        refill(&mut scratch.bvals, scratch.boundary.len(), false);
        refill(&mut scratch.cursors, scratch.boundary.len(), 0usize);
        for (bi, &u) in scratch.boundary.iter().enumerate() {
            scratch.bvals[bi] = self.init_values[u as usize];
        }
        // Cone gate delays under the mutated netlist (a changed gate kind
        // or arity changes its transport delay).
        refill(&mut scratch.delays, cone.len(), 0u64);
        for (ci, &id) in cone.iter().enumerate() {
            if let NodeKind::Gate { kind, inputs } = mutated.kind(id) {
                scratch.delays[ci] = gate_delay_ps(&self.lib, *kind, inputs.len());
            }
        }
        // Power-on settle of the cone (all-false inputs, registers at
        // init) — the same settle `EventDrivenSim::new` performs, but the
        // cone reads cached init values across the boundary.
        out.cone_init.clear();
        for &id in cone.iter() {
            let v = match mutated.kind(id) {
                NodeKind::Dff { init, .. } => *init,
                NodeKind::Const(v) => *v,
                NodeKind::Input => {
                    return Err(mismatch(format!("primary input {id} cannot be in the cone")))
                }
                NodeKind::Gate { kind, inputs } => eval_gate_bool(*kind, inputs, |f| {
                    let u = scratch.update_of[f.index()];
                    if u != usize::MAX {
                        out.cone_init[u]
                    } else {
                        self.init_values[f.index()]
                    }
                }),
            };
            out.cone_init.push(v);
        }
        scratch.cur.clear();
        scratch.cur.extend_from_slice(&out.cone_init);
        scratch.settled.clear();
        scratch.settled.extend_from_slice(&out.cone_init);
        refill(&mut scratch.dff_next, cone.len(), false);
        for (ci, &id) in cone.iter().enumerate() {
            if let NodeKind::Dff { init, .. } = mutated.kind(id) {
                scratch.dff_next[ci] = *init;
            }
        }
        // Totals: cached rows for everything outside the cone, replayed
        // rows (accumulated below) for the cone.
        let n_new = mutated.node_count();
        refill(&mut out.activity.activity.toggles, n_new, 0u64);
        out.activity.activity.toggles[..n_base].copy_from_slice(&self.toggles);
        refill(&mut out.activity.functional, n_new, 0u64);
        out.activity.functional[..n_base].copy_from_slice(&self.functional);
        out.activity.activity.cycles = (self.n_vectors - 1) as u64;
        for &id in cone.iter() {
            out.activity.activity.toggles[id.index()] = 0;
            out.activity.functional[id.index()] = 0;
        }
        for v in &mut out.cone_events {
            v.clear();
        }
        out.cone_events.resize_with(cone.len(), Vec::new);
        out.blocks = blocks;
        refill(&mut out.updates, cone.len() * blocks, 0u64);

        // Schedules the in-cone gate readers of `u` at `base_time` plus
        // their own transport delay, mirroring the scalar engine.
        macro_rules! schedule_readers {
            ($u:expr, $base_time:expr) => {
                let u = $u;
                for k in scratch.fan_start[u] as usize..scratch.fan_start[u + 1] as usize {
                    let f = scratch.fan[k] as usize;
                    let fc = scratch.update_of[f];
                    if fc != usize::MAX
                        && matches!(mutated.kind(NodeId(f as u32)), NodeKind::Gate { .. })
                    {
                        scratch.heap.push(Reverse(($base_time + scratch.delays[fc], f as u32)));
                    }
                }
            };
        }

        for s in 0..self.n_vectors {
            let count = s >= 1;
            scratch.heap.clear();
            // Time-zero flips of cone registers (their own Q updates).
            for (ci, &id) in cone.iter().enumerate() {
                if matches!(mutated.kind(id), NodeKind::Dff { .. }) {
                    let new = scratch.dff_next[ci];
                    if scratch.cur[ci] != new {
                        scratch.cur[ci] = new;
                        if count {
                            out.activity.activity.toggles[id.index()] += 1;
                        }
                        out.cone_events[ci].push((s as u32, 0));
                        schedule_readers!(id.index(), 0);
                    }
                }
            }
            // Boundary playback: inject this cycle's cached flips. Heap
            // ordering by (time, node id) then interleaves them with cone
            // evaluations exactly as the recording interleaved them.
            for (bi, &u) in scratch.boundary.iter().enumerate() {
                let ev = &self.events_of[u as usize];
                while scratch.cursors[bi] < ev.len() && ev[scratch.cursors[bi]].0 == s as u32 {
                    scratch.heap.push(Reverse((ev[scratch.cursors[bi]].1, u)));
                    scratch.cursors[bi] += 1;
                }
            }
            // Drain in time order with the scalar engine's duplicate
            // coalescing.
            while let Some(Reverse((t, u))) = scratch.heap.pop() {
                while scratch.heap.peek() == Some(&Reverse((t, u))) {
                    scratch.heap.pop();
                }
                let ci = scratch.update_of[u as usize];
                if ci == usize::MAX {
                    // Boundary flip playback.
                    let bi = scratch.b_index[u as usize];
                    scratch.bvals[bi] = !scratch.bvals[bi];
                    schedule_readers!(u as usize, t);
                    continue;
                }
                let NodeKind::Gate { kind, inputs } = mutated.kind(cone[ci]) else {
                    // Only gates are ever scheduled.
                    unreachable!("non-gate {} popped from the event heap", cone[ci]);
                };
                let new = eval_gate_bool(*kind, inputs, |f| {
                    let fc = scratch.update_of[f.index()];
                    if fc != usize::MAX {
                        scratch.cur[fc]
                    } else {
                        scratch.bvals[scratch.b_index[f.index()]]
                    }
                });
                if new != scratch.cur[ci] {
                    scratch.cur[ci] = new;
                    if count {
                        out.activity.activity.toggles[cone[ci].index()] += 1;
                    }
                    out.cone_events[ci].push((s as u32, t));
                    schedule_readers!(u as usize, t);
                }
            }
            // Stable-state accounting: functional diff, settled packing.
            let (b, bit) = (s / 64, s % 64);
            for ci in 0..cone.len() {
                if scratch.settled[ci] != scratch.cur[ci] && count {
                    out.activity.functional[cone[ci].index()] += 1;
                }
                scratch.settled[ci] = scratch.cur[ci];
                out.updates[ci * blocks + b] |= (scratch.cur[ci] as u64) << bit;
            }
            // Sample D inputs of cone registers for the next cycle.
            for (ci, &id) in cone.iter().enumerate() {
                if let NodeKind::Dff { d, .. } = mutated.kind(id) {
                    let fc = scratch.update_of[d.index()];
                    scratch.dff_next[ci] = if fc != usize::MAX {
                        scratch.cur[fc]
                    } else {
                        scratch.bvals[scratch.b_index[d.index()]]
                    };
                }
            }
        }
        Ok(())
    }

    /// Folds an accepted mutation back into the cache in `O(cone)`:
    /// settled trajectories, event waveforms, and totals of the cone are
    /// replaced, everything else is kept, and `mutated` becomes the new
    /// base.
    pub fn commit(&mut self, mutated: &Netlist, resim: &TimedConeResim) {
        let n_new = mutated.node_count();
        debug_assert_eq!(
            resim.activity.activity.toggles.len(),
            n_new,
            "resim is for a different netlist"
        );
        let blocks = self.blocks;
        let mut values = std::mem::take(&mut self.values);
        values.resize(n_new * blocks, 0);
        for (ci, &id) in resim.cone.iter().enumerate() {
            values[id.index() * blocks..(id.index() + 1) * blocks]
                .copy_from_slice(&resim.updates[ci * blocks..(ci + 1) * blocks]);
        }
        self.values = values;
        self.events_of.resize_with(n_new, Vec::new);
        self.init_values.resize(n_new, false);
        for (ci, &id) in resim.cone.iter().enumerate() {
            self.events_of[id.index()].clear();
            self.events_of[id.index()].extend_from_slice(&resim.cone_events[ci]);
            self.init_values[id.index()] = resim.cone_init[ci];
        }
        self.toggles.clear();
        self.toggles.extend_from_slice(&resim.activity.activity.toggles);
        self.functional.clear();
        self.functional.extend_from_slice(&resim.activity.functional);
        self.base = mutated.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::GateKind;
    use crate::{gen, streams};

    fn adder(bits: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", bits);
        let b = nl.input_bus("b", bits);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        nl
    }

    fn registered_adder(bits: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", bits);
        let b = nl.input_bus("b", bits);
        let aq = nl.dff_bus(&a);
        let bq = nl.dff_bus(&b);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &aq, &bq, c0);
        let sq = nl.dff_bus(&s);
        nl.output_bus("s", &sq);
        nl
    }

    fn stream_for(nl: &Netlist, seed: u64, cycles: usize) -> Vec<Vec<bool>> {
        streams::random(seed, nl.input_count()).take(cycles).collect()
    }

    fn first_gate(nl: &Netlist, kind: GateKind, arity: usize) -> NodeId {
        nl.node_ids()
            .find(|&id| {
                matches!(nl.kind(id), NodeKind::Gate { kind: k, inputs } if *k == kind && inputs.len() == arity)
            })
            .unwrap()
    }

    #[test]
    fn recording_matches_the_event_driven_oracle() {
        for nl in [adder(5), registered_adder(4)] {
            let lib = Library::default();
            let stream = stream_for(&nl, 19, 130);
            let inc = IncrementalTimedSim::record(&nl, &lib, &stream).unwrap();
            let mut scalar = EventDrivenSim::new(&nl, &lib).unwrap();
            let timed = scalar.run(stream.iter().cloned()).unwrap();
            assert_eq!(inc.activity(), timed);
        }
    }

    #[test]
    fn resim_matches_full_rerecord_with_glitches() {
        let nl = adder(5);
        let lib = Library::default();
        let stream = stream_for(&nl, 3, 160);
        let inc = IncrementalTimedSim::record(&nl, &lib, &stream).unwrap();
        let mut mutated = nl.clone();
        let target = first_gate(&nl, GateKind::Xor, 2);
        let NodeKind::Gate { inputs, .. } = mutated.kind(target).clone() else { unreachable!() };
        mutated.replace_gate(target, GateKind::Xnor, inputs).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();
        let full = IncrementalTimedSim::record(&mutated, &lib, &stream).unwrap();
        assert_eq!(resim.activity, full.activity(), "timed activity (incl. glitches) diverged");
        assert!(resim.activity.total_glitches().unwrap() > 0, "adder cones should glitch");
        for (ci, &id) in resim.cone.iter().enumerate() {
            assert_eq!(
                &resim.updates[ci * resim.blocks..(ci + 1) * resim.blocks],
                full.value_words(id),
                "settled trajectory diverged at {id}"
            );
        }
        assert!(resim.cone.len() < nl.node_count(), "cone should be a strict subset");
    }

    #[test]
    fn buffer_insertion_cone_matches_full_rerecord() {
        // Balance-style edit: lengthen one input path with buffers, which
        // changes glitch timing downstream.
        let nl = adder(4);
        let lib = Library::default();
        let stream = stream_for(&nl, 29, 140);
        let inc = IncrementalTimedSim::record(&nl, &lib, &stream).unwrap();
        let mut mutated = nl.clone();
        let target = first_gate(&nl, GateKind::And, 2);
        let NodeKind::Gate { kind, inputs } = mutated.kind(target).clone() else { unreachable!() };
        let b1 = mutated.buf(inputs[0]);
        let b2 = mutated.buf(b1);
        let mut ins = inputs;
        ins[0] = b2;
        mutated.replace_gate(target, kind, ins).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();
        assert!(resim.cone.contains(&b1) && resim.cone.contains(&b2));
        let full = IncrementalTimedSim::record(&mutated, &lib, &stream).unwrap();
        assert_eq!(resim.activity, full.activity());
    }

    #[test]
    fn register_insertion_cone_matches_full_rerecord() {
        // Retime-style edit: pipeline an internal net through a new
        // flip-flop; the cone crosses the new register cycle to cycle.
        let nl = registered_adder(4);
        let lib = Library::default();
        let stream = stream_for(&nl, 37, 150);
        let inc = IncrementalTimedSim::record(&nl, &lib, &stream).unwrap();
        let mut mutated = nl.clone();
        let target = first_gate(&nl, GateKind::Or, 2);
        let NodeKind::Gate { kind, inputs } = mutated.kind(target).clone() else { unreachable!() };
        let q = mutated.dff(inputs[0], false);
        let mut ins = inputs;
        ins[0] = q;
        mutated.replace_gate(target, kind, ins).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();
        assert!(resim.cone.contains(&q));
        let full = IncrementalTimedSim::record(&mutated, &lib, &stream).unwrap();
        assert_eq!(resim.activity, full.activity());
    }

    #[test]
    fn commit_chains_timed_mutations() {
        let nl = adder(4);
        let lib = Library::default();
        let stream = stream_for(&nl, 9, 120);
        let mut inc = IncrementalTimedSim::record(&nl, &lib, &stream).unwrap();
        let mut current = nl.clone();
        for flip in 0..2usize {
            let target = current
                .node_ids()
                .filter(|&id| {
                    matches!(current.kind(id),
                        NodeKind::Gate { kind: GateKind::And, inputs } if inputs.len() == 2)
                })
                .nth(flip)
                .unwrap();
            let NodeKind::Gate { inputs, .. } = current.kind(target).clone() else {
                unreachable!()
            };
            let mut mutated = current.clone();
            mutated.replace_gate(target, GateKind::Nand, inputs).unwrap();
            let resim = inc.resim(&mutated, &[target]).unwrap();
            inc.commit(&mutated, &resim);
            current = mutated;
        }
        let full = IncrementalTimedSim::record(&current, &lib, &stream).unwrap();
        assert_eq!(inc.activity(), full.activity());
    }

    #[test]
    fn resim_into_reuses_buffers_across_candidates() {
        let nl = adder(5);
        let lib = Library::default();
        let stream = stream_for(&nl, 13, 100);
        let inc = IncrementalTimedSim::record(&nl, &lib, &stream).unwrap();
        let mut scratch = TimedResimScratch::default();
        let mut out = TimedConeResim::default();
        let targets: Vec<NodeId> = nl
            .node_ids()
            .filter(|&id| {
                matches!(nl.kind(id),
                    NodeKind::Gate { kind: GateKind::Or, inputs } if inputs.len() == 2)
            })
            .take(3)
            .collect();
        for &target in &targets {
            let mut mutated = nl.clone();
            let NodeKind::Gate { inputs, .. } = nl.kind(target).clone() else { unreachable!() };
            mutated.replace_gate(target, GateKind::Nor, inputs).unwrap();
            inc.resim_into(&mutated, &[target], &mut scratch, &mut out).unwrap();
            let full = IncrementalTimedSim::record(&mutated, &lib, &stream).unwrap();
            assert_eq!(out.activity, full.activity(), "buffer reuse corrupted {target}");
            assert!(out.words_replayed() > 0);
        }
    }

    #[test]
    fn undeclared_edits_are_rejected() {
        let nl = adder(4);
        let lib = Library::default();
        let stream = stream_for(&nl, 5, 60);
        let inc = IncrementalTimedSim::record(&nl, &lib, &stream).unwrap();
        let mut sneaky = nl.clone();
        let target = first_gate(&nl, GateKind::And, 2);
        let NodeKind::Gate { inputs, .. } = sneaky.kind(target).clone() else { unreachable!() };
        sneaky.replace_gate(target, GateKind::Nand, inputs).unwrap();
        assert!(matches!(inc.resim(&sneaky, &[]), Err(NetlistError::IncrementalMismatch { .. })));
    }
}
