//! Synthetic CMOS technology library.
//!
//! The survey's experiments were run against SPICE-characterized standard
//! cell libraries which are not available; this module substitutes a
//! self-consistent synthetic library whose per-gate input capacitances,
//! internal energies, delays, and statistical wire-load model reproduce the
//! *relative* cost structure of a 1990s CMOS process (multipliers cost more
//! than adders, registers and clocks carry substantial load, interconnect
//! grows with fanout). Absolute numbers are in femtofarads, femtojoules,
//! picoseconds, and volts so that reported powers land in plausible
//! microwatt/milliwatt ranges.

/// The kind of a combinational gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Non-inverting buffer (1 input).
    Buf,
    /// Inverter (1 input).
    Not,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// N-input XOR (odd parity).
    Xor,
    /// N-input XNOR (even parity).
    Xnor,
    /// 2:1 multiplexer; inputs are `[sel, a, b]`, output is `a` when `sel`
    /// is false and `b` when `sel` is true.
    Mux,
}

impl GateKind {
    /// A human-readable lowercase name for the gate kind.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
        }
    }

    /// Minimum number of inputs this gate kind accepts.
    pub fn min_arity(self) -> usize {
        match self {
            GateKind::Buf | GateKind::Not => 1,
            GateKind::Mux => 3,
            _ => 2,
        }
    }

    /// Whether the gate accepts an arbitrary number of inputs (>= 2).
    pub fn is_variadic(self) -> bool {
        !matches!(self, GateKind::Buf | GateKind::Not | GateKind::Mux)
    }

    /// Evaluate the gate over a slice of input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` violates the gate's arity; arity is validated at
    /// netlist construction time so simulators may rely on this.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// All gate kinds, in a stable order.
    pub fn all() -> [GateKind; 9] {
        [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Mux,
        ]
    }
}

/// Per-gate-kind electrical characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Capacitance presented by each input pin, in femtofarads.
    pub input_cap_ff: f64,
    /// Short-circuit + parasitic internal energy dissipated per output
    /// transition, in femtojoules.
    pub internal_energy_fj: f64,
    /// Intrinsic propagation delay, in picoseconds.
    pub delay_ps: f64,
    /// Additional delay per input pin beyond the first, in picoseconds.
    pub delay_per_fanin_ps: f64,
    /// Equivalent-gate count used by area/complexity models.
    pub area_gates: f64,
}

/// A synthetic CMOS standard-cell library plus operating conditions.
///
/// The default library models a generic 3.3 V process. All power accounting
/// in [`crate::PowerReport`] is derived from these parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    /// Supply voltage, in volts.
    pub vdd: f64,
    /// Clock frequency, in megahertz. Used to convert per-cycle energy into
    /// average power.
    pub clock_mhz: f64,
    /// Statistical wire-load model: fixed wire capacitance per net, in
    /// femtofarads.
    pub wire_cap_base_ff: f64,
    /// Statistical wire-load model: additional wire capacitance per fanout
    /// pin, in femtofarads.
    pub wire_cap_per_fanout_ff: f64,
    /// Capacitance of a flip-flop's data input pin, in femtofarads.
    pub dff_d_cap_ff: f64,
    /// Capacitance of a flip-flop's clock pin, in femtofarads.
    pub dff_clk_cap_ff: f64,
    /// Internal flip-flop energy per output transition, in femtojoules.
    pub dff_internal_energy_fj: f64,
    /// Internal flip-flop energy per clock edge (dissipated every cycle even
    /// if the output does not toggle), in femtojoules.
    pub dff_clock_energy_fj: f64,
    /// Flip-flop equivalent-gate count for area models.
    pub dff_area_gates: f64,
    /// Capacitance seen by nets driving primary outputs (pad/driver load),
    /// in femtofarads.
    pub output_load_ff: f64,
    params: [CellParams; 9],
}

impl Library {
    /// The characterization record for a gate kind.
    pub fn cell(&self, kind: GateKind) -> &CellParams {
        &self.params[kind as usize]
    }

    /// Mutable access to a gate kind's characterization (for building
    /// derived libraries, e.g. voltage-scaled ones).
    pub fn cell_mut(&mut self, kind: GateKind) -> &mut CellParams {
        &mut self.params[kind as usize]
    }

    /// Energy, in femtojoules, of charging/discharging `cap_ff` femtofarads
    /// through a full swing at this library's supply: `0.5 * Vdd^2 * C`.
    pub fn switching_energy_fj(&self, cap_ff: f64) -> f64 {
        0.5 * self.vdd * self.vdd * cap_ff
    }

    /// Clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1000.0 / self.clock_mhz
    }

    /// A copy of this library scaled to a different supply voltage.
    ///
    /// Energy terms scale with `(v / vdd)^2`; delays scale with the classic
    /// first-order model `v / (v - vt)^2` normalized to the original supply
    /// (threshold `vt` fixed at 0.7 V). This powers the multiple
    /// supply-voltage scheduling experiments.
    pub fn scaled_to_voltage(&self, v: f64) -> Library {
        let vt = 0.7;
        let e_scale = (v / self.vdd).powi(2);
        let d_scale = (v / (v - vt).powi(2)) / (self.vdd / (self.vdd - vt).powi(2));
        let mut out = self.clone();
        out.vdd = v;
        out.dff_internal_energy_fj *= e_scale;
        out.dff_clock_energy_fj *= e_scale;
        for p in &mut out.params {
            p.internal_energy_fj *= e_scale;
            p.delay_ps *= d_scale;
            p.delay_per_fanin_ps *= d_scale;
        }
        out
    }
}

impl Default for Library {
    fn default() -> Self {
        // Index order must match the GateKind discriminants.
        let params = [
            // Buf
            CellParams {
                input_cap_ff: 4.0,
                internal_energy_fj: 2.0,
                delay_ps: 80.0,
                delay_per_fanin_ps: 0.0,
                area_gates: 1.0,
            },
            // Not
            CellParams {
                input_cap_ff: 3.0,
                internal_energy_fj: 1.5,
                delay_ps: 50.0,
                delay_per_fanin_ps: 0.0,
                area_gates: 0.5,
            },
            // And
            CellParams {
                input_cap_ff: 4.5,
                internal_energy_fj: 3.0,
                delay_ps: 90.0,
                delay_per_fanin_ps: 20.0,
                area_gates: 1.25,
            },
            // Or
            CellParams {
                input_cap_ff: 4.5,
                internal_energy_fj: 3.0,
                delay_ps: 95.0,
                delay_per_fanin_ps: 20.0,
                area_gates: 1.25,
            },
            // Nand
            CellParams {
                input_cap_ff: 4.0,
                internal_energy_fj: 2.5,
                delay_ps: 70.0,
                delay_per_fanin_ps: 18.0,
                area_gates: 1.0,
            },
            // Nor
            CellParams {
                input_cap_ff: 4.0,
                internal_energy_fj: 2.5,
                delay_ps: 75.0,
                delay_per_fanin_ps: 22.0,
                area_gates: 1.0,
            },
            // Xor
            CellParams {
                input_cap_ff: 6.0,
                internal_energy_fj: 5.0,
                delay_ps: 130.0,
                delay_per_fanin_ps: 35.0,
                area_gates: 2.5,
            },
            // Xnor
            CellParams {
                input_cap_ff: 6.0,
                internal_energy_fj: 5.0,
                delay_ps: 135.0,
                delay_per_fanin_ps: 35.0,
                area_gates: 2.5,
            },
            // Mux
            CellParams {
                input_cap_ff: 5.0,
                internal_energy_fj: 4.0,
                delay_ps: 110.0,
                delay_per_fanin_ps: 0.0,
                area_gates: 2.0,
            },
        ];
        Library {
            vdd: 3.3,
            clock_mhz: 50.0,
            wire_cap_base_ff: 2.0,
            wire_cap_per_fanout_ff: 1.5,
            dff_d_cap_ff: 5.0,
            dff_clk_cap_ff: 4.0,
            dff_internal_energy_fj: 8.0,
            dff_clock_energy_fj: 3.0,
            dff_area_gates: 6.0,
            output_load_ff: 20.0,
            params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_eval_truth_tables() {
        assert!(GateKind::And.eval(&[true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Or.eval(&[false, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(!GateKind::Nand.eval(&[true, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(!GateKind::Nor.eval(&[false, true]));
        assert!(GateKind::Xor.eval(&[true, false, false]));
        assert!(!GateKind::Xor.eval(&[true, true, false, false]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
        // mux: [sel, a, b]
        assert!(GateKind::Mux.eval(&[false, true, false]));
        assert!(GateKind::Mux.eval(&[true, false, true]));
        assert!(!GateKind::Mux.eval(&[true, true, false]));
    }

    #[test]
    fn variadic_arity() {
        assert!(GateKind::And.is_variadic());
        assert!(!GateKind::Mux.is_variadic());
        assert_eq!(GateKind::Mux.min_arity(), 3);
        assert_eq!(GateKind::Not.min_arity(), 1);
    }

    #[test]
    fn switching_energy_scales_with_v_squared() {
        let lib = Library::default();
        let e1 = lib.switching_energy_fj(10.0);
        let lo = lib.scaled_to_voltage(lib.vdd / 2.0);
        let e2 = lo.switching_energy_fj(10.0);
        assert!((e1 / e2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_scaling_slows_gates_and_cuts_internal_energy() {
        let lib = Library::default();
        let lo = lib.scaled_to_voltage(1.8);
        let k = GateKind::And;
        assert!(lo.cell(k).delay_ps > lib.cell(k).delay_ps);
        assert!(lo.cell(k).internal_energy_fj < lib.cell(k).internal_energy_fj);
    }

    #[test]
    fn cell_lookup_matches_kind() {
        let lib = Library::default();
        assert!(lib.cell(GateKind::Xor).area_gates > lib.cell(GateKind::Nand).area_gates);
    }
}
