//! Monte-Carlo average-power estimation with confidence intervals (survey
//! reference 32, Burch et al.), batching, and a deterministic parallel
//! engine.
//!
//! Two entry points:
//!
//! * [`monte_carlo_power`] — the classic serial form: one simulator
//!   instance consumes an arbitrary input-vector iterator, one power
//!   sample per batch, normal-approximation stopping rule.
//! * [`monte_carlo_power_seeded`] — the parallel form: every batch gets
//!   its own RNG stream, *split by batch index* from a root seed
//!   ([`hlpower_rng::Rng::split`]). Batches are sharded across a scoped
//!   worker pool in fixed-size waves, and the stopping rule is applied in
//!   batch-index order, so the result is **bit-identical for any thread
//!   count** — `threads = 1` and `threads = 64` return the same
//!   `MonteCarloResult`, exactly.
//!
//! The seeded engine runs on one of several simulation kernels
//! ([`McKernel`]): the scalar [`ZeroDelaySim`] (one simulator per batch)
//! or a bit-parallel [`crate::WideSim`] at 64, 256, or 512 lanes, which
//! packs that many batches into the bit lanes of one compiled simulator
//! instance ([`McKernel::Auto`], the default, picks the width from the
//! batch budget). Per-lane toggle counts are exact integers, so every
//! kernel produces **bit-identical results** — the packed kernels are
//! purely a wall-clock optimization and the scalar kernel remains
//! available as the differential oracle.
//!
//! The serial and seeded forms are statistically equivalent but not
//! bit-compatible with each other: the seeded engine restarts the
//! simulator per batch (batches must be independent to parallelize), while
//! the serial engine carries simulator state across batches.

use hlpower_obs::metrics as obs;
use hlpower_obs::trace;
use hlpower_rng::{par, Rng};

use crate::error::NetlistError;
use crate::event::EventDrivenSim;
use crate::library::Library;
use crate::netlist::Netlist;
use crate::power::PowerModel;
use crate::sim::ZeroDelaySim;
use crate::sim64::CompiledKernel;
use crate::sim64timed::TimedKernel;
use crate::simwide::{WideSim, WideTimedSim};
use crate::words::{Word, W256, W512};

/// Batches dispatched per scheduling wave of the scalar kernel.
///
/// The wave size is a fixed constant — *never* derived from the worker
/// count — because the set of batches simulated ahead of the stopping
/// check must not depend on parallelism for results to be bit-identical
/// across thread counts.
const WAVE: usize = 16;

/// Packed words dispatched per scheduling wave of the packed kernels
/// (`WAVE_WORDS * lanes` batches per wave). Fixed for the same reason as
/// `WAVE`.
const WAVE_WORDS: usize = 4;

/// The simulation kernel used by the seeded Monte-Carlo engine.
///
/// Every kernel returns bit-identical [`MonteCarloResult`]s for the same
/// `(netlist, lib, stream_fn, seed, opts)`: batch `b` of a packed kernel
/// is lane `b % lanes` of word `b / lanes`, fed by the same split stream
/// `root.split(b)` a scalar batch would consume, and per-lane activities
/// are exact. The only difference between kernels is wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum McKernel {
    /// One scalar [`ZeroDelaySim`] per batch — the differential oracle.
    Scalar,
    /// One bit-parallel 64-lane [`crate::Sim64`] per 64 batches.
    Packed64,
    /// One 256-lane [`crate::WideSim`]`<`[`W256`]`>` per 256 batches.
    Packed256,
    /// One 512-lane [`crate::WideSim`]`<`[`W512`]`>` per 512 batches.
    Packed512,
    /// Picks the packed width from the batch budget at run time (the
    /// default): [`Packed512`](Self::Packed512) when `max_batches >= 512`,
    /// [`Packed256`](Self::Packed256) when `>= 256`, else
    /// [`Packed64`](Self::Packed64). Result-invariant — every width
    /// computes identical samples.
    #[default]
    Auto,
}

impl McKernel {
    /// Resolves [`Auto`](Self::Auto) against the run's batch budget;
    /// explicit kernels resolve to themselves.
    pub fn resolve(self, max_batches: usize) -> Self {
        match self {
            McKernel::Auto if max_batches >= 512 => McKernel::Packed512,
            McKernel::Auto if max_batches >= 256 => McKernel::Packed256,
            McKernel::Auto => McKernel::Packed64,
            explicit => explicit,
        }
    }

    /// Batches simulated per task group: 1 for the scalar kernel, the
    /// lane count for packed kernels.
    ///
    /// # Panics
    ///
    /// Panics on [`Auto`](Self::Auto) — call [`resolve`](Self::resolve)
    /// first.
    pub fn lanes(self) -> usize {
        match self {
            McKernel::Scalar => 1,
            McKernel::Packed64 => 64,
            McKernel::Packed256 => 256,
            McKernel::Packed512 => 512,
            McKernel::Auto => panic!("McKernel::Auto must be resolved before lanes()"),
        }
    }
}

/// Options controlling a Monte-Carlo power-estimation run.
///
/// # Batching and stopping contract
///
/// Simulation proceeds in batches of [`batch_cycles`](Self::batch_cycles)
/// cycles; each batch contributes one power sample. After at least 5
/// samples, the run stops as soon as the two-sided normal-approximation
/// confidence interval (multiplier [`z`](Self::z)) has half-width below
/// [`target_relative_error`](Self::target_relative_error) × mean, or
/// unconditionally after [`max_batches`](Self::max_batches) batches. The
/// returned [`MonteCarloResult`] reports the achieved half-width so the
/// caller can check which stop fired:
///
/// ```
/// use hlpower_netlist::{gen, streams, Library, Netlist};
/// use hlpower_netlist::{monte_carlo_power, MonteCarloOptions};
///
/// let mut nl = Netlist::new();
/// let a = nl.input_bus("a", 8);
/// let b = nl.input_bus("b", 8);
/// let c0 = nl.constant(false);
/// let s = gen::ripple_adder(&mut nl, &a, &b, c0);
/// nl.output_bus("s", &s);
///
/// let opts = MonteCarloOptions {
///     batch_cycles: 100,          // 100 cycles -> one power sample
///     max_batches: 500,           // hard budget: <= 50_000 cycles
///     target_relative_error: 0.05, // stop at +/-5% of the mean...
///     z: 1.96,                    // ...at 95% confidence
/// };
/// let r = monte_carlo_power(
///     &nl,
///     &Library::default(),
///     streams::random(7, nl.input_count()),
///     &opts,
/// ).unwrap();
///
/// // The stopping rule guarantees the advertised precision (or the
/// // budget ran out — not the case for this easy circuit):
/// assert!(r.batches >= 5 && r.batches <= 500);
/// assert!(r.relative_error() <= 0.05);
/// // Each batch consumed `batch_cycles` vectors; the very first vector
/// // of the run only initializes the simulator (no transition to
/// // measure), so one fewer cycle is counted than vectors consumed.
/// assert_eq!(r.cycles, r.batches as u64 * 100 - 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOptions {
    /// Cycles per batch (each batch yields one power sample).
    pub batch_cycles: usize,
    /// Maximum number of batches.
    pub max_batches: usize,
    /// Stop when the half-width of the confidence interval falls below this
    /// fraction of the running mean.
    pub target_relative_error: f64,
    /// Two-sided confidence multiplier (1.96 ~ 95% under normality).
    pub z: f64,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            batch_cycles: 200,
            max_batches: 200,
            target_relative_error: 0.02,
            z: 1.96,
        }
    }
}

/// Result of a Monte-Carlo power estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Estimated average power, in microwatts.
    pub power_uw: f64,
    /// Half-width of the confidence interval, in microwatts.
    pub half_width_uw: f64,
    /// Number of batches simulated.
    pub batches: usize,
    /// Total cycles simulated.
    pub cycles: u64,
}

impl MonteCarloResult {
    /// Relative half-width of the confidence interval.
    pub fn relative_error(&self) -> f64 {
        if self.power_uw == 0.0 {
            0.0
        } else {
            self.half_width_uw / self.power_uw
        }
    }
}

/// Estimates average power by batched Monte-Carlo simulation over a stream.
///
/// The stream supplies input vectors; each batch of `opts.batch_cycles`
/// cycles contributes one power sample, and sampling stops when the
/// normal-approximation confidence interval is tighter than
/// `opts.target_relative_error` (after at least 5 batches) or when
/// `opts.max_batches` is exhausted.
///
/// For parallel estimation with a determinism guarantee, see
/// [`monte_carlo_power_seeded`].
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists or
/// [`NetlistError::EmptyStream`] if the stream ends before one full batch.
pub fn monte_carlo_power(
    netlist: &Netlist,
    lib: &Library,
    stream: impl IntoIterator<Item = Vec<bool>>,
    opts: &MonteCarloOptions,
) -> Result<MonteCarloResult, NetlistError> {
    obs::MC_RUNS.inc();
    let _t = obs::MC_TIME.span();
    let mut sim = ZeroDelaySim::new(netlist)?;
    let mut it = stream.into_iter();
    let mut samples: Vec<f64> = Vec::new();
    let mut total_cycles = 0u64;
    for batch in 0..opts.max_batches {
        let _batch_t = obs::MC_BATCH_NS.time();
        let _span = trace::span_dyn("mc", || format!("mc.batch:{batch}"));
        let mut got = 0usize;
        for _ in 0..opts.batch_cycles {
            match it.next() {
                Some(v) => {
                    sim.step(&v)?;
                    got += 1;
                }
                None => break,
            }
        }
        if got == 0 {
            break;
        }
        let act = sim.take_activity();
        total_cycles += act.cycles;
        samples.push(act.power(netlist, lib).total_power_uw());
        obs::MC_BATCHES.inc();
        obs::MC_CYCLES.add(act.cycles);
        if samples.len() >= 2 {
            let (_, hw) = mean_half_width(&samples, opts.z);
            obs::MC_CI_HALF_WIDTH_UW.push(hw);
            obs::MC_CI_HALF_WIDTH_NW.record((hw * 1000.0).round() as u64);
        }
        if samples.len() >= 5 {
            let (mean, hw) = mean_half_width(&samples, opts.z);
            if mean > 0.0 && hw / mean < opts.target_relative_error {
                return Ok(MonteCarloResult {
                    power_uw: mean,
                    half_width_uw: hw,
                    batches: samples.len(),
                    cycles: total_cycles,
                });
            }
        }
    }
    if samples.is_empty() {
        return Err(NetlistError::EmptyStream);
    }
    let (mean, hw) = mean_half_width(&samples, opts.z);
    Ok(MonteCarloResult {
        power_uw: mean,
        half_width_uw: hw,
        batches: samples.len(),
        cycles: total_cycles,
    })
}

/// Parallel Monte-Carlo power estimation on the default worker count
/// ([`hlpower_rng::par::num_threads`], i.e. `HLPOWER_THREADS` or all
/// cores).
///
/// `stream_fn` is called once per batch with that batch's *split* RNG
/// stream (`root.split(batch_index)`) and must return the batch's input
/// vectors; typically one of the `_rng` constructors in
/// [`streams`](crate::streams):
///
/// ```
/// use hlpower_netlist::{gen, streams, Library, Netlist};
/// use hlpower_netlist::{monte_carlo_power_seeded, MonteCarloOptions};
///
/// let mut nl = Netlist::new();
/// let a = nl.input_bus("a", 8);
/// let b = nl.input_bus("b", 8);
/// let c0 = nl.constant(false);
/// let s = gen::ripple_adder(&mut nl, &a, &b, c0);
/// nl.output_bus("s", &s);
/// let w = nl.input_count();
///
/// let r = monte_carlo_power_seeded(
///     &nl,
///     &Library::default(),
///     |rng| streams::random_rng(rng, w),
///     42,
///     &MonteCarloOptions::default(),
/// ).unwrap();
/// assert!(r.power_uw > 0.0);
/// ```
///
/// # Determinism
///
/// The result is a pure function of `(netlist, lib, stream_fn, seed,
/// opts)` — the worker count never affects it. See
/// [`monte_carlo_power_seeded_threads`] for the mechanism.
///
/// # Errors
///
/// As [`monte_carlo_power`].
pub fn monte_carlo_power_seeded<F, I>(
    netlist: &Netlist,
    lib: &Library,
    stream_fn: F,
    seed: u64,
    opts: &MonteCarloOptions,
) -> Result<MonteCarloResult, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    let threads = par::num_threads_checked()
        .map_err(|e| NetlistError::InvalidThreadCount { reason: e.to_string() })?;
    monte_carlo_power_seeded_threads(netlist, lib, stream_fn, seed, opts, threads)
}

/// [`monte_carlo_power_seeded`] with an explicit worker count, on the
/// default [`McKernel::Auto`] kernel (packed width picked from the batch
/// budget).
///
/// # Errors
///
/// As [`monte_carlo_power`], plus [`NetlistError::InvalidThreadCount`]
/// when `threads` is 0 (previously this was silently clamped to 1).
pub fn monte_carlo_power_seeded_threads<F, I>(
    netlist: &Netlist,
    lib: &Library,
    stream_fn: F,
    seed: u64,
    opts: &MonteCarloOptions,
    threads: usize,
) -> Result<MonteCarloResult, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    monte_carlo_power_seeded_threads_kernel(
        netlist,
        lib,
        stream_fn,
        seed,
        opts,
        threads,
        McKernel::default(),
    )
}

/// [`monte_carlo_power_seeded_threads`] with an explicit simulation
/// kernel.
///
/// Work is scheduled in fixed-size waves of parallel tasks — `WAVE`
/// single-batch tasks for the scalar kernel, `WAVE_WORDS` packed words
/// (one batch per lane) for the packed kernels — and the serial stopping
/// rule is replayed over the resulting power samples in batch-index
/// order. Batch `b` is fed by `stream_fn(root.split(b))` under every
/// kernel, a batch's sample is a pure function of the seed and its index,
/// and the stopping decision is a pure function of the ordered sample
/// prefix, so **every thread count and every kernel computes the
/// identical result**; only the number of speculative batches discarded
/// at the stop point (an `hlpower-obs` counter, not a result) depends on
/// the kernel's wave granularity. A batch budget that is not a multiple
/// of the lane count simply leaves the trailing lanes of the final word
/// masked out — they are never simulated, not silently rounded up or
/// down.
///
/// # Errors
///
/// As [`monte_carlo_power_seeded_threads`].
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_power_seeded_threads_kernel<F, I>(
    netlist: &Netlist,
    lib: &Library,
    stream_fn: F,
    seed: u64,
    opts: &MonteCarloOptions,
    threads: usize,
    kernel: McKernel,
) -> Result<MonteCarloResult, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    // Surface cyclic-netlist errors once, up front, rather than from
    // whichever worker happens to hit them first.
    ZeroDelaySim::new(netlist)?;
    let root = Rng::seed_from_u64(seed);
    // One coefficient table for the whole run: converting per-lane
    // activities to power samples is the per-batch fixed cost, and doing
    // it through `Activity::power` (which re-derives load caps and the
    // group breakdown every call) used to dwarf the packed simulation.
    let model = PowerModel::new(netlist, lib);
    let kernel = kernel.resolve(opts.max_batches);
    match kernel {
        McKernel::Scalar => seeded_wave_engine(opts, threads, 1, |base, _lanes| {
            Ok(vec![run_scalar_batch(netlist, &model, &stream_fn, &root, base, opts)?])
        }),
        McKernel::Packed64 => seeded_wave_engine(opts, threads, kernel.lanes(), |base, lanes| {
            run_packed_word::<u64, _, _>(netlist, &model, &stream_fn, &root, base, lanes, opts)
        }),
        McKernel::Packed256 => seeded_wave_engine(opts, threads, kernel.lanes(), |base, lanes| {
            run_packed_word::<W256, _, _>(netlist, &model, &stream_fn, &root, base, lanes, opts)
        }),
        McKernel::Packed512 => seeded_wave_engine(opts, threads, kernel.lanes(), |base, lanes| {
            run_packed_word::<W512, _, _>(netlist, &model, &stream_fn, &root, base, lanes, opts)
        }),
        McKernel::Auto => unreachable!("resolve never returns Auto"),
    }
}

/// Parallel Monte-Carlo estimation of *glitch-aware* (real-delay) average
/// power on the default worker count and the default
/// [`TimedKernel::Auto`] kernel (packed width picked from the batch
/// budget).
///
/// This is the timed-simulation sibling of [`monte_carlo_power_seeded`]:
/// identical batching, splitting, and stopping-rule semantics, but each
/// batch is simulated under the library's transport-delay model, so the
/// power samples include glitch transitions the zero-delay estimator
/// cannot see (on arithmetic circuits these can dominate — the survey's
/// motivation for real-delay estimation).
///
/// # Errors
///
/// As [`monte_carlo_power`].
pub fn monte_carlo_glitch_power_seeded<F, I>(
    netlist: &Netlist,
    lib: &Library,
    stream_fn: F,
    seed: u64,
    opts: &MonteCarloOptions,
) -> Result<MonteCarloResult, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    let threads = par::num_threads_checked()
        .map_err(|e| NetlistError::InvalidThreadCount { reason: e.to_string() })?;
    monte_carlo_glitch_power_seeded_threads(netlist, lib, stream_fn, seed, opts, threads)
}

/// [`monte_carlo_glitch_power_seeded`] with an explicit worker count.
///
/// # Errors
///
/// As [`monte_carlo_power_seeded_threads`].
pub fn monte_carlo_glitch_power_seeded_threads<F, I>(
    netlist: &Netlist,
    lib: &Library,
    stream_fn: F,
    seed: u64,
    opts: &MonteCarloOptions,
    threads: usize,
) -> Result<MonteCarloResult, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    monte_carlo_glitch_power_seeded_threads_kernel(
        netlist,
        lib,
        stream_fn,
        seed,
        opts,
        threads,
        TimedKernel::default(),
    )
}

/// [`monte_carlo_glitch_power_seeded_threads`] with an explicit timed
/// kernel.
///
/// Batch `b` is fed by `stream_fn(root.split(b))` under every kernel and
/// per-lane timed activities are exact, so — as with the zero-delay engine
/// — **every thread count and every kernel computes the identical
/// result**. [`TimedKernel::Auto`] resolves against the batch budget,
/// exactly as [`McKernel::Auto`] does.
///
/// # Errors
///
/// As [`monte_carlo_power_seeded_threads`].
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_glitch_power_seeded_threads_kernel<F, I>(
    netlist: &Netlist,
    lib: &Library,
    stream_fn: F,
    seed: u64,
    opts: &MonteCarloOptions,
    threads: usize,
    kernel: TimedKernel,
) -> Result<MonteCarloResult, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    ZeroDelaySim::new(netlist)?;
    let root = Rng::seed_from_u64(seed);
    // Shared coefficient table, as in the zero-delay engine above. The
    // library is still threaded through for the simulators' delay model.
    let model = PowerModel::new(netlist, lib);
    let kernel = kernel.resolve(opts.max_batches);
    match kernel {
        TimedKernel::Scalar => seeded_wave_engine(opts, threads, 1, |base, _lanes| {
            Ok(vec![run_scalar_glitch_batch(netlist, lib, &model, &stream_fn, &root, base, opts)?])
        }),
        TimedKernel::Packed64 => {
            seeded_wave_engine(opts, threads, kernel.lanes(), |base, lanes| {
                run_packed_glitch_word::<u64, _, _>(
                    netlist, lib, &model, &stream_fn, &root, base, lanes, opts,
                )
            })
        }
        TimedKernel::Packed256 => {
            seeded_wave_engine(opts, threads, kernel.lanes(), |base, lanes| {
                run_packed_glitch_word::<W256, _, _>(
                    netlist, lib, &model, &stream_fn, &root, base, lanes, opts,
                )
            })
        }
        TimedKernel::Packed512 => {
            seeded_wave_engine(opts, threads, kernel.lanes(), |base, lanes| {
                run_packed_glitch_word::<W512, _, _>(
                    netlist, lib, &model, &stream_fn, &root, base, lanes, opts,
                )
            })
        }
        TimedKernel::Auto => unreachable!("resolve never returns Auto"),
    }
}

/// The shared seeded-engine core: fixed-size speculative waves plus the
/// serial stopping-rule replay in batch-index order.
///
/// `run_group(base, lanes)` simulates batches `base..base + lanes` and
/// returns one `(power, cycles)` sample per batch (`None` for an empty
/// stream). `group_width` is the kernel's lane count (1 for scalar); the
/// final group of a wave is *ragged* — `lanes < group_width` — when the
/// remaining batch budget is not a multiple of the width, so the engine
/// never simulates batches past `max_batches` (the kernel masks the
/// unused trailing lanes out). Wave shapes are a pure function of
/// `(group_width, remaining)`, never of the thread count, so the
/// simulated-batch set — and therefore the result — is bit-identical for
/// any `threads`.
fn seeded_wave_engine<G>(
    opts: &MonteCarloOptions,
    threads: usize,
    group_width: usize,
    run_group: G,
) -> Result<MonteCarloResult, NetlistError>
where
    G: Fn(u64, usize) -> Result<Vec<Option<(f64, u64)>>, NetlistError> + Sync,
{
    if threads == 0 {
        return Err(NetlistError::InvalidThreadCount {
            reason: "explicit worker count 0".to_string(),
        });
    }
    obs::MC_RUNS.inc();
    let _t = obs::MC_TIME.span();
    let mut replay = StoppingReplay::new(opts);
    let mut exhausted = false;
    let mut next_batch = 0u64;
    while !exhausted && !replay.is_done() && replay.batches() < opts.max_batches {
        let remaining = opts.max_batches - replay.batches();
        // Task groups for this wave as `(first batch index, batch count)`.
        let groups: Vec<(u64, usize)> = if group_width > 1 {
            (0..WAVE_WORDS.min(remaining.div_ceil(group_width)))
                .map(|w| {
                    let off = w * group_width;
                    (next_batch + off as u64, group_width.min(remaining - off))
                })
                .collect()
        } else {
            (0..WAVE.min(remaining)).map(|i| (next_batch + i as u64, 1)).collect()
        };
        let dispatched: usize = groups.iter().map(|&(_, n)| n).sum();
        next_batch += dispatched as u64;
        obs::MC_WAVES.inc();
        let wave_span = trace::span_dyn("mc", || {
            format!("mc.wave:{}+{}", next_batch - dispatched as u64, dispatched)
        });
        let wave: Vec<Result<Vec<Option<(f64, u64)>>, NetlistError>> =
            par::map_with_threads(threads, &groups, |_, &(base, lanes)| run_group(base, lanes));
        drop(wave_span);
        let mut consumed = 0usize;
        'replay: for outcome in wave {
            for sample in outcome? {
                if replay.is_done() {
                    break 'replay;
                }
                match sample {
                    None => {
                        exhausted = true;
                        break 'replay;
                    }
                    Some((power, cycles)) => {
                        consumed += 1;
                        replay.push(power, cycles);
                    }
                }
            }
        }
        // Batches simulated this wave but never consumed by the stopping
        // rule (speculation past the stop point, the budget, or a dead
        // stream). Pure function of the kernel and the sample prefix.
        obs::MC_DISCARDED_BATCHES.add((dispatched - consumed - usize::from(exhausted)) as u64);
    }
    replay.finish()
}

/// Mean and normal-approximation confidence-interval half-width (`z`
/// multiplier, sample standard deviation over `sqrt(n)`) of `samples`.
///
/// This is the exact arithmetic of the seeded engine's stopping rule,
/// exported so external consumers (the estimation server's streamed CI
/// updates) report intervals bit-identical to the engine's. Fewer than
/// two samples yield an infinite half-width.
pub fn mean_ci_half_width(samples: &[f64], z: f64) -> (f64, f64) {
    mean_half_width(samples, z)
}

/// The seeded engine's serial stopping rule as a reusable object: push
/// power samples **in batch-index order** and the replay decides — with
/// exactly the arithmetic and the exact stop conditions of
/// [`monte_carlo_power_seeded_threads_kernel`] — when the run is done and
/// what the result is.
///
/// The seeded wave engine itself runs on this type, so any scheduler that
/// produces the same per-batch samples (for example the estimation
/// server's multi-tenant lane packer, which interleaves batches of many
/// jobs into shared packed words) and replays them through a
/// `StoppingReplay` is **bit-identical by construction** to the offline
/// entry points — same mean, same half-width, same batch count.
///
/// The replay also drives the `monte_carlo` metric counters
/// (`batches`, `cycles`, CI trajectory), matching the engine's
/// instrumentation.
#[derive(Debug, Clone)]
pub struct StoppingReplay {
    opts: MonteCarloOptions,
    samples: Vec<f64>,
    total_cycles: u64,
    stopped: Option<MonteCarloResult>,
}

impl StoppingReplay {
    /// A replay with no samples yet, governed by `opts`.
    pub fn new(opts: &MonteCarloOptions) -> Self {
        StoppingReplay { opts: *opts, samples: Vec::new(), total_cycles: 0, stopped: None }
    }

    /// Samples consumed so far.
    pub fn batches(&self) -> usize {
        self.samples.len()
    }

    /// Whether a stop has fired (confidence target met after >= 5
    /// samples, or the batch budget consumed). Further pushes are
    /// ignored once done.
    pub fn is_done(&self) -> bool {
        self.stopped.is_some()
    }

    /// Running `(mean, half-width)` over the samples so far (`None`
    /// before the first sample). For streamed progress updates; reading
    /// it never perturbs the stopping decision.
    pub fn interim(&self) -> Option<(f64, f64)> {
        if self.samples.is_empty() {
            None
        } else {
            Some(mean_half_width(&self.samples, self.opts.z))
        }
    }

    /// Consumes the next batch's sample (in batch-index order). Returns
    /// the final result as soon as the run is done; pushes after that
    /// are discarded speculation and leave the result untouched.
    pub fn push(&mut self, power: f64, cycles: u64) -> Option<&MonteCarloResult> {
        if self.stopped.is_some() {
            return self.stopped.as_ref();
        }
        self.samples.push(power);
        self.total_cycles += cycles;
        obs::MC_BATCHES.inc();
        obs::MC_CYCLES.add(cycles);
        if self.samples.len() >= 2 {
            let (_, hw) = mean_half_width(&self.samples, self.opts.z);
            obs::MC_CI_HALF_WIDTH_UW.push(hw);
            obs::MC_CI_HALF_WIDTH_NW.record((hw * 1000.0).round() as u64);
        }
        if self.samples.len() >= 5 {
            let (mean, hw) = mean_half_width(&self.samples, self.opts.z);
            if mean > 0.0 && hw / mean < self.opts.target_relative_error {
                self.stopped = Some(MonteCarloResult {
                    power_uw: mean,
                    half_width_uw: hw,
                    batches: self.samples.len(),
                    cycles: self.total_cycles,
                });
            }
        }
        if self.stopped.is_none() && self.samples.len() >= self.opts.max_batches {
            let (mean, hw) = mean_half_width(&self.samples, self.opts.z);
            self.stopped = Some(MonteCarloResult {
                power_uw: mean,
                half_width_uw: hw,
                batches: self.samples.len(),
                cycles: self.total_cycles,
            });
        }
        self.stopped.as_ref()
    }

    /// The result: the stop point if one fired, otherwise the estimate
    /// over every pushed sample (a stream that ended before the budget).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::EmptyStream`] when no sample was pushed.
    pub fn finish(self) -> Result<MonteCarloResult, NetlistError> {
        if let Some(r) = self.stopped {
            return Ok(r);
        }
        if self.samples.is_empty() {
            return Err(NetlistError::EmptyStream);
        }
        let (mean, hw) = mean_half_width(&self.samples, self.opts.z);
        Ok(MonteCarloResult {
            power_uw: mean,
            half_width_uw: hw,
            batches: self.samples.len(),
            cycles: self.total_cycles,
        })
    }
}

/// Simulates one batch on the scalar kernel: a fresh [`ZeroDelaySim`] over
/// `stream_fn(root.split(batch))`. Returns `None` for an empty stream.
fn run_scalar_batch<F, I>(
    netlist: &Netlist,
    model: &PowerModel,
    stream_fn: &F,
    root: &Rng,
    batch: u64,
    opts: &MonteCarloOptions,
) -> Result<Option<(f64, u64)>, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    let _batch_t = obs::MC_BATCH_NS.time();
    let _span = trace::span_dyn("mc", || format!("mc.batch:{batch}"));
    let mut sim = ZeroDelaySim::new(netlist)?;
    let mut got = 0usize;
    for v in stream_fn(root.split(batch)).into_iter().take(opts.batch_cycles) {
        sim.step(&v)?;
        got += 1;
    }
    if got == 0 {
        return Ok(None);
    }
    let act = sim.take_activity();
    Ok(Some((model.total_power_uw(&act), act.cycles)))
}

/// Simulates `lanes` consecutive batches (`base..base + lanes`) on one
/// bit-parallel [`WideSim`]: lane `l` consumes `stream_fn(root.split(base
/// + l))`, exactly the vectors the scalar kernel would feed batch `base +
/// l`. Lanes whose streams end early are masked out of later steps, and a
/// ragged group (`lanes < W::LANES`, the tail of a batch budget that is
/// not a multiple of the width) starts with its unused trailing lanes
/// already dead, so each simulated lane's activity — and therefore its
/// power sample — is bit-identical to a scalar run of the same stream.
fn run_packed_word<W: Word, F, I>(
    netlist: &Netlist,
    model: &PowerModel,
    stream_fn: &F,
    root: &Rng,
    base: u64,
    lanes: usize,
    opts: &MonteCarloOptions,
) -> Result<Vec<Option<(f64, u64)>>, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    let _batch_t = obs::MC_BATCH_NS.time();
    let _span = trace::span_dyn("mc", || format!("mc.word:{base}+{lanes}"));
    let width = netlist.input_count();
    let mut sim = WideSim::<W>::new(netlist)?;
    let mut iters: Vec<I::IntoIter> =
        (0..lanes).map(|l| stream_fn(root.split(base + l as u64)).into_iter()).collect();
    let mut got = vec![0u64; lanes];
    let mut words = vec![W::zero(); width];
    // Lanes still consuming their streams; a lane that returns `None` once
    // stays dead (iterator contract), matching the scalar `for` loop.
    let mut live = W::low_mask(lanes);
    for _ in 0..opts.batch_cycles {
        words.iter_mut().for_each(|w| *w = W::zero());
        let mut active = W::zero();
        for (l, it) in iters.iter_mut().enumerate() {
            if !live.lane(l) {
                continue;
            }
            if let Some(v) = it.next() {
                if v.len() != width {
                    return Err(NetlistError::InputWidthMismatch { got: v.len(), expected: width });
                }
                for (i, &b) in v.iter().enumerate() {
                    words[i].set_lane(l, b);
                }
                active.set_lane(l, true);
                got[l] += 1;
            }
        }
        if active.is_zero() {
            break;
        }
        sim.step_masked(&words, active)?;
        live = active;
    }
    let samples = sim.take_lane_powers(model);
    Ok((0..lanes).map(|l| if got[l] == 0 { None } else { Some(samples[l]) }).collect())
}

/// Simulates one glitch batch on the scalar timed kernel: a fresh
/// [`EventDrivenSim`] over `stream_fn(root.split(batch))`. Returns `None`
/// for an empty stream.
#[allow(clippy::too_many_arguments)]
fn run_scalar_glitch_batch<F, I>(
    netlist: &Netlist,
    lib: &Library,
    model: &PowerModel,
    stream_fn: &F,
    root: &Rng,
    batch: u64,
    opts: &MonteCarloOptions,
) -> Result<Option<(f64, u64)>, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    let _batch_t = obs::MC_BATCH_NS.time();
    let _span = trace::span_dyn("mc", || format!("mc.glitch_batch:{batch}"));
    let mut sim = EventDrivenSim::new(netlist, lib)?;
    let mut got = 0usize;
    for v in stream_fn(root.split(batch)).into_iter().take(opts.batch_cycles) {
        sim.step(&v)?;
        got += 1;
    }
    if got == 0 {
        return Ok(None);
    }
    let act = sim.take_activity();
    Ok(Some((model.total_power_uw(&act.activity), act.activity.cycles)))
}

/// Simulates `lanes` consecutive glitch batches on one [`WideTimedSim`],
/// with the same lane/stream mapping, end-of-stream masking, and
/// ragged-group handling as [`run_packed_word`]. Each simulated lane's
/// timed activity — and therefore its glitch-aware power sample — is
/// bit-identical to a scalar [`EventDrivenSim`] run of the same stream.
#[allow(clippy::too_many_arguments)]
fn run_packed_glitch_word<W: Word, F, I>(
    netlist: &Netlist,
    lib: &Library,
    model: &PowerModel,
    stream_fn: &F,
    root: &Rng,
    base: u64,
    lanes: usize,
    opts: &MonteCarloOptions,
) -> Result<Vec<Option<(f64, u64)>>, NetlistError>
where
    F: Fn(Rng) -> I + Sync,
    I: IntoIterator<Item = Vec<bool>>,
{
    let _batch_t = obs::MC_BATCH_NS.time();
    let _span = trace::span_dyn("mc", || format!("mc.glitch_word:{base}+{lanes}"));
    let width = netlist.input_count();
    let mut sim = WideTimedSim::<W>::new(netlist, lib)?;
    let mut iters: Vec<I::IntoIter> =
        (0..lanes).map(|l| stream_fn(root.split(base + l as u64)).into_iter()).collect();
    let mut got = vec![0u64; lanes];
    let mut words = vec![W::zero(); width];
    let mut live = W::low_mask(lanes);
    for _ in 0..opts.batch_cycles {
        words.iter_mut().for_each(|w| *w = W::zero());
        let mut active = W::zero();
        for (l, it) in iters.iter_mut().enumerate() {
            if !live.lane(l) {
                continue;
            }
            if let Some(v) = it.next() {
                if v.len() != width {
                    return Err(NetlistError::InputWidthMismatch { got: v.len(), expected: width });
                }
                for (i, &b) in v.iter().enumerate() {
                    words[i].set_lane(l, b);
                }
                active.set_lane(l, true);
                got[l] += 1;
            }
        }
        if active.is_zero() {
            break;
        }
        sim.step_masked(&words, active)?;
        live = active;
    }
    let samples = sim.take_lane_powers(model);
    Ok((0..lanes).map(|l| if got[l] == 0 { None } else { Some(samples[l]) }).collect())
}

/// One tenant's lane assignment inside a multi-tenant packed word: batch
/// `batch` of the Monte-Carlo job rooted at `seed`, simulated for
/// `cycles` input vectors.
///
/// See [`simulate_packed_lanes`]. Lane `l` of the word consumes
/// `stream_fn(Rng::seed_from_u64(seed).split(batch))` — exactly the
/// stream batch `batch` of an offline run with root seed `seed` consumes
/// — so requests from *different* jobs (different seeds, different cycle
/// budgets) can share one word without perturbing each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRequest {
    /// Root seed of the owning Monte-Carlo job.
    pub seed: u64,
    /// Batch index within that job.
    pub batch: u64,
    /// Input vectors this lane consumes (the job's `batch_cycles`).
    pub cycles: usize,
}

/// Simulates one packed word whose lanes belong to arbitrary independent
/// Monte-Carlo batches — the **multi-tenant lane packer** primitive.
///
/// Each lane `l` runs batch `lanes[l]`: a fresh stream split from that
/// lane's own root seed, stepped for that lane's own cycle budget, then
/// masked out (the prefix-closed active-set contract of
/// [`WideSim::step_masked`]). Because a lane's toggle counters are a pure
/// function of its own stream, the returned per-lane `(power, cycles)`
/// sample is **bit-identical** to the same batch simulated alone — by the
/// scalar kernel, by a solo packed run, or packed next to any other
/// tenants. Feeding each job's samples through a [`StoppingReplay`] in
/// batch order therefore reproduces the offline
/// [`monte_carlo_power_seeded_threads_kernel`] result exactly.
///
/// `kernel` supplies a pre-compiled instruction stream (a kernel-cache
/// hit); `None` compiles from scratch. A lane whose stream yields no
/// vectors reports `None`, mirroring the engine's empty-stream signal.
///
/// # Errors
///
/// As [`monte_carlo_power_seeded_threads_kernel`], plus
/// [`NetlistError::KernelMismatch`] for a foreign `kernel`.
///
/// # Panics
///
/// Panics if `lanes.len() > W::LANES` (callers pack at most one word).
pub fn simulate_packed_lanes<W: Word, F, I>(
    netlist: &Netlist,
    model: &PowerModel,
    kernel: Option<&CompiledKernel>,
    stream_fn: &F,
    lanes: &[LaneRequest],
) -> Result<Vec<Option<(f64, u64)>>, NetlistError>
where
    F: Fn(Rng) -> I,
    I: IntoIterator<Item = Vec<bool>>,
{
    assert!(lanes.len() <= W::LANES, "{} requests exceed {} lanes", lanes.len(), W::LANES);
    let _batch_t = obs::MC_BATCH_NS.time();
    let _span = trace::span_dyn("mc", || format!("mc.tenant_word:{}", lanes.len()));
    let mut sim = match kernel {
        Some(k) => WideSim::<W>::with_kernel(netlist, k)?,
        None => WideSim::<W>::new(netlist)?,
    };
    let got = run_tenant_lanes(netlist, lanes, stream_fn, |words, active| {
        sim.step_masked(words, active)
    })?;
    let samples = sim.take_lane_powers(model);
    Ok(collect_tenant_samples(&got, samples))
}

/// The glitch-aware (real-delay) sibling of [`simulate_packed_lanes`]:
/// identical lane/stream mapping and masking on a [`WideTimedSim`], so
/// each lane's glitch-aware power sample is bit-identical to its batch
/// run alone under [`monte_carlo_glitch_power_seeded_threads_kernel`].
///
/// # Errors
///
/// As [`simulate_packed_lanes`].
///
/// # Panics
///
/// Panics if `lanes.len() > W::LANES`.
pub fn simulate_packed_glitch_lanes<W: Word, F, I>(
    netlist: &Netlist,
    lib: &Library,
    model: &PowerModel,
    kernel: Option<&CompiledKernel>,
    stream_fn: &F,
    lanes: &[LaneRequest],
) -> Result<Vec<Option<(f64, u64)>>, NetlistError>
where
    F: Fn(Rng) -> I,
    I: IntoIterator<Item = Vec<bool>>,
{
    assert!(lanes.len() <= W::LANES, "{} requests exceed {} lanes", lanes.len(), W::LANES);
    let _batch_t = obs::MC_BATCH_NS.time();
    let _span = trace::span_dyn("mc", || format!("mc.tenant_glitch_word:{}", lanes.len()));
    let mut sim = match kernel {
        Some(k) => WideTimedSim::<W>::with_kernel(netlist, lib, k)?,
        None => WideTimedSim::<W>::new(netlist, lib)?,
    };
    let got = run_tenant_lanes(netlist, lanes, stream_fn, |words, active| {
        sim.step_masked(words, active)
    })?;
    let samples = sim.take_lane_powers(model);
    Ok(collect_tenant_samples(&got, samples))
}

/// The shared stepping loop of the multi-tenant packers: feeds each lane
/// its own split stream for its own cycle budget, with the same
/// end-of-stream masking and word assembly as [`run_packed_word`].
/// Returns the vectors consumed per lane.
fn run_tenant_lanes<F, I, W, S>(
    netlist: &Netlist,
    lanes: &[LaneRequest],
    stream_fn: &F,
    mut step_masked: S,
) -> Result<Vec<usize>, NetlistError>
where
    F: Fn(Rng) -> I,
    I: IntoIterator<Item = Vec<bool>>,
    W: Word,
    S: FnMut(&[W], W) -> Result<(), NetlistError>,
{
    let width = netlist.input_count();
    let mut iters: Vec<I::IntoIter> = lanes
        .iter()
        .map(|r| stream_fn(Rng::seed_from_u64(r.seed).split(r.batch)).into_iter())
        .collect();
    let mut got = vec![0usize; lanes.len()];
    let mut words = vec![W::zero(); width];
    let mut live = W::low_mask(lanes.len());
    let max_cycles = lanes.iter().map(|r| r.cycles).max().unwrap_or(0);
    for _ in 0..max_cycles {
        words.iter_mut().for_each(|w| *w = W::zero());
        let mut active = W::zero();
        for (l, it) in iters.iter_mut().enumerate() {
            // A lane past its own budget (or whose stream died) stays
            // masked: active sets are prefix-closed per lane.
            if !live.lane(l) || got[l] >= lanes[l].cycles {
                continue;
            }
            if let Some(v) = it.next() {
                if v.len() != width {
                    return Err(NetlistError::InputWidthMismatch { got: v.len(), expected: width });
                }
                for (i, &b) in v.iter().enumerate() {
                    words[i].set_lane(l, b);
                }
                active.set_lane(l, true);
                got[l] += 1;
            }
        }
        if active.is_zero() {
            break;
        }
        step_masked(&words, active)?;
        live = active;
    }
    Ok(got)
}

/// Maps per-lane `(power, cycles)` simulator outputs back to requests,
/// with `None` for lanes that consumed no vectors — the same
/// empty-stream signal [`run_packed_word`] reports.
fn collect_tenant_samples(got: &[usize], samples: Vec<(f64, u64)>) -> Vec<Option<(f64, u64)>> {
    got.iter().enumerate().map(|(l, &g)| if g == 0 { None } else { Some(samples[l]) }).collect()
}

fn mean_half_width(samples: &[f64], z: f64) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, f64::INFINITY);
    }
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, z * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams;

    fn adder() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let c0 = nl.constant(false);
        let s = crate::gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        nl
    }

    #[test]
    fn converges_on_random_stimulus() {
        let nl = adder();
        let lib = Library::default();
        let r = monte_carlo_power(
            &nl,
            &lib,
            streams::random(77, nl.input_count()),
            &MonteCarloOptions::default(),
        )
        .unwrap();
        assert!(r.power_uw > 0.0);
        assert!(r.relative_error() <= 0.02 + 1e-9);
        assert!(r.batches >= 5);
    }

    #[test]
    fn matches_exhaustive_average() {
        let nl = adder();
        let lib = Library::default();
        let mc = monte_carlo_power(
            &nl,
            &lib,
            streams::random(5, nl.input_count()),
            &MonteCarloOptions {
                target_relative_error: 0.01,
                max_batches: 400,
                ..Default::default()
            },
        )
        .unwrap();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(streams::random(123, nl.input_count()).take(40_000)).unwrap();
        let full = act.power(&nl, &lib).total_power_uw();
        let rel = (mc.power_uw - full).abs() / full;
        assert!(rel < 0.03, "mc {:.2} vs full {:.2}", mc.power_uw, full);
    }

    #[test]
    fn empty_stream_is_an_error() {
        let nl = adder();
        let lib = Library::default();
        let err =
            monte_carlo_power(&nl, &lib, Vec::<Vec<bool>>::new(), &MonteCarloOptions::default());
        assert!(matches!(err, Err(NetlistError::EmptyStream)));
    }

    #[test]
    fn seeded_engine_is_bit_identical_across_thread_counts() {
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let opts = MonteCarloOptions::default();
        let run = |threads: usize| {
            monte_carlo_power_seeded_threads(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                99,
                &opts,
                threads,
            )
            .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
        assert_eq!(one, run(16));
        assert!(one.power_uw > 0.0);
        assert!(one.relative_error() <= opts.target_relative_error + 1e-9);
    }

    #[test]
    fn packed_kernel_is_bit_identical_to_scalar_kernel() {
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let opts = MonteCarloOptions::default();
        let run = |kernel: McKernel, threads: usize| {
            monte_carlo_power_seeded_threads_kernel(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                99,
                &opts,
                threads,
                kernel,
            )
            .unwrap()
        };
        let scalar = run(McKernel::Scalar, 1);
        assert_eq!(scalar, run(McKernel::Packed64, 1));
        assert_eq!(scalar, run(McKernel::Packed64, 4));
        // And on short per-batch streams (lane masking in play).
        let short = MonteCarloOptions { batch_cycles: 37, max_batches: 70, ..Default::default() };
        let run_short = |kernel: McKernel| {
            monte_carlo_power_seeded_threads_kernel(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w).take(23).collect::<Vec<_>>(),
                5,
                &short,
                2,
                kernel,
            )
            .unwrap()
        };
        assert_eq!(run_short(McKernel::Scalar), run_short(McKernel::Packed64));
    }

    #[test]
    fn auto_kernel_resolves_by_batch_budget() {
        assert_eq!(McKernel::Auto.resolve(1), McKernel::Packed64);
        assert_eq!(McKernel::Auto.resolve(255), McKernel::Packed64);
        assert_eq!(McKernel::Auto.resolve(256), McKernel::Packed256);
        assert_eq!(McKernel::Auto.resolve(511), McKernel::Packed256);
        assert_eq!(McKernel::Auto.resolve(512), McKernel::Packed512);
        assert_eq!(McKernel::default(), McKernel::Auto);
        // Explicit kernels resolve to themselves, whatever the budget.
        for k in [McKernel::Scalar, McKernel::Packed64, McKernel::Packed256, McKernel::Packed512] {
            assert_eq!(k.resolve(0), k);
            assert_eq!(k.resolve(10_000), k);
        }
        assert_eq!(McKernel::Scalar.lanes(), 1);
        assert_eq!(McKernel::Packed64.lanes(), 64);
        assert_eq!(McKernel::Packed256.lanes(), 256);
        assert_eq!(McKernel::Packed512.lanes(), 512);
    }

    #[test]
    fn wide_kernels_are_bit_identical_to_scalar_kernel() {
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        // Small batches, no early stop: every kernel must consume the
        // exact same 300-sample prefix.
        let opts = MonteCarloOptions {
            batch_cycles: 20,
            max_batches: 300,
            target_relative_error: 0.0,
            ..Default::default()
        };
        let run = |kernel: McKernel, threads: usize| {
            monte_carlo_power_seeded_threads_kernel(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                13,
                &opts,
                threads,
                kernel,
            )
            .unwrap()
        };
        let scalar = run(McKernel::Scalar, 1);
        assert_eq!(scalar.batches, 300);
        for kernel in [McKernel::Packed64, McKernel::Packed256, McKernel::Packed512] {
            assert_eq!(scalar, run(kernel, 1), "{kernel:?} @ 1 thread");
            assert_eq!(scalar, run(kernel, 4), "{kernel:?} @ 4 threads");
        }
        // Auto resolves to Packed256 for this budget and stays identical.
        assert_eq!(scalar, run(McKernel::Auto, 2));
    }

    #[test]
    fn ragged_batch_budgets_are_exact_at_every_width() {
        // A budget that is not a multiple of any lane width must produce
        // exactly `max_batches` samples — trailing lanes of the final
        // word are masked out, never silently rounded up or down — and
        // stay bit-identical to the scalar kernel.
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        for max_batches in [37usize, 100, 300] {
            let opts = MonteCarloOptions {
                batch_cycles: 25,
                max_batches,
                target_relative_error: 0.0,
                ..Default::default()
            };
            let run = |kernel: McKernel| {
                monte_carlo_power_seeded_threads_kernel(
                    &nl,
                    &lib,
                    |rng| streams::random_rng(rng, w),
                    41,
                    &opts,
                    2,
                    kernel,
                )
                .unwrap()
            };
            let scalar = run(McKernel::Scalar);
            assert_eq!(scalar.batches, max_batches);
            for kernel in [McKernel::Packed64, McKernel::Packed256, McKernel::Packed512] {
                let r = run(kernel);
                assert_eq!(r.batches, max_batches, "{kernel:?} budget {max_batches}");
                assert_eq!(r, scalar, "{kernel:?} budget {max_batches}");
            }
        }
    }

    #[test]
    fn glitch_wide_kernels_are_bit_identical_to_scalar_kernel() {
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let opts = MonteCarloOptions {
            batch_cycles: 15,
            max_batches: 70,
            target_relative_error: 0.0,
            ..Default::default()
        };
        let run = |kernel: TimedKernel| {
            monte_carlo_glitch_power_seeded_threads_kernel(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                33,
                &opts,
                2,
                kernel,
            )
            .unwrap()
        };
        let scalar = run(TimedKernel::Scalar);
        assert_eq!(scalar.batches, 70);
        for kernel in [
            TimedKernel::Packed64,
            TimedKernel::Packed256,
            TimedKernel::Packed512,
            TimedKernel::Auto,
        ] {
            assert_eq!(scalar, run(kernel), "{kernel:?}");
        }
    }

    #[test]
    fn seeded_engine_agrees_with_serial_estimate() {
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let opts = MonteCarloOptions {
            target_relative_error: 0.01,
            max_batches: 400,
            ..Default::default()
        };
        let par = monte_carlo_power_seeded(&nl, &lib, |rng| streams::random_rng(rng, w), 7, &opts)
            .unwrap();
        let ser = monte_carlo_power(&nl, &lib, streams::random(1234, w), &opts).unwrap();
        let rel = (par.power_uw - ser.power_uw).abs() / ser.power_uw;
        assert!(rel < 0.03, "par {:.2} vs serial {:.2}", par.power_uw, ser.power_uw);
    }

    #[test]
    fn seeded_engine_depends_on_seed() {
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let opts = MonteCarloOptions { max_batches: 8, ..Default::default() };
        let run = |seed| {
            monte_carlo_power_seeded(&nl, &lib, |rng| streams::random_rng(rng, w), seed, &opts)
                .unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).power_uw, run(6).power_uw);
    }

    #[test]
    fn zero_threads_is_an_error_not_a_clamp() {
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let err = monte_carlo_power_seeded_threads(
            &nl,
            &lib,
            |rng| streams::random_rng(rng, w),
            99,
            &MonteCarloOptions::default(),
            0,
        );
        assert!(matches!(err, Err(NetlistError::InvalidThreadCount { .. })), "got {err:?}");
    }

    #[test]
    fn glitch_engine_is_kernel_and_thread_invariant() {
        // Use a multiplier so glitch power actually differs from
        // zero-delay power.
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let p = crate::gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        let lib = Library::default();
        let w = nl.input_count();
        let opts = MonteCarloOptions { batch_cycles: 40, max_batches: 80, ..Default::default() };
        let run = |kernel: TimedKernel, threads: usize| {
            monte_carlo_glitch_power_seeded_threads_kernel(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                21,
                &opts,
                threads,
                kernel,
            )
            .unwrap()
        };
        let scalar = run(TimedKernel::Scalar, 1);
        assert_eq!(scalar, run(TimedKernel::Packed64, 1));
        assert_eq!(scalar, run(TimedKernel::Packed64, 4));
        assert_eq!(scalar, run(TimedKernel::Scalar, 3));
        // Glitches make real-delay power strictly exceed zero-delay power
        // for the same stimulus distribution.
        let zd = monte_carlo_power_seeded_threads(
            &nl,
            &lib,
            |rng| streams::random_rng(rng, w),
            21,
            &opts,
            2,
        )
        .unwrap();
        assert!(scalar.power_uw > zd.power_uw, "glitch {} vs zd {}", scalar.power_uw, zd.power_uw);
    }

    #[test]
    fn seeded_engine_respects_finite_streams() {
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let opts = MonteCarloOptions { batch_cycles: 50, ..Default::default() };
        // Empty per-batch streams -> EmptyStream, like the serial engine.
        let err = monte_carlo_power_seeded(&nl, &lib, |_| Vec::<Vec<bool>>::new(), 1, &opts);
        assert!(matches!(err, Err(NetlistError::EmptyStream)));
        // Short per-batch streams still produce samples.
        let r = monte_carlo_power_seeded(
            &nl,
            &lib,
            |rng| streams::random_rng(rng, w).take(10).collect::<Vec<_>>(),
            1,
            &opts,
        )
        .unwrap();
        assert!(r.batches > 0);
    }

    #[test]
    fn tenant_lanes_are_bit_identical_to_solo_batches() {
        // Heterogeneous tenants — different root seeds, batch indices,
        // and cycle budgets — packed into one word must each produce the
        // exact sample the scalar kernel produces for that batch alone.
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let model = PowerModel::new(&nl, &lib);
        let stream_fn = |rng: Rng| streams::random_rng(rng, w);
        let lanes = [
            LaneRequest { seed: 99, batch: 0, cycles: 60 },
            LaneRequest { seed: 0x1997, batch: 7, cycles: 25 },
            LaneRequest { seed: 99, batch: 3, cycles: 60 },
            LaneRequest { seed: 5, batch: 1, cycles: 1 },
        ];
        let kernel = CompiledKernel::compile(&nl).unwrap();
        let packed =
            simulate_packed_lanes::<u64, _, _>(&nl, &model, Some(&kernel), &stream_fn, &lanes)
                .unwrap();
        for (l, r) in lanes.iter().enumerate() {
            let solo = run_scalar_batch(
                &nl,
                &model,
                &stream_fn,
                &Rng::seed_from_u64(r.seed),
                r.batch,
                &MonteCarloOptions { batch_cycles: r.cycles, ..Default::default() },
            )
            .unwrap();
            assert_eq!(packed[l], solo, "lane {l} ({r:?})");
            assert!(packed[l].is_some());
        }
        // Packing next to *different* neighbors must not change a sample.
        let alone =
            simulate_packed_lanes::<u64, _, _>(&nl, &model, None, &stream_fn, &lanes[..1]).unwrap();
        assert_eq!(alone[0], packed[0]);
        // Wider words agree too.
        let wide =
            simulate_packed_lanes::<W256, _, _>(&nl, &model, Some(&kernel), &stream_fn, &lanes)
                .unwrap();
        assert_eq!(wide, packed);
        // An empty-stream lane reports None without disturbing neighbors.
        let with_dead = [lanes[0], lanes[1]];
        let dead = simulate_packed_lanes::<u64, _, _>(
            &nl,
            &model,
            None,
            &|rng: Rng| {
                let s = rng.clone().next_u64();
                let take = if s == Rng::seed_from_u64(0x1997).split(7).next_u64() { 0 } else { 60 };
                streams::random_rng(rng, w).take(take).collect::<Vec<_>>()
            },
            &with_dead,
        )
        .unwrap();
        assert!(dead[0].is_some());
        assert_eq!(dead[1], None);
    }

    #[test]
    fn tenant_glitch_lanes_are_bit_identical_to_solo_batches() {
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let model = PowerModel::new(&nl, &lib);
        let stream_fn = |rng: Rng| streams::random_rng(rng, w);
        let lanes = [
            LaneRequest { seed: 33, batch: 2, cycles: 15 },
            LaneRequest { seed: 4242, batch: 0, cycles: 40 },
        ];
        let kernel = CompiledKernel::compile(&nl).unwrap();
        let packed = simulate_packed_glitch_lanes::<u64, _, _>(
            &nl,
            &lib,
            &model,
            Some(&kernel),
            &stream_fn,
            &lanes,
        )
        .unwrap();
        for (l, r) in lanes.iter().enumerate() {
            let solo = run_scalar_glitch_batch(
                &nl,
                &lib,
                &model,
                &stream_fn,
                &Rng::seed_from_u64(r.seed),
                r.batch,
                &MonteCarloOptions { batch_cycles: r.cycles, ..Default::default() },
            )
            .unwrap();
            assert_eq!(packed[l], solo, "lane {l} ({r:?})");
        }
    }

    #[test]
    fn foreign_kernel_is_rejected() {
        let nl = adder();
        let mut other = Netlist::new();
        let a = other.input_bus("a", 2);
        other.set_output("y", a[0]);
        let lib = Library::default();
        let model = PowerModel::new(&nl, &lib);
        let kernel = CompiledKernel::compile(&other).unwrap();
        let err = simulate_packed_lanes::<u64, _, _>(
            &nl,
            &model,
            Some(&kernel),
            &|rng: Rng| streams::random_rng(rng, nl.input_count()),
            &[LaneRequest { seed: 1, batch: 0, cycles: 5 }],
        );
        assert!(matches!(err, Err(NetlistError::KernelMismatch { .. })), "got {err:?}");
    }

    #[test]
    fn stopping_replay_reproduces_the_engine_exactly() {
        // An external scheduler — here a toy multi-tenant packer that
        // interleaves two jobs' batches into shared words — must land on
        // the engine's exact result when it replays each job's samples
        // through a StoppingReplay in batch order.
        let nl = adder();
        let lib = Library::default();
        let w = nl.input_count();
        let stream_fn = |rng: Rng| streams::random_rng(rng, w);
        let jobs = [
            (99u64, MonteCarloOptions::default()),
            (
                0x1997,
                MonteCarloOptions {
                    batch_cycles: 60,
                    max_batches: 60,
                    target_relative_error: 0.01,
                    ..Default::default()
                },
            ),
        ];
        let offline: Vec<MonteCarloResult> = jobs
            .iter()
            .map(|(seed, opts)| {
                monte_carlo_power_seeded_threads_kernel(
                    &nl,
                    &lib,
                    stream_fn,
                    *seed,
                    opts,
                    1,
                    McKernel::Packed64,
                )
                .unwrap()
            })
            .collect();
        let model = PowerModel::new(&nl, &lib);
        let kernel = CompiledKernel::compile(&nl).unwrap();
        let mut replays: Vec<StoppingReplay> =
            jobs.iter().map(|(_, opts)| StoppingReplay::new(opts)).collect();
        let mut batch = 0u64;
        while replays.iter().any(|r| !r.is_done()) {
            // Pack the next batch of every live job into one word.
            let live: Vec<usize> = (0..jobs.len()).filter(|&j| !replays[j].is_done()).collect();
            let lanes: Vec<LaneRequest> = live
                .iter()
                .map(|&j| LaneRequest { seed: jobs[j].0, batch, cycles: jobs[j].1.batch_cycles })
                .collect();
            let samples =
                simulate_packed_lanes::<u64, _, _>(&nl, &model, Some(&kernel), &stream_fn, &lanes)
                    .unwrap();
            for (slot, &j) in live.iter().enumerate() {
                let (power, cycles) = samples[slot].expect("random streams never end");
                replays[j].push(power, cycles);
            }
            batch += 1;
        }
        for (j, replay) in replays.into_iter().enumerate() {
            assert_eq!(replay.finish().unwrap(), offline[j], "job {j}");
        }
    }

    #[test]
    fn stopping_replay_edge_cases() {
        let opts = MonteCarloOptions { max_batches: 3, ..Default::default() };
        let mut r = StoppingReplay::new(&opts);
        assert!(!r.is_done());
        assert_eq!(r.interim(), None);
        assert!(r.push(1.0, 10).is_none());
        let (m, hw) = r.interim().unwrap();
        assert_eq!(m, 1.0);
        assert!(hw.is_infinite());
        assert!(r.push(2.0, 10).is_none());
        // Budget stop fires on the third push; later pushes are ignored.
        let done = r.push(3.0, 10).cloned().unwrap();
        assert_eq!(done.batches, 3);
        assert_eq!(done.cycles, 30);
        assert!(r.is_done());
        assert_eq!(r.push(99.0, 10).cloned().unwrap(), done);
        assert_eq!(r.finish().unwrap(), done);
        // The exported CI arithmetic is the engine's own.
        let (mean, half) = mean_ci_half_width(&[1.0, 2.0, 3.0], opts.z);
        assert_eq!((mean, half), (done.power_uw, done.half_width_uw));
        // No samples -> EmptyStream, like the engine.
        let empty = StoppingReplay::new(&opts);
        assert!(matches!(empty.finish(), Err(NetlistError::EmptyStream)));
    }
}
