//! Monte-Carlo average-power estimation with confidence intervals (survey
//! reference 32, Burch et al.) and simple batching.

use crate::error::NetlistError;
use crate::library::Library;
use crate::netlist::Netlist;
use crate::sim::ZeroDelaySim;

/// Options controlling a Monte-Carlo power-estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOptions {
    /// Cycles per batch (each batch yields one power sample).
    pub batch_cycles: usize,
    /// Maximum number of batches.
    pub max_batches: usize,
    /// Stop when the half-width of the confidence interval falls below this
    /// fraction of the running mean.
    pub target_relative_error: f64,
    /// Two-sided confidence multiplier (1.96 ~ 95% under normality).
    pub z: f64,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            batch_cycles: 200,
            max_batches: 200,
            target_relative_error: 0.02,
            z: 1.96,
        }
    }
}

/// Result of a Monte-Carlo power estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Estimated average power, in microwatts.
    pub power_uw: f64,
    /// Half-width of the confidence interval, in microwatts.
    pub half_width_uw: f64,
    /// Number of batches simulated.
    pub batches: usize,
    /// Total cycles simulated.
    pub cycles: u64,
}

impl MonteCarloResult {
    /// Relative half-width of the confidence interval.
    pub fn relative_error(&self) -> f64 {
        if self.power_uw == 0.0 {
            0.0
        } else {
            self.half_width_uw / self.power_uw
        }
    }
}

/// Estimates average power by batched Monte-Carlo simulation over a stream.
///
/// The stream supplies input vectors; each batch of `opts.batch_cycles`
/// cycles contributes one power sample, and sampling stops when the
/// normal-approximation confidence interval is tighter than
/// `opts.target_relative_error` (after at least 5 batches) or when
/// `opts.max_batches` is exhausted.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists or
/// [`NetlistError::EmptyStream`] if the stream ends before one full batch.
pub fn monte_carlo_power(
    netlist: &Netlist,
    lib: &Library,
    stream: impl IntoIterator<Item = Vec<bool>>,
    opts: &MonteCarloOptions,
) -> Result<MonteCarloResult, NetlistError> {
    let mut sim = ZeroDelaySim::new(netlist)?;
    let mut it = stream.into_iter();
    let mut samples: Vec<f64> = Vec::new();
    let mut total_cycles = 0u64;
    for _batch in 0..opts.max_batches {
        let mut got = 0usize;
        for _ in 0..opts.batch_cycles {
            match it.next() {
                Some(v) => {
                    sim.step(&v)?;
                    got += 1;
                }
                None => break,
            }
        }
        if got == 0 {
            break;
        }
        let act = sim.take_activity();
        total_cycles += act.cycles;
        samples.push(act.power(netlist, lib).total_power_uw());
        if samples.len() >= 5 {
            let (mean, hw) = mean_half_width(&samples, opts.z);
            if mean > 0.0 && hw / mean < opts.target_relative_error {
                return Ok(MonteCarloResult {
                    power_uw: mean,
                    half_width_uw: hw,
                    batches: samples.len(),
                    cycles: total_cycles,
                });
            }
        }
    }
    if samples.is_empty() {
        return Err(NetlistError::EmptyStream);
    }
    let (mean, hw) = mean_half_width(&samples, opts.z);
    Ok(MonteCarloResult {
        power_uw: mean,
        half_width_uw: hw,
        batches: samples.len(),
        cycles: total_cycles,
    })
}

fn mean_half_width(samples: &[f64], z: f64) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, f64::INFINITY);
    }
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, z * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams;

    fn adder() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let c0 = nl.constant(false);
        let s = crate::gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        nl
    }

    #[test]
    fn converges_on_random_stimulus() {
        let nl = adder();
        let lib = Library::default();
        let r = monte_carlo_power(
            &nl,
            &lib,
            streams::random(77, nl.input_count()),
            &MonteCarloOptions::default(),
        )
        .unwrap();
        assert!(r.power_uw > 0.0);
        assert!(r.relative_error() <= 0.02 + 1e-9);
        assert!(r.batches >= 5);
    }

    #[test]
    fn matches_exhaustive_average() {
        let nl = adder();
        let lib = Library::default();
        let mc = monte_carlo_power(
            &nl,
            &lib,
            streams::random(5, nl.input_count()),
            &MonteCarloOptions { target_relative_error: 0.01, max_batches: 400, ..Default::default() },
        )
        .unwrap();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(streams::random(123, nl.input_count()).take(40_000));
        let full = act.power(&nl, &lib).total_power_uw();
        let rel = (mc.power_uw - full).abs() / full;
        assert!(rel < 0.03, "mc {:.2} vs full {:.2}", mc.power_uw, full);
    }

    #[test]
    fn empty_stream_is_an_error() {
        let nl = adder();
        let lib = Library::default();
        let err = monte_carlo_power(&nl, &lib, Vec::<Vec<bool>>::new(), &MonteCarloOptions::default());
        assert!(matches!(err, Err(NetlistError::EmptyStream)));
    }
}
