//! Dirty-cone incremental re-simulation for optimization loops.
//!
//! An optimize pass that rewrites `k` gates of an `n`-gate netlist does
//! not need a full recompile-and-replay to re-score the candidate: only
//! the **output cone** of the touched gates (their forward closure through
//! the fanout graph) can change value, and every other node's packed
//! stimulus response is already known. [`IncrementalSim`] records one
//! full time-packed evaluation of a combinational netlist over a stimulus
//! stream (64 cycles per `u64` word, the [`crate::BlockSim64`] packing),
//! caches every node's words, and then answers *"what does this mutated
//! netlist do on the same stream?"* by re-evaluating just the dirty cone
//! against the cached fan-in words — no instruction-stream recompile, no
//! replay of untouched nodes.
//!
//! The result of a [`resim`](IncrementalSim::resim) is a [`ConeResim`]:
//! the cone that was re-evaluated, the subset of nodes whose values
//! actually changed, and a full [`Activity`] for the mutated netlist that
//! is **bit-identical** to a from-scratch recording (the in-tree property
//! battery locks this in, together with the cone-superset invariant).
//! Accepted candidates are folded back with
//! [`commit`](IncrementalSim::commit), which updates the cache in
//! `O(cone)` and re-arms the simulator for the next mutation.
//!
//! Mutations are expressed with [`crate::Netlist::replace_gate`] (in-place
//! rewiring, node ids stable) plus ordinary append-only construction for
//! new logic; [`crate::optimize::rewrite`] in the optimize crate is the
//! canonical consumer, and the PR 5 attribution profiler consumes the
//! delta activity through [`crate::attribute_delta`].

use hlpower_obs::metrics as obs;

use crate::error::NetlistError;
use crate::library::GateKind;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::sim::Activity;
use crate::sim64::{broadcast, Program};

/// A recorded time-packed simulation of a combinational netlist over a
/// fixed stimulus stream, supporting dirty-cone re-simulation of mutated
/// variants. See the `incremental` module docs for the workflow.
#[derive(Debug, Clone)]
pub struct IncrementalSim {
    /// The netlist the cached values correspond to (owned so mutated
    /// variants can be derived from it freely).
    base: Netlist,
    /// Number of stimulus vectors recorded.
    n_vectors: usize,
    /// `u64` words per node (`n_vectors.div_ceil(64)`).
    blocks: usize,
    /// Valid-bit mask of the final block.
    tail_mask: u64,
    /// Cached packed values, `node * blocks + b`; bit `c` of block `b` is
    /// the node's settled value on vector `b * 64 + c`.
    values: Vec<u64>,
    /// Exact per-node toggle counts over the recorded stream.
    toggles: Vec<u64>,
}

/// The outcome of one dirty-cone re-simulation
/// ([`IncrementalSim::resim`]): which nodes were re-evaluated, which
/// actually changed, and the mutated netlist's full activity.
#[derive(Debug, Clone)]
pub struct ConeResim {
    /// Every node that was re-evaluated (the mutation seeds, all appended
    /// nodes, and their forward closure), in evaluation (topological)
    /// order. Guaranteed to be a superset of
    /// [`changed_values`](Self::changed_values).
    pub cone: Vec<NodeId>,
    /// The cone nodes whose packed values differ from the cached base
    /// recording (appended nodes always count: they had no prior value).
    pub changed_values: Vec<NodeId>,
    /// Activity of the mutated netlist over the recorded stream,
    /// bit-identical to a from-scratch [`IncrementalSim::record`] of the
    /// mutated netlist.
    pub activity: Activity,
    /// Re-evaluated packed values, parallel to `cone` (blocks per node).
    updates: Vec<Vec<u64>>,
}

/// Evaluates one gate function over packed words.
#[inline]
fn eval_gate(kind: GateKind, inputs: &[NodeId], get: impl Fn(NodeId) -> u64) -> u64 {
    let fold =
        |unit: u64, f: fn(u64, u64) -> u64| inputs.iter().fold(unit, |acc, &i| f(acc, get(i)));
    match kind {
        GateKind::Buf => get(inputs[0]),
        GateKind::Not => !get(inputs[0]),
        GateKind::And => fold(!0, |a, b| a & b),
        GateKind::Or => fold(0, |a, b| a | b),
        GateKind::Nand => !fold(!0, |a, b| a & b),
        GateKind::Nor => !fold(0, |a, b| a | b),
        GateKind::Xor => fold(0, |a, b| a ^ b),
        GateKind::Xnor => !fold(0, |a, b| a ^ b),
        GateKind::Mux => {
            let s = get(inputs[0]);
            (!s & get(inputs[1])) | (s & get(inputs[2]))
        }
    }
}

/// Exact toggle count of one node's packed value words: transitions
/// between consecutive valid cycles, with the scalar "first vector
/// initializes" rule (cycle 0 toggles nothing) and cross-block carry.
fn toggles_of(words: &[u64], n_vectors: usize) -> u64 {
    let mut total = 0u64;
    let mut carry = words[0] & 1;
    for (b, &w) in words.iter().enumerate() {
        let valid = (n_vectors - b * 64).min(64);
        let mask = if valid == 64 { !0 } else { (1u64 << valid) - 1 };
        total += ((w ^ ((w << 1) | carry)) & mask).count_ones() as u64;
        carry = (w >> (valid - 1)) & 1;
    }
    total
}

impl IncrementalSim {
    /// Records a full time-packed evaluation of `netlist` over `stream`,
    /// caching every node's packed values for later dirty-cone
    /// re-simulation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotCombinational`] for sequential netlists
    /// (time-packed words cannot express cycle-to-cycle state),
    /// [`NetlistError::EmptyStream`] for an empty stream,
    /// [`NetlistError::InputWidthMismatch`] for a bad vector width, or
    /// [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn record(netlist: &Netlist, stream: &[Vec<bool>]) -> Result<Self, NetlistError> {
        if !netlist.dffs().is_empty() {
            return Err(NetlistError::NotCombinational { dffs: netlist.dffs().len() });
        }
        if stream.is_empty() {
            return Err(NetlistError::EmptyStream);
        }
        let width = netlist.input_count();
        for v in stream {
            if v.len() != width {
                return Err(NetlistError::InputWidthMismatch { got: v.len(), expected: width });
            }
        }
        let program = Program::compile(netlist)?;
        let n = netlist.node_count();
        let n_vectors = stream.len();
        let blocks = n_vectors.div_ceil(64);
        let tail_valid = n_vectors - (blocks - 1) * 64;
        let tail_mask = if tail_valid == 64 { !0 } else { (1u64 << tail_valid) - 1 };
        let mut values = vec![0u64; n * blocks];
        // Pack the stimulus into the input nodes' words.
        for (c, v) in stream.iter().enumerate() {
            let (b, bit) = (c / 64, c % 64);
            for (i, &inp) in netlist.inputs().iter().enumerate() {
                values[inp.index() * blocks + b] |= (v[i] as u64) << bit;
            }
        }
        // Evaluate block by block: gates only depend on same-cycle values,
        // so each 64-cycle block settles independently.
        let mut cur = program.init_words::<u64>();
        for b in 0..blocks {
            for &inp in netlist.inputs() {
                cur[inp.index()] = values[inp.index() * blocks + b];
            }
            for ins in &program.instrs {
                cur[ins.out as usize] = program.eval(&cur, ins);
            }
            for node in 0..n {
                values[node * blocks + b] = cur[node];
            }
        }
        let toggles = (0..n)
            .map(|node| toggles_of(&values[node * blocks..(node + 1) * blocks], n_vectors))
            .collect();
        obs::SIM_INC_RECORDS.inc();
        Ok(IncrementalSim { base: netlist.clone(), n_vectors, blocks, tail_mask, values, toggles })
    }

    /// The netlist the cached recording corresponds to (updated by
    /// [`commit`](Self::commit)).
    pub fn base(&self) -> &Netlist {
        &self.base
    }

    /// Number of stimulus vectors in the recorded stream.
    pub fn vectors(&self) -> usize {
        self.n_vectors
    }

    /// The cached packed value words of a node (bit `c` of word `b` is
    /// the settled value on vector `b * 64 + c`; trailing bits of the
    /// final word are zero-padding).
    pub fn value_words(&self, node: NodeId) -> &[u64] {
        &self.values[node.index() * self.blocks..(node.index() + 1) * self.blocks]
    }

    /// Activity of the base netlist over the recorded stream,
    /// bit-identical to a scalar [`crate::ZeroDelaySim`] run.
    pub fn activity(&self) -> Activity {
        Activity { toggles: self.toggles.clone(), cycles: (self.n_vectors - 1) as u64 }
    }

    /// Re-simulates a mutated variant of the base netlist over the
    /// recorded stream by evaluating only the dirty cone: the forward
    /// closure of the `changed` gates plus any appended nodes. Untouched
    /// nodes reuse their cached words verbatim.
    ///
    /// `mutated` must be an *incremental edit* of the base: same primary
    /// inputs, no flip-flops, no removed nodes, and every pre-existing
    /// node that differs from the base declared in `changed`
    /// (out-of-cone nodes are never re-checked — an undeclared edit would
    /// silently desynchronize the cache, so it is rejected up front).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::IncrementalMismatch`] if `mutated` violates
    /// the preconditions above, or
    /// [`NetlistError::CombinationalCycle`] if the rewiring introduced a
    /// cycle.
    pub fn resim(&self, mutated: &Netlist, changed: &[NodeId]) -> Result<ConeResim, NetlistError> {
        let n_base = self.base.node_count();
        let n_new = mutated.node_count();
        let mismatch = |reason: String| NetlistError::IncrementalMismatch { reason };
        if !mutated.dffs().is_empty() {
            return Err(mismatch(format!(
                "mutated netlist contains {} flip-flops",
                mutated.dffs().len()
            )));
        }
        if n_new < n_base {
            return Err(mismatch(format!(
                "mutated netlist has {n_new} nodes, base has {n_base} (nodes were removed)"
            )));
        }
        if mutated.inputs() != self.base.inputs() {
            return Err(mismatch("primary inputs differ from the base netlist".into()));
        }
        let mut in_changed = vec![false; n_new];
        for &c in changed {
            if c.index() >= n_new {
                return Err(mismatch(format!("changed node {c} is out of range")));
            }
            if !matches!(mutated.kind(c), NodeKind::Gate { .. }) {
                return Err(mismatch(format!("changed node {c} is not a combinational gate")));
            }
            in_changed[c.index()] = true;
        }
        for id in self.base.node_ids() {
            if !in_changed[id.index()] && self.base.kind(id) != mutated.kind(id) {
                return Err(mismatch(format!(
                    "node {id} differs from the base but is not in the change set"
                )));
            }
        }
        // Topological order of the mutated netlist: rewiring can invalidate
        // the base instruction order, and this is also where a freshly
        // introduced combinational cycle surfaces.
        let order = mutated.topo_order()?;
        // Dirty cone: changed gates and appended nodes, plus their forward
        // closure through the fanout graph.
        let fanouts = mutated.fanouts();
        let mut in_cone = vec![false; n_new];
        let mut stack: Vec<usize> =
            changed.iter().map(|c| c.index()).chain(n_base..n_new).collect();
        while let Some(u) = stack.pop() {
            if in_cone[u] {
                continue;
            }
            in_cone[u] = true;
            for &f in &fanouts[u] {
                if !in_cone[f.index()] {
                    stack.push(f.index());
                }
            }
        }
        let cone: Vec<NodeId> = order.iter().copied().filter(|id| in_cone[id.index()]).collect();
        let mut update_of = vec![usize::MAX; n_new];
        for (ci, &id) in cone.iter().enumerate() {
            update_of[id.index()] = ci;
        }
        // Re-evaluate the cone block by block against cached fan-in words.
        let blocks = self.blocks;
        let mut updates: Vec<Vec<u64>> = vec![vec![0u64; blocks]; cone.len()];
        for b in 0..blocks {
            for ci in 0..cone.len() {
                let id = cone[ci];
                let w = match mutated.kind(id) {
                    NodeKind::Const(v) => broadcast(*v),
                    NodeKind::Gate { kind, inputs } => eval_gate(*kind, inputs, |f| {
                        let u = update_of[f.index()];
                        if u != usize::MAX {
                            // Cone fan-ins precede ci in topological order.
                            updates[u][b]
                        } else {
                            self.values[f.index() * blocks + b]
                        }
                    }),
                    // Inputs are never in the cone (they have no declared
                    // change and cannot be appended), and flip-flops were
                    // rejected above.
                    other => {
                        return Err(mismatch(format!(
                            "cone node {id} has non-combinational kind {other:?}"
                        )))
                    }
                };
                updates[ci][b] = w;
            }
        }
        // Which cone nodes actually changed value on a valid cycle?
        let mut changed_values = Vec::new();
        for (ci, &id) in cone.iter().enumerate() {
            let differs = if id.index() >= n_base {
                true // newly appended: no prior value to agree with
            } else {
                let old = &self.values[id.index() * blocks..(id.index() + 1) * blocks];
                (0..blocks).any(|b| {
                    let mask = if b + 1 == blocks { self.tail_mask } else { !0 };
                    (old[b] ^ updates[ci][b]) & mask != 0
                })
            };
            if differs {
                changed_values.push(id);
            }
        }
        // Delta activity: untouched nodes keep their recorded toggle
        // counts, cone nodes are re-counted from their new words.
        let mut toggles = vec![0u64; n_new];
        toggles[..n_base].copy_from_slice(&self.toggles);
        for (ci, &id) in cone.iter().enumerate() {
            toggles[id.index()] = toggles_of(&updates[ci], self.n_vectors);
        }
        obs::SIM_INC_RESIMS.inc();
        obs::SIM_INC_CONE_NODES.add(cone.len() as u64);
        obs::SIM_INC_REUSED_NODES.add((n_new - cone.len()) as u64);
        Ok(ConeResim {
            cone,
            changed_values,
            activity: Activity { toggles, cycles: (self.n_vectors - 1) as u64 },
            updates,
        })
    }

    /// Folds an accepted mutation back into the cache in `O(cone)`:
    /// `mutated` becomes the new base and the re-evaluated words replace
    /// the stale ones, so the next [`resim`](Self::resim) builds on it.
    ///
    /// `resim` must be the result of [`Self::resim`] for exactly this
    /// `mutated` netlist.
    pub fn commit(&mut self, mutated: &Netlist, resim: ConeResim) {
        let n_new = mutated.node_count();
        debug_assert_eq!(resim.activity.toggles.len(), n_new, "resim is for a different netlist");
        let blocks = self.blocks;
        let mut values = std::mem::take(&mut self.values);
        values.resize(n_new * blocks, 0);
        for (ci, &id) in resim.cone.iter().enumerate() {
            values[id.index() * blocks..(id.index() + 1) * blocks]
                .copy_from_slice(&resim.updates[ci]);
        }
        self.values = values;
        self.toggles = resim.activity.toggles;
        self.base = mutated.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::sim::ZeroDelaySim;
    use crate::{gen, streams};

    fn adder(bits: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", bits);
        let b = nl.input_bus("b", bits);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        nl
    }

    fn stream_for(nl: &Netlist, seed: u64, cycles: usize) -> Vec<Vec<bool>> {
        streams::random(seed, nl.input_count()).take(cycles).collect()
    }

    #[test]
    fn recording_matches_the_scalar_oracle() {
        let nl = adder(6);
        let stream = stream_for(&nl, 11, 130);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        let mut scalar = ZeroDelaySim::new(&nl).unwrap();
        let act = scalar.run(stream.iter().cloned()).unwrap();
        assert_eq!(inc.activity(), act);
    }

    #[test]
    fn resim_matches_full_rerecord_after_a_rewrite() {
        let nl = adder(5);
        let stream = stream_for(&nl, 3, 200);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        // Rewire the first 2-input XOR into an XNOR (a real functional
        // change) and check the dirty-cone result against a full rerecord.
        let mut mutated = nl.clone();
        let target = mutated
            .node_ids()
            .find(|&id| {
                matches!(mutated.kind(id),
                    NodeKind::Gate { kind: GateKind::Xor, inputs } if inputs.len() == 2)
            })
            .unwrap();
        let NodeKind::Gate { inputs, .. } = mutated.kind(target).clone() else { unreachable!() };
        mutated.replace_gate(target, GateKind::Xnor, inputs).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();
        let full = IncrementalSim::record(&mutated, &stream).unwrap();
        assert_eq!(resim.activity, full.activity());
        // Cone covers everything that changed.
        for &id in &resim.changed_values {
            assert!(resim.cone.contains(&id));
        }
        assert!(resim.changed_values.contains(&target));
        // Untouched siblings were not re-evaluated.
        assert!(resim.cone.len() < mutated.node_count());
    }

    #[test]
    fn commit_chains_mutations() {
        let nl = adder(4);
        let lib = Library::default();
        let stream = stream_for(&nl, 9, 150);
        let mut inc = IncrementalSim::record(&nl, &stream).unwrap();
        let mut current = nl.clone();
        // Two successive mutations, committing each; the cache must track.
        for flip in 0..2usize {
            let target = current
                .node_ids()
                .filter(|&id| {
                    matches!(current.kind(id),
                        NodeKind::Gate { kind: GateKind::And, inputs } if inputs.len() == 2)
                })
                .nth(flip)
                .unwrap();
            let NodeKind::Gate { inputs, .. } = current.kind(target).clone() else {
                unreachable!()
            };
            let mut mutated = current.clone();
            mutated.replace_gate(target, GateKind::Nand, inputs).unwrap();
            let resim = inc.resim(&mutated, &[target]).unwrap();
            inc.commit(&mutated, resim);
            current = mutated;
        }
        let full = IncrementalSim::record(&current, &stream).unwrap();
        assert_eq!(inc.activity(), full.activity());
        assert_eq!(
            inc.activity().power(&current, &lib).total_power_uw().to_bits(),
            full.activity().power(&current, &lib).total_power_uw().to_bits()
        );
    }

    #[test]
    fn appended_logic_joins_the_cone() {
        let nl = adder(4);
        let stream = stream_for(&nl, 21, 90);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        // Append an inverter chain and repoint an existing gate at it.
        let mut mutated = nl.clone();
        let a0 = mutated.inputs()[0];
        let inv = mutated.not(a0);
        let target = mutated
            .node_ids()
            .find(|&id| {
                matches!(mutated.kind(id),
                    NodeKind::Gate { kind: GateKind::Or, inputs } if inputs.len() == 2)
            })
            .unwrap();
        let NodeKind::Gate { inputs, .. } = mutated.kind(target).clone() else { unreachable!() };
        mutated.replace_gate(target, GateKind::Or, vec![inputs[0], inv]).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();
        assert!(resim.cone.contains(&inv));
        let full = IncrementalSim::record(&mutated, &stream).unwrap();
        assert_eq!(resim.activity, full.activity());
    }

    #[test]
    fn undeclared_edits_and_bad_bases_are_rejected() {
        let nl = adder(4);
        let stream = stream_for(&nl, 5, 70);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        // Undeclared edit.
        let mut sneaky = nl.clone();
        let target = sneaky
            .node_ids()
            .find(|&id| {
                matches!(sneaky.kind(id),
                    NodeKind::Gate { kind: GateKind::And, inputs } if inputs.len() == 2)
            })
            .unwrap();
        let NodeKind::Gate { inputs, .. } = sneaky.kind(target).clone() else { unreachable!() };
        sneaky.replace_gate(target, GateKind::Nand, inputs).unwrap();
        assert!(matches!(inc.resim(&sneaky, &[]), Err(NetlistError::IncrementalMismatch { .. })));
        // Different inputs.
        let mut extra_input = nl.clone();
        extra_input.input("z");
        assert!(matches!(
            inc.resim(&extra_input, &[]),
            Err(NetlistError::IncrementalMismatch { .. })
        ));
        // Sequential base is rejected outright.
        let mut seq = Netlist::new();
        let x = seq.input("x");
        let q = seq.dff(x, false);
        seq.set_output("q", q);
        assert!(matches!(
            IncrementalSim::record(&seq, &[vec![false]]),
            Err(NetlistError::NotCombinational { .. })
        ));
        // A rewiring that introduces a cycle surfaces as such.
        let mut cyclic = nl.clone();
        let NodeKind::Gate { inputs, kind } = cyclic.kind(target).clone() else { unreachable!() };
        let downstream = NodeId(cyclic.node_count() as u32 - 1);
        cyclic.replace_gate(target, kind, vec![inputs[0], downstream]).unwrap();
        assert!(matches!(
            inc.resim(&cyclic, &[target]),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }
}
