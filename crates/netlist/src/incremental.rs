//! Dirty-cone incremental re-simulation for optimization loops.
//!
//! An optimize pass that rewrites `k` gates of an `n`-gate netlist does
//! not need a full recompile-and-replay to re-score the candidate: only
//! the **output cone** of the touched gates (their forward closure through
//! the fanout graph) can change value, and every other node's packed
//! stimulus response is already known. [`IncrementalSim`] records one
//! full time-packed evaluation of a netlist over a stimulus stream
//! (64 cycles per `u64` word, the [`crate::BlockSim64`] packing),
//! caches every node's words, and then answers *"what does this mutated
//! netlist do on the same stream?"* by re-evaluating just the dirty cone
//! against the cached fan-in words — no instruction-stream recompile, no
//! replay of untouched nodes.
//!
//! Sequential circuits are supported through **per-cycle register-boundary
//! snapshots**: the recording stores every flip-flop output's settled
//! per-cycle trajectory alongside the combinational nodes, so a mutation
//! whose cone stays clear of the registers replays packed against the
//! cached boundary words exactly like the combinational case, and a
//! mutation that dirties a register (its D input changed, or a register
//! was appended) falls back to a per-cycle replay of just the cone with
//! the register feedback threaded cycle to cycle — still proportional to
//! the edit, never to the circuit.
//!
//! The result of a [`resim`](IncrementalSim::resim) is a [`ConeResim`]:
//! the cone that was re-evaluated, the subset of nodes whose values
//! actually changed, and a full [`Activity`] for the mutated netlist that
//! is **bit-identical** to a from-scratch recording (the in-tree property
//! battery locks this in, together with the cone-superset invariant).
//! Accepted candidates are folded back with
//! [`commit`](IncrementalSim::commit), which updates the cache in
//! `O(cone)` and re-arms the simulator for the next mutation. Candidate
//! searches that score thousands of rejected mutations should use
//! [`resim_into`](IncrementalSim::resim_into) with a reusable
//! [`ResimScratch`] + [`ConeResim`] pair, which makes rejection
//! allocation-free once the buffers have warmed up.
//!
//! Mutations are expressed with [`crate::NetlistEditor`] (in-place
//! rewiring with an undo journal, node ids stable) or directly with
//! [`crate::Netlist::replace_gate`] plus append-only construction;
//! `optimize::rewrite` and the guard/precompute/clock-gating searches in
//! the optimize crate are the canonical consumers, and the PR 5
//! attribution profiler consumes the delta activity through
//! [`crate::attribute_delta`].

use hlpower_obs::metrics as obs;

use crate::error::NetlistError;
use crate::library::GateKind;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::sim::{Activity, ZeroDelaySim};
use crate::sim64::{broadcast, Program};

/// A recorded time-packed simulation of a netlist over a fixed stimulus
/// stream, supporting dirty-cone re-simulation of mutated variants. See
/// the `incremental` module docs for the workflow.
#[derive(Debug, Clone)]
pub struct IncrementalSim {
    /// The netlist the cached values correspond to (owned so mutated
    /// variants can be derived from it freely).
    base: Netlist,
    /// Number of stimulus vectors recorded.
    n_vectors: usize,
    /// `u64` words per node (`n_vectors.div_ceil(64)`).
    blocks: usize,
    /// Valid-bit mask of the final block.
    tail_mask: u64,
    /// Cached packed values, `node * blocks + b`; bit `c` of block `b` is
    /// the node's settled value on vector `b * 64 + c`. For flip-flops
    /// this is the register-boundary snapshot: the Q trajectory.
    values: Vec<u64>,
    /// Exact per-node toggle counts over the recorded stream.
    toggles: Vec<u64>,
}

/// The outcome of one dirty-cone re-simulation
/// ([`IncrementalSim::resim`]): which nodes were re-evaluated, which
/// actually changed, and the mutated netlist's full activity.
#[derive(Debug, Clone, Default)]
pub struct ConeResim {
    /// Every node that was re-evaluated (the mutation seeds, all appended
    /// nodes, and their forward closure), in evaluation (topological)
    /// order. Guaranteed to be a superset of
    /// [`changed_values`](Self::changed_values).
    pub cone: Vec<NodeId>,
    /// The cone nodes whose packed values differ from the cached base
    /// recording (appended nodes always count: they had no prior value).
    pub changed_values: Vec<NodeId>,
    /// Activity of the mutated netlist over the recorded stream,
    /// bit-identical to a from-scratch [`IncrementalSim::record`] of the
    /// mutated netlist.
    pub activity: Activity,
    /// Re-evaluated packed values, cone-index-major (`blocks` words per
    /// cone node).
    updates: Vec<u64>,
    /// Words per node, copied from the recording for indexing `updates`.
    blocks: usize,
}

impl ConeResim {
    /// Packed `u64` words re-evaluated by this resim (`cone × blocks`) —
    /// the work metric the `opt_search` observability section reports.
    pub fn words_replayed(&self) -> u64 {
        (self.cone.len() * self.blocks) as u64
    }
}

/// Reusable working memory for [`IncrementalSim::resim_into`]. One
/// scratch serves any number of candidates (and any number of netlists);
/// every internal buffer is cleared and refilled in place, so a candidate
/// search allocates nothing once the buffers have grown to the netlist's
/// size — rejected candidates leave no garbage behind.
#[derive(Debug, Clone, Default)]
pub struct ResimScratch {
    /// Membership flags for the declared change set.
    in_changed: Vec<bool>,
    /// Membership flags for the dirty cone.
    in_cone: Vec<bool>,
    /// DFS stack for the forward closure (node indices).
    stack: Vec<u32>,
    /// Node index -> cone index, `usize::MAX` outside the cone.
    update_of: Vec<usize>,
    /// CSR fanout graph of the mutated netlist (all reader edges,
    /// including flip-flop D pins).
    fan_start: Vec<u32>,
    fan: Vec<u32>,
    /// Scatter cursor for the CSR build.
    cursor: Vec<u32>,
    /// Kahn worklist state for the scratch topological sort.
    indeg: Vec<u32>,
    topo_stack: Vec<u32>,
    order: Vec<NodeId>,
    /// Per-cycle replay state for cones that dirty a register boundary.
    cur: Vec<bool>,
    dff_next: Vec<bool>,
}

/// Clears `v` and refills it with `n` copies of `fill`, reusing capacity.
pub(crate) fn refill<T: Clone>(v: &mut Vec<T>, n: usize, fill: T) {
    v.clear();
    v.resize(n, fill);
}

/// Evaluates one gate function over packed words.
#[inline]
fn eval_gate(kind: GateKind, inputs: &[NodeId], get: impl Fn(NodeId) -> u64) -> u64 {
    let fold =
        |unit: u64, f: fn(u64, u64) -> u64| inputs.iter().fold(unit, |acc, &i| f(acc, get(i)));
    match kind {
        GateKind::Buf => get(inputs[0]),
        GateKind::Not => !get(inputs[0]),
        GateKind::And => fold(!0, |a, b| a & b),
        GateKind::Or => fold(0, |a, b| a | b),
        GateKind::Nand => !fold(!0, |a, b| a & b),
        GateKind::Nor => !fold(0, |a, b| a | b),
        GateKind::Xor => fold(0, |a, b| a ^ b),
        GateKind::Xnor => !fold(0, |a, b| a ^ b),
        GateKind::Mux => {
            let s = get(inputs[0]);
            (!s & get(inputs[1])) | (s & get(inputs[2]))
        }
    }
}

/// Scalar (single-cycle) twin of [`eval_gate`], for the register-dirty
/// replay path. Same fold structure, so the two paths agree bit for bit.
#[inline]
pub(crate) fn eval_gate_bool(
    kind: GateKind,
    inputs: &[NodeId],
    get: impl Fn(NodeId) -> bool,
) -> bool {
    let fold =
        |unit: bool, f: fn(bool, bool) -> bool| inputs.iter().fold(unit, |acc, &i| f(acc, get(i)));
    match kind {
        GateKind::Buf => get(inputs[0]),
        GateKind::Not => !get(inputs[0]),
        GateKind::And => fold(true, |a, b| a & b),
        GateKind::Or => fold(false, |a, b| a | b),
        GateKind::Nand => !fold(true, |a, b| a & b),
        GateKind::Nor => !fold(false, |a, b| a | b),
        GateKind::Xor => fold(false, |a, b| a ^ b),
        GateKind::Xnor => !fold(false, |a, b| a ^ b),
        GateKind::Mux => {
            if get(inputs[0]) {
                get(inputs[2])
            } else {
                get(inputs[1])
            }
        }
    }
}

/// Exact toggle count of one node's packed value words: transitions
/// between consecutive valid cycles, with the scalar "first vector
/// initializes" rule (cycle 0 toggles nothing) and cross-block carry.
fn toggles_of(words: &[u64], n_vectors: usize) -> u64 {
    let mut total = 0u64;
    let mut carry = words[0] & 1;
    for (b, &w) in words.iter().enumerate() {
        let valid = (n_vectors - b * 64).min(64);
        let mask = if valid == 64 { !0 } else { (1u64 << valid) - 1 };
        total += ((w ^ ((w << 1) | carry)) & mask).count_ones() as u64;
        carry = (w >> (valid - 1)) & 1;
    }
    total
}

/// Builds the CSR fanout graph of `netlist` (gate input pins and
/// flip-flop D pins) into the scratch buffers.
pub(crate) fn build_fanout_csr(
    netlist: &Netlist,
    fan_start: &mut Vec<u32>,
    fan: &mut Vec<u32>,
    cursor: &mut Vec<u32>,
) {
    let n = netlist.node_count();
    refill(fan_start, n + 1, 0u32);
    // Count readers per node, prefix-sum, then scatter.
    for id in netlist.node_ids() {
        match netlist.kind(id) {
            NodeKind::Gate { inputs, .. } => {
                for f in inputs {
                    fan_start[f.index() + 1] += 1;
                }
            }
            NodeKind::Dff { d, .. } => fan_start[d.index() + 1] += 1,
            _ => {}
        }
    }
    for i in 0..n {
        fan_start[i + 1] += fan_start[i];
    }
    refill(fan, fan_start[n] as usize, 0u32);
    cursor.clear();
    cursor.extend_from_slice(&fan_start[..n]);
    for id in netlist.node_ids() {
        match netlist.kind(id) {
            NodeKind::Gate { inputs, .. } => {
                for f in inputs {
                    let c = &mut cursor[f.index()];
                    fan[*c as usize] = id.index() as u32;
                    *c += 1;
                }
            }
            NodeKind::Dff { d, .. } => {
                let c = &mut cursor[d.index()];
                fan[*c as usize] = id.index() as u32;
                *c += 1;
            }
            _ => {}
        }
    }
}

/// Scratch-buffer topological sort over the combinational part of
/// `netlist`, mirroring [`Netlist::topo_order`] (non-gates first in index
/// order, then gates; flip-flops legally break cycles).
pub(crate) fn topo_into(
    netlist: &Netlist,
    fan_start: &[u32],
    fan: &[u32],
    indeg: &mut Vec<u32>,
    stack: &mut Vec<u32>,
    order: &mut Vec<NodeId>,
) -> Result<(), NetlistError> {
    let n = netlist.node_count();
    refill(indeg, n, 0u32);
    stack.clear();
    order.clear();
    let mut gate_total = 0usize;
    for id in netlist.node_ids() {
        match netlist.kind(id) {
            NodeKind::Gate { inputs, .. } => {
                gate_total += 1;
                let deg = inputs
                    .iter()
                    .filter(|x| matches!(netlist.kind(**x), NodeKind::Gate { .. }))
                    .count() as u32;
                indeg[id.index()] = deg;
                if deg == 0 {
                    stack.push(id.index() as u32);
                }
            }
            _ => order.push(id),
        }
    }
    let mut emitted = 0usize;
    while let Some(u) = stack.pop() {
        order.push(NodeId(u));
        emitted += 1;
        for k in fan_start[u as usize] as usize..fan_start[u as usize + 1] as usize {
            let f = fan[k] as usize;
            if matches!(netlist.kind(NodeId(f as u32)), NodeKind::Gate { .. }) {
                indeg[f] -= 1;
                if indeg[f] == 0 {
                    stack.push(f as u32);
                }
            }
        }
    }
    if emitted != gate_total {
        let node = netlist
            .node_ids()
            .find(|id| matches!(netlist.kind(*id), NodeKind::Gate { .. }) && indeg[id.index()] > 0)
            .expect("a blocked gate must exist when the order is incomplete");
        return Err(NetlistError::CombinationalCycle { node });
    }
    Ok(())
}

impl IncrementalSim {
    /// Records a full time-packed evaluation of `netlist` over `stream`,
    /// caching every node's packed values for later dirty-cone
    /// re-simulation. Combinational netlists evaluate block-parallel on
    /// the compiled instruction stream; sequential netlists replay the
    /// scalar simulator once and pack the per-cycle register-boundary
    /// snapshots, so either way the cache is bit-identical to a scalar
    /// [`ZeroDelaySim`] run.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::EmptyStream`] for an empty stream,
    /// [`NetlistError::InputWidthMismatch`] for a bad vector width, or
    /// [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn record(netlist: &Netlist, stream: &[Vec<bool>]) -> Result<Self, NetlistError> {
        if stream.is_empty() {
            return Err(NetlistError::EmptyStream);
        }
        let width = netlist.input_count();
        for v in stream {
            if v.len() != width {
                return Err(NetlistError::InputWidthMismatch { got: v.len(), expected: width });
            }
        }
        let n = netlist.node_count();
        let n_vectors = stream.len();
        let blocks = n_vectors.div_ceil(64);
        let tail_valid = n_vectors - (blocks - 1) * 64;
        let tail_mask = if tail_valid == 64 { !0 } else { (1u64 << tail_valid) - 1 };
        let mut values = vec![0u64; n * blocks];
        if netlist.dffs().is_empty() {
            let program = Program::compile(netlist)?;
            // Pack the stimulus into the input nodes' words.
            for (c, v) in stream.iter().enumerate() {
                let (b, bit) = (c / 64, c % 64);
                for (i, &inp) in netlist.inputs().iter().enumerate() {
                    values[inp.index() * blocks + b] |= (v[i] as u64) << bit;
                }
            }
            // Evaluate block by block: gates only depend on same-cycle
            // values, so each 64-cycle block settles independently.
            let mut cur = program.init_words::<u64>();
            for b in 0..blocks {
                for &inp in netlist.inputs() {
                    cur[inp.index()] = values[inp.index() * blocks + b];
                }
                for ins in &program.instrs {
                    cur[ins.out as usize] = program.eval(&cur, ins);
                }
                for node in 0..n {
                    values[node * blocks + b] = cur[node];
                }
            }
        } else {
            // Sequential: one scalar pass, packing every node's settled
            // per-cycle value — the flip-flop rows are the register-
            // boundary snapshots that later resims read across.
            let mut sim = ZeroDelaySim::new(netlist)?;
            for (c, v) in stream.iter().enumerate() {
                sim.step(v)?;
                let (b, bit) = (c / 64, c % 64);
                for (node, &val) in sim.values_raw().iter().enumerate() {
                    values[node * blocks + b] |= (val as u64) << bit;
                }
            }
        }
        let toggles = (0..n)
            .map(|node| toggles_of(&values[node * blocks..(node + 1) * blocks], n_vectors))
            .collect();
        obs::SIM_INC_RECORDS.inc();
        Ok(IncrementalSim { base: netlist.clone(), n_vectors, blocks, tail_mask, values, toggles })
    }

    /// The netlist the cached recording corresponds to (updated by
    /// [`commit`](Self::commit)).
    pub fn base(&self) -> &Netlist {
        &self.base
    }

    /// Number of stimulus vectors in the recorded stream.
    pub fn vectors(&self) -> usize {
        self.n_vectors
    }

    /// The cached packed value words of a node (bit `c` of word `b` is
    /// the settled value on vector `b * 64 + c`; trailing bits of the
    /// final word are zero-padding).
    pub fn value_words(&self, node: NodeId) -> &[u64] {
        &self.values[node.index() * self.blocks..(node.index() + 1) * self.blocks]
    }

    /// A node's settled value on one recorded cycle.
    pub fn value_at(&self, node: NodeId, cycle: usize) -> bool {
        (self.values[node.index() * self.blocks + cycle / 64] >> (cycle % 64)) & 1 != 0
    }

    /// Activity of the base netlist over the recorded stream,
    /// bit-identical to a scalar [`crate::ZeroDelaySim`] run.
    pub fn activity(&self) -> Activity {
        Activity { toggles: self.toggles.clone(), cycles: (self.n_vectors - 1) as u64 }
    }

    /// Re-simulates a mutated variant of the base netlist over the
    /// recorded stream, allocating a fresh [`ConeResim`]. Candidate
    /// searches should prefer [`resim_into`](Self::resim_into), which
    /// reuses buffers across candidates.
    ///
    /// # Errors
    ///
    /// As [`resim_into`](Self::resim_into).
    pub fn resim(&self, mutated: &Netlist, changed: &[NodeId]) -> Result<ConeResim, NetlistError> {
        let mut scratch = ResimScratch::default();
        let mut out = ConeResim::default();
        self.resim_into(mutated, changed, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Re-simulates a mutated variant of the base netlist over the
    /// recorded stream by evaluating only the dirty cone: the forward
    /// closure of the `changed` gates plus any appended nodes (through
    /// register boundaries — a flip-flop whose D input is dirty dirties
    /// its own Q trajectory and everything reading it). Untouched nodes
    /// reuse their cached words verbatim. Results land in `out`, working
    /// memory in `scratch`; both are reused across calls, so a rejected
    /// candidate costs no allocation once the buffers are warm.
    ///
    /// `mutated` must be an *incremental edit* of the base: same primary
    /// inputs, same pre-existing flip-flops, no removed nodes, and every
    /// pre-existing node that differs from the base declared in `changed`
    /// (out-of-cone nodes are never re-checked — an undeclared edit would
    /// silently desynchronize the cache, so it is rejected up front).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::IncrementalMismatch`] if `mutated` violates
    /// the preconditions above, or
    /// [`NetlistError::CombinationalCycle`] if the rewiring introduced a
    /// cycle.
    pub fn resim_into(
        &self,
        mutated: &Netlist,
        changed: &[NodeId],
        scratch: &mut ResimScratch,
        out: &mut ConeResim,
    ) -> Result<(), NetlistError> {
        let n_base = self.base.node_count();
        let n_new = mutated.node_count();
        let mismatch = |reason: String| NetlistError::IncrementalMismatch { reason };
        if n_new < n_base {
            return Err(mismatch(format!(
                "mutated netlist has {n_new} nodes, base has {n_base} (nodes were removed)"
            )));
        }
        if mutated.inputs() != self.base.inputs() {
            return Err(mismatch("primary inputs differ from the base netlist".into()));
        }
        let base_dffs = self.base.dffs().len();
        if mutated.dffs().len() < base_dffs || mutated.dffs()[..base_dffs] != *self.base.dffs() {
            return Err(mismatch("pre-existing flip-flops differ from the base netlist".into()));
        }
        refill(&mut scratch.in_changed, n_new, false);
        for &c in changed {
            if c.index() >= n_new {
                return Err(mismatch(format!("changed node {c} is out of range")));
            }
            if !matches!(mutated.kind(c), NodeKind::Gate { .. }) {
                return Err(mismatch(format!("changed node {c} is not a combinational gate")));
            }
            scratch.in_changed[c.index()] = true;
        }
        for id in self.base.node_ids() {
            if !scratch.in_changed[id.index()] && self.base.kind(id) != mutated.kind(id) {
                return Err(mismatch(format!(
                    "node {id} differs from the base but is not in the change set"
                )));
            }
        }
        // Fanout CSR + topological order of the mutated netlist: rewiring
        // can invalidate the base instruction order, and this is also
        // where a freshly introduced combinational cycle surfaces.
        build_fanout_csr(mutated, &mut scratch.fan_start, &mut scratch.fan, &mut scratch.cursor);
        topo_into(
            mutated,
            &scratch.fan_start,
            &scratch.fan,
            &mut scratch.indeg,
            &mut scratch.topo_stack,
            &mut scratch.order,
        )?;
        // Dirty cone: changed gates and appended nodes, plus their forward
        // closure through the fanout graph — crossing register boundaries:
        // a dirty D input dirties the flip-flop's Q row and its readers.
        refill(&mut scratch.in_cone, n_new, false);
        scratch.stack.clear();
        scratch.stack.extend(changed.iter().map(|c| c.index() as u32));
        scratch.stack.extend(n_base as u32..n_new as u32);
        while let Some(u) = scratch.stack.pop() {
            let u = u as usize;
            if scratch.in_cone[u] {
                continue;
            }
            scratch.in_cone[u] = true;
            for k in scratch.fan_start[u] as usize..scratch.fan_start[u + 1] as usize {
                let f = scratch.fan[k] as usize;
                if !scratch.in_cone[f] {
                    scratch.stack.push(f as u32);
                }
            }
        }
        out.cone.clear();
        out.cone.extend(scratch.order.iter().copied().filter(|id| scratch.in_cone[id.index()]));
        let cone = &out.cone;
        refill(&mut scratch.update_of, n_new, usize::MAX);
        for (ci, &id) in cone.iter().enumerate() {
            scratch.update_of[id.index()] = ci;
        }
        let blocks = self.blocks;
        out.blocks = blocks;
        refill(&mut out.updates, cone.len() * blocks, 0u64);
        let register_dirty =
            cone.iter().any(|&id| matches!(mutated.kind(id), NodeKind::Dff { .. }));
        if !register_dirty {
            // Packed replay: the cone reads only cached words (including
            // register-boundary snapshots) and same-cycle cone values.
            let (updates, update_of) = (&mut out.updates, &scratch.update_of);
            for b in 0..blocks {
                for ci in 0..cone.len() {
                    let id = cone[ci];
                    let w = match mutated.kind(id) {
                        NodeKind::Const(v) => broadcast(*v),
                        NodeKind::Gate { kind, inputs } => eval_gate(*kind, inputs, |f| {
                            let u = update_of[f.index()];
                            if u != usize::MAX {
                                // Cone fan-ins precede ci in topo order.
                                updates[u * blocks + b]
                            } else {
                                self.values[f.index() * blocks + b]
                            }
                        }),
                        // Inputs are never in the cone (they have no
                        // declared change and cannot be appended), and a
                        // register in the cone takes the sequential path.
                        other => {
                            return Err(mismatch(format!(
                                "cone node {id} has non-combinational kind {other:?}"
                            )))
                        }
                    };
                    updates[ci * blocks + b] = w;
                }
            }
        } else {
            // A register is dirty: its Q trajectory shifts cycle by cycle,
            // so the cone replays per cycle with the flip-flop feedback
            // threaded through `dff_next` — the cached rows of everything
            // outside the cone are still read verbatim (the snapshots make
            // any boundary value an O(1) bit extraction).
            self.resim_sequential_cone(mutated, cone, scratch, &mut out.updates)?;
        }
        // Which cone nodes actually changed value on a valid cycle?
        out.changed_values.clear();
        for (ci, &id) in cone.iter().enumerate() {
            let differs = if id.index() >= n_base {
                true // newly appended: no prior value to agree with
            } else {
                let old = &self.values[id.index() * blocks..(id.index() + 1) * blocks];
                (0..blocks).any(|b| {
                    let mask = if b + 1 == blocks { self.tail_mask } else { !0 };
                    (old[b] ^ out.updates[ci * blocks + b]) & mask != 0
                })
            };
            if differs {
                out.changed_values.push(id);
            }
        }
        // Delta activity: untouched nodes keep their recorded toggle
        // counts, cone nodes are re-counted from their new words.
        refill(&mut out.activity.toggles, n_new, 0u64);
        out.activity.toggles[..n_base].copy_from_slice(&self.toggles);
        out.activity.cycles = (self.n_vectors - 1) as u64;
        for (ci, &id) in cone.iter().enumerate() {
            out.activity.toggles[id.index()] =
                toggles_of(&out.updates[ci * blocks..(ci + 1) * blocks], self.n_vectors);
        }
        obs::SIM_INC_RESIMS.inc();
        obs::SIM_INC_CONE_NODES.add(cone.len() as u64);
        obs::SIM_INC_REUSED_NODES.add((n_new - cone.len()) as u64);
        Ok(())
    }

    /// Per-cycle replay of a register-dirty cone: flip-flop outputs in
    /// the cone present their previously sampled value at the top of each
    /// cycle, gates settle in topological order, and D inputs sample at
    /// the bottom — exactly the scalar [`ZeroDelaySim`] schedule, but
    /// only over the cone.
    fn resim_sequential_cone(
        &self,
        mutated: &Netlist,
        cone: &[NodeId],
        scratch: &mut ResimScratch,
        updates: &mut [u64],
    ) -> Result<(), NetlistError> {
        let mismatch = |reason: String| NetlistError::IncrementalMismatch { reason };
        let blocks = self.blocks;
        refill(&mut scratch.cur, cone.len(), false);
        refill(&mut scratch.dff_next, cone.len(), false);
        // Power-on values for cone registers.
        for (ci, &id) in cone.iter().enumerate() {
            if let NodeKind::Dff { init, .. } = mutated.kind(id) {
                scratch.dff_next[ci] = *init;
            }
        }
        for c in 0..self.n_vectors {
            let (b, bit) = (c / 64, c % 64);
            // Settle the cone for this cycle. `cone` is in topological
            // order with non-gates (registers, constants) first, matching
            // the scalar simulator's present-then-settle schedule.
            for ci in 0..cone.len() {
                let id = cone[ci];
                let v = match mutated.kind(id) {
                    NodeKind::Dff { .. } => scratch.dff_next[ci],
                    NodeKind::Const(v) => *v,
                    NodeKind::Gate { kind, inputs } => {
                        let (cur, update_of) = (&scratch.cur, &scratch.update_of);
                        eval_gate_bool(*kind, inputs, |f| {
                            let u = update_of[f.index()];
                            if u != usize::MAX {
                                cur[u]
                            } else {
                                (self.values[f.index() * blocks + b] >> bit) & 1 != 0
                            }
                        })
                    }
                    other => {
                        return Err(mismatch(format!(
                            "cone node {id} has non-combinational kind {other:?}"
                        )))
                    }
                };
                scratch.cur[ci] = v;
                updates[ci * blocks + b] |= (v as u64) << bit;
            }
            // Sample D inputs for the next cycle.
            for (ci, &id) in cone.iter().enumerate() {
                if let NodeKind::Dff { d, .. } = mutated.kind(id) {
                    let u = scratch.update_of[d.index()];
                    scratch.dff_next[ci] = if u != usize::MAX {
                        scratch.cur[u]
                    } else {
                        (self.values[d.index() * blocks + b] >> bit) & 1 != 0
                    };
                }
            }
        }
        Ok(())
    }

    /// Folds an accepted mutation back into the cache in `O(cone)`:
    /// `mutated` becomes the new base and the re-evaluated words replace
    /// the stale ones, so the next [`resim`](Self::resim) builds on it.
    /// The [`ConeResim`] is borrowed, so a search loop can keep reusing
    /// the same output buffer afterwards.
    ///
    /// `resim` must be the result of [`Self::resim`] /
    /// [`Self::resim_into`] for exactly this `mutated` netlist.
    pub fn commit(&mut self, mutated: &Netlist, resim: &ConeResim) {
        let n_new = mutated.node_count();
        debug_assert_eq!(resim.activity.toggles.len(), n_new, "resim is for a different netlist");
        let blocks = self.blocks;
        let mut values = std::mem::take(&mut self.values);
        values.resize(n_new * blocks, 0);
        for (ci, &id) in resim.cone.iter().enumerate() {
            values[id.index() * blocks..(id.index() + 1) * blocks]
                .copy_from_slice(&resim.updates[ci * blocks..(ci + 1) * blocks]);
        }
        self.values = values;
        self.toggles.clear();
        self.toggles.extend_from_slice(&resim.activity.toggles);
        self.base = mutated.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::sim::ZeroDelaySim;
    use crate::{gen, streams};

    fn adder(bits: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", bits);
        let b = nl.input_bus("b", bits);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        nl
    }

    /// A registered adder: inputs land in flip-flops, the sum is computed
    /// over the registered values, and an accumulator bit feeds back.
    fn registered_adder(bits: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", bits);
        let b = nl.input_bus("b", bits);
        let aq = nl.dff_bus(&a);
        let bq = nl.dff_bus(&b);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &aq, &bq, c0);
        let sq = nl.dff_bus(&s);
        nl.output_bus("s", &sq);
        nl
    }

    fn stream_for(nl: &Netlist, seed: u64, cycles: usize) -> Vec<Vec<bool>> {
        streams::random(seed, nl.input_count()).take(cycles).collect()
    }

    #[test]
    fn recording_matches_the_scalar_oracle() {
        let nl = adder(6);
        let stream = stream_for(&nl, 11, 130);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        let mut scalar = ZeroDelaySim::new(&nl).unwrap();
        let act = scalar.run(stream.iter().cloned()).unwrap();
        assert_eq!(inc.activity(), act);
    }

    #[test]
    fn sequential_recording_matches_the_scalar_oracle() {
        let nl = registered_adder(5);
        let stream = stream_for(&nl, 17, 170);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        let mut scalar = ZeroDelaySim::new(&nl).unwrap();
        let act = scalar.run(stream.iter().cloned()).unwrap();
        assert_eq!(inc.activity(), act);
        // Register-boundary snapshots: every flip-flop's Q trajectory is
        // cached like any other node.
        for &q in nl.dffs() {
            assert_eq!(inc.value_words(q).len(), stream.len().div_ceil(64));
        }
    }

    #[test]
    fn resim_matches_full_rerecord_after_a_rewrite() {
        let nl = adder(5);
        let stream = stream_for(&nl, 3, 200);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        // Rewire the first 2-input XOR into an XNOR (a real functional
        // change) and check the dirty-cone result against a full rerecord.
        let mut mutated = nl.clone();
        let target = mutated
            .node_ids()
            .find(|&id| {
                matches!(mutated.kind(id),
                    NodeKind::Gate { kind: GateKind::Xor, inputs } if inputs.len() == 2)
            })
            .unwrap();
        let NodeKind::Gate { inputs, .. } = mutated.kind(target).clone() else { unreachable!() };
        mutated.replace_gate(target, GateKind::Xnor, inputs).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();
        let full = IncrementalSim::record(&mutated, &stream).unwrap();
        assert_eq!(resim.activity, full.activity());
        // Cone covers everything that changed.
        for &id in &resim.changed_values {
            assert!(resim.cone.contains(&id));
        }
        assert!(resim.changed_values.contains(&target));
        // Untouched siblings were not re-evaluated.
        assert!(resim.cone.len() < mutated.node_count());
    }

    #[test]
    fn combinational_cone_in_a_sequential_netlist_replays_packed() {
        // Append logic reading a register boundary: the cone stays clear
        // of the registers, so the packed path must serve it against the
        // cached Q snapshots.
        let nl = registered_adder(4);
        let stream = stream_for(&nl, 23, 150);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        let mut mutated = nl.clone();
        let q0 = nl.dffs()[0];
        let q1 = nl.dffs()[1];
        let watch = mutated.xor([q0, q1]);
        let _watch2 = mutated.not(watch);
        let resim = inc.resim(&mutated, &[]).unwrap();
        assert_eq!(resim.cone.len(), 2);
        let full = IncrementalSim::record(&mutated, &stream).unwrap();
        assert_eq!(resim.activity, full.activity());
    }

    #[test]
    fn register_dirty_cone_matches_full_rerecord() {
        // Rewire a gate that feeds a flip-flop: the register's Q
        // trajectory shifts, which must propagate cycle by cycle.
        let nl = registered_adder(4);
        let stream = stream_for(&nl, 31, 190);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        let mut mutated = nl.clone();
        let target = mutated
            .node_ids()
            .find(|&id| {
                matches!(mutated.kind(id),
                    NodeKind::Gate { kind: GateKind::Xor, inputs } if inputs.len() == 2)
            })
            .unwrap();
        let NodeKind::Gate { inputs, .. } = mutated.kind(target).clone() else { unreachable!() };
        mutated.replace_gate(target, GateKind::Xnor, inputs).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();
        // The cone crossed a register boundary.
        assert!(resim.cone.iter().any(|&id| matches!(mutated.kind(id), NodeKind::Dff { .. })));
        let full = IncrementalSim::record(&mutated, &stream).unwrap();
        assert_eq!(resim.activity, full.activity());
        for (ci, &id) in resim.cone.iter().enumerate() {
            assert_eq!(
                &resim.updates[ci * resim.blocks..(ci + 1) * resim.blocks],
                full.value_words(id),
                "cone value words diverged at {id}"
            );
        }
    }

    #[test]
    fn appended_register_joins_the_cone() {
        // Retiming-style edit: insert a flip-flop on an internal net and
        // repoint a reader at it.
        let nl = adder(4);
        let stream = stream_for(&nl, 41, 140);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        let mut mutated = nl.clone();
        let target = mutated
            .node_ids()
            .find(|&id| {
                matches!(mutated.kind(id),
                    NodeKind::Gate { kind: GateKind::Or, inputs } if inputs.len() == 2)
            })
            .unwrap();
        let NodeKind::Gate { kind, inputs } = mutated.kind(target).clone() else { unreachable!() };
        let q = mutated.dff(inputs[0], false);
        let mut ins = inputs;
        ins[0] = q;
        mutated.replace_gate(target, kind, ins).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();
        assert!(resim.cone.contains(&q));
        let full = IncrementalSim::record(&mutated, &stream).unwrap();
        assert_eq!(resim.activity, full.activity());
    }

    #[test]
    fn commit_chains_mutations() {
        let nl = adder(4);
        let lib = Library::default();
        let stream = stream_for(&nl, 9, 150);
        let mut inc = IncrementalSim::record(&nl, &stream).unwrap();
        let mut current = nl.clone();
        // Two successive mutations, committing each; the cache must track.
        for flip in 0..2usize {
            let target = current
                .node_ids()
                .filter(|&id| {
                    matches!(current.kind(id),
                        NodeKind::Gate { kind: GateKind::And, inputs } if inputs.len() == 2)
                })
                .nth(flip)
                .unwrap();
            let NodeKind::Gate { inputs, .. } = current.kind(target).clone() else {
                unreachable!()
            };
            let mut mutated = current.clone();
            mutated.replace_gate(target, GateKind::Nand, inputs).unwrap();
            let resim = inc.resim(&mutated, &[target]).unwrap();
            inc.commit(&mutated, &resim);
            current = mutated;
        }
        let full = IncrementalSim::record(&current, &stream).unwrap();
        assert_eq!(inc.activity(), full.activity());
        assert_eq!(
            inc.activity().power(&current, &lib).total_power_uw().to_bits(),
            full.activity().power(&current, &lib).total_power_uw().to_bits()
        );
    }

    #[test]
    fn resim_into_reuses_buffers_across_candidates() {
        let nl = adder(5);
        let stream = stream_for(&nl, 13, 120);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        let mut scratch = ResimScratch::default();
        let mut out = ConeResim::default();
        let targets: Vec<NodeId> = nl
            .node_ids()
            .filter(|&id| {
                matches!(nl.kind(id),
                    NodeKind::Gate { kind: GateKind::And, inputs } if inputs.len() == 2)
            })
            .take(3)
            .collect();
        for &target in &targets {
            let mut mutated = nl.clone();
            let NodeKind::Gate { inputs, .. } = nl.kind(target).clone() else { unreachable!() };
            mutated.replace_gate(target, GateKind::Nand, inputs).unwrap();
            inc.resim_into(&mutated, &[target], &mut scratch, &mut out).unwrap();
            let full = IncrementalSim::record(&mutated, &stream).unwrap();
            assert_eq!(out.activity, full.activity(), "buffer reuse corrupted {target}");
            assert!(out.words_replayed() > 0);
        }
    }

    #[test]
    fn appended_logic_joins_the_cone() {
        let nl = adder(4);
        let stream = stream_for(&nl, 21, 90);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        // Append an inverter chain and repoint an existing gate at it.
        let mut mutated = nl.clone();
        let a0 = mutated.inputs()[0];
        let inv = mutated.not(a0);
        let target = mutated
            .node_ids()
            .find(|&id| {
                matches!(mutated.kind(id),
                    NodeKind::Gate { kind: GateKind::Or, inputs } if inputs.len() == 2)
            })
            .unwrap();
        let NodeKind::Gate { inputs, .. } = mutated.kind(target).clone() else { unreachable!() };
        mutated.replace_gate(target, GateKind::Or, vec![inputs[0], inv]).unwrap();
        let resim = inc.resim(&mutated, &[target]).unwrap();
        assert!(resim.cone.contains(&inv));
        let full = IncrementalSim::record(&mutated, &stream).unwrap();
        assert_eq!(resim.activity, full.activity());
    }

    #[test]
    fn undeclared_edits_and_bad_bases_are_rejected() {
        let nl = adder(4);
        let stream = stream_for(&nl, 5, 70);
        let inc = IncrementalSim::record(&nl, &stream).unwrap();
        // Undeclared edit.
        let mut sneaky = nl.clone();
        let target = sneaky
            .node_ids()
            .find(|&id| {
                matches!(sneaky.kind(id),
                    NodeKind::Gate { kind: GateKind::And, inputs } if inputs.len() == 2)
            })
            .unwrap();
        let NodeKind::Gate { inputs, .. } = sneaky.kind(target).clone() else { unreachable!() };
        sneaky.replace_gate(target, GateKind::Nand, inputs).unwrap();
        assert!(matches!(inc.resim(&sneaky, &[]), Err(NetlistError::IncrementalMismatch { .. })));
        // Different inputs.
        let mut extra_input = nl.clone();
        extra_input.input("z");
        assert!(matches!(
            inc.resim(&extra_input, &[]),
            Err(NetlistError::IncrementalMismatch { .. })
        ));
        // A rewiring that introduces a cycle surfaces as such.
        let mut cyclic = nl.clone();
        let NodeKind::Gate { inputs, kind } = cyclic.kind(target).clone() else { unreachable!() };
        let downstream = NodeId(cyclic.node_count() as u32 - 1);
        cyclic.replace_gate(target, kind, vec![inputs[0], downstream]).unwrap();
        assert!(matches!(
            inc.resim(&cyclic, &[target]),
            Err(NetlistError::CombinationalCycle { .. })
        ));
        // A sequential base whose pre-existing register set is edited
        // under the table is rejected.
        let seq = registered_adder(3);
        let seq_stream = stream_for(&seq, 7, 60);
        let seq_inc = IncrementalSim::record(&seq, &seq_stream).unwrap();
        let mut retuned = seq.clone();
        let q = retuned.dffs()[0];
        let NodeKind::Dff { d, .. } = *retuned.kind(q) else { unreachable!() };
        retuned.connect_dff_d(q, d); // no-op rewire keeps structure equal
        assert!(seq_inc.resim(&retuned, &[]).is_ok());
        let other_d = retuned.inputs()[1];
        retuned.connect_dff_d(q, other_d);
        assert!(matches!(
            seq_inc.resim(&retuned, &[]),
            Err(NetlistError::IncrementalMismatch { .. })
        ));
    }
}
