//! Event-driven, real-delay simulation capturing glitches.
//!
//! The zero-delay simulator in [`crate::ZeroDelaySim`] counts at most one
//! transition per node per cycle. Real circuits also produce *glitches*
//! (spurious transitions caused by unequal path delays) which can dominate
//! power in arithmetic circuits; the survey's retiming and guarded-evaluation
//! sections depend on them. This simulator propagates events under the
//! library's transport-delay model, counting every transition.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hlpower_obs::metrics as obs;

use crate::error::NetlistError;
use crate::library::Library;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::power::PowerReport;
use crate::sim::Activity;

/// Activity record with glitch decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedActivity {
    /// All transitions per node (functional + glitches).
    pub activity: Activity,
    /// Functional (zero-delay) transitions per node; `activity.toggles -
    /// functional` is the per-node glitch count.
    pub functional: Vec<u64>,
}

impl TimedActivity {
    /// Total number of glitch transitions across the circuit.
    pub fn total_glitches(&self) -> u64 {
        self.activity.toggles.iter().zip(&self.functional).map(|(&t, &f)| t - f).sum()
    }

    /// Glitch transitions on one node.
    pub fn node_glitches(&self, node: NodeId) -> u64 {
        self.activity.toggles[node.index()] - self.functional[node.index()]
    }

    /// Fraction of all transitions that are glitches.
    pub fn glitch_fraction(&self) -> f64 {
        let total: u64 = self.activity.toggles.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.total_glitches() as f64 / total as f64
        }
    }

    /// Converts the (glitch-inclusive) activity into a power report.
    pub fn power(&self, netlist: &Netlist, lib: &Library) -> PowerReport {
        self.activity.power(netlist, lib)
    }
}

/// Per-gate transport delays derived from a library.
fn gate_delays_ps(netlist: &Netlist, lib: &Library) -> Vec<u64> {
    netlist
        .node_ids()
        .map(|id| match netlist.kind(id) {
            NodeKind::Gate { kind, inputs } => {
                let c = lib.cell(*kind);
                (c.delay_ps + c.delay_per_fanin_ps * (inputs.len().saturating_sub(1)) as f64)
                    .round()
                    .max(1.0) as u64
            }
            _ => 0,
        })
        .collect()
}

/// An event-driven simulator with per-gate transport delays.
///
/// Each [`step`](EventDrivenSim::step) models one clock cycle: primary
/// inputs and flip-flop outputs change at time zero, and the resulting
/// events propagate through the gates in timestamp order. All transitions —
/// including glitches — are counted.
#[derive(Debug, Clone)]
pub struct EventDrivenSim<'a> {
    netlist: &'a Netlist,
    fanouts: Vec<Vec<NodeId>>,
    delays: Vec<u64>,
    values: Vec<bool>,
    dff_next: Vec<bool>,
    toggles: Vec<u64>,
    functional: Vec<u64>,
    cycles: u64,
    initialized: bool,
    order: Vec<NodeId>,
}

impl<'a> EventDrivenSim<'a> {
    /// Creates an event-driven simulator for `netlist` under `lib`'s delay
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// network is cyclic.
    pub fn new(netlist: &'a Netlist, lib: &Library) -> Result<Self, NetlistError> {
        let order = netlist.topo_order()?;
        let mut values = vec![false; netlist.node_count()];
        let mut dff_next = Vec::with_capacity(netlist.dffs().len());
        for &q in netlist.dffs() {
            if let NodeKind::Dff { init, .. } = netlist.kind(q) {
                values[q.index()] = *init;
                dff_next.push(*init);
            }
        }
        for id in netlist.node_ids() {
            if let NodeKind::Const(v) = netlist.kind(id) {
                values[id.index()] = *v;
            }
        }
        // Settle the combinational network so the initial state is
        // consistent (all-false inputs, flip-flops at their init values);
        // otherwise the first input changes would propagate through stale
        // gate values.
        for &id in &order {
            if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
                let vals: Vec<bool> = inputs.iter().map(|f| values[f.index()]).collect();
                values[id.index()] = kind.eval(&vals);
            }
        }
        Ok(EventDrivenSim {
            netlist,
            fanouts: netlist.fanouts(),
            delays: gate_delays_ps(netlist, lib),
            values,
            dff_next,
            toggles: vec![0; netlist.node_count()],
            functional: vec![0; netlist.node_count()],
            cycles: 0,
            initialized: false,
            order,
        })
    }

    fn eval_gate(&self, id: NodeId) -> bool {
        match self.netlist.kind(id) {
            NodeKind::Gate { kind, inputs } => {
                let vals: Vec<bool> = inputs.iter().map(|f| self.values[f.index()]).collect();
                kind.eval(&vals)
            }
            _ => self.values[id.index()],
        }
    }

    /// Simulates one clock cycle with the given input vector.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// have one bit per primary input.
    pub fn step(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                got: inputs.len(),
                expected: self.netlist.input_count(),
            });
        }
        let count = self.initialized;
        // Record functional transitions by diffing stable states: snapshot
        // old stable values of gates first.
        let old_values = self.values.clone();

        let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        // Time-zero events: DFF outputs and primary inputs.
        for (i, &q) in self.netlist.dffs().iter().enumerate() {
            let new = self.dff_next[i];
            if self.values[q.index()] != new {
                self.values[q.index()] = new;
                if count {
                    self.toggles[q.index()] += 1;
                }
                for &f in &self.fanouts[q.index()] {
                    if matches!(self.netlist.kind(f), NodeKind::Gate { .. }) {
                        heap.push(Reverse((self.delays[f.index()], f)));
                    }
                }
            }
        }
        for (i, &inp) in self.netlist.inputs().iter().enumerate() {
            if self.values[inp.index()] != inputs[i] {
                self.values[inp.index()] = inputs[i];
                if count {
                    self.toggles[inp.index()] += 1;
                }
                for &f in &self.fanouts[inp.index()] {
                    if matches!(self.netlist.kind(f), NodeKind::Gate { .. }) {
                        heap.push(Reverse((self.delays[f.index()], f)));
                    }
                }
            }
        }
        // Propagate events in time order (transport delay: every scheduled
        // evaluation re-reads current fanin values).
        let mut events = 0u64;
        while let Some(Reverse((t, id))) = heap.pop() {
            events += 1;
            let new = self.eval_gate(id);
            if new != self.values[id.index()] {
                self.values[id.index()] = new;
                if count {
                    self.toggles[id.index()] += 1;
                }
                for &f in &self.fanouts[id.index()] {
                    if matches!(self.netlist.kind(f), NodeKind::Gate { .. }) {
                        heap.push(Reverse((t + self.delays[f.index()], f)));
                    }
                }
            }
        }
        obs::SIM_EV_STEPS.inc();
        obs::SIM_EV_EVENTS.add(events);
        // Functional transition accounting: stable-state diff.
        if count {
            for &id in &self.order {
                if old_values[id.index()] != self.values[id.index()] {
                    self.functional[id.index()] += 1;
                }
            }
            self.cycles += 1;
        }
        // Sample D inputs at the (next) clock edge.
        for (i, &q) in self.netlist.dffs().iter().enumerate() {
            if let NodeKind::Dff { d, .. } = self.netlist.kind(q) {
                self.dff_next[i] = self.values[d.index()];
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// Current value of a node.
    pub fn value(&self, node: NodeId) -> bool {
        self.values[node.index()]
    }

    /// Current primary-output values.
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist.outputs().iter().map(|&(_, n)| self.values[n.index()]).collect()
    }

    /// Runs over a stream of vectors and returns the timed activity.
    pub fn run(&mut self, stream: impl IntoIterator<Item = Vec<bool>>) -> TimedActivity {
        for v in stream {
            if self.step(&v).is_err() {
                break;
            }
        }
        self.take_activity()
    }

    /// Returns the accumulated activity, resetting the counters.
    pub fn take_activity(&mut self) -> TimedActivity {
        let toggles = std::mem::replace(&mut self.toggles, vec![0; self.netlist.node_count()]);
        let functional =
            std::mem::replace(&mut self.functional, vec![0; self.netlist.node_count()]);
        let cycles = self.cycles;
        self.cycles = 0;
        let timed = TimedActivity { activity: Activity { toggles, cycles }, functional };
        obs::SIM_EV_CYCLES.add(cycles);
        obs::SIM_EV_TRANSITIONS.add(timed.activity.toggles.iter().sum::<u64>());
        obs::SIM_EV_GLITCHES.add(timed.total_glitches());
        timed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::netlist::Netlist;
    use crate::sim::ZeroDelaySim;

    /// A classic glitch generator: y = a AND (NOT a) settles to 0 but
    /// produces a pulse when `a` rises (the AND sees the new `a` before the
    /// inverted one).
    fn glitcher() -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let na = nl.not(a);
        // Lengthen the inverting path to widen the hazard window.
        let na2 = nl.buf(na);
        let na3 = nl.buf(na2);
        let y = nl.and([a, na3]);
        nl.set_output("y", y);
        (nl, y)
    }

    #[test]
    fn static_hazard_is_counted_as_glitch() {
        let (nl, y) = glitcher();
        let lib = Library::default();
        let mut sim = EventDrivenSim::new(&nl, &lib).unwrap();
        sim.step(&[false]).unwrap();
        sim.step(&[true]).unwrap(); // rising edge: glitch pulse on y
        let act = sim.take_activity();
        // y stays functionally 0 but glitched (two transitions: 0->1->0).
        assert_eq!(act.functional[y.index()], 0);
        assert_eq!(act.activity.toggles[y.index()], 2);
        assert_eq!(act.node_glitches(y), 2);
    }

    #[test]
    fn settles_to_functional_values() {
        let (nl, _) = glitcher();
        let lib = Library::default();
        let mut ev = EventDrivenSim::new(&nl, &lib).unwrap();
        let mut zd = ZeroDelaySim::new(&nl).unwrap();
        for v in [false, true, true, false, true] {
            ev.step(&[v]).unwrap();
            zd.step(&[v]).unwrap();
            assert_eq!(ev.output_values(), zd.output_values());
        }
    }

    #[test]
    fn event_toggles_at_least_functional() {
        // On a random-ish circuit: event-driven counts >= zero-delay counts.
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let zero = nl.constant(false);
        let sum = crate::gen::ripple_adder(&mut nl, &a, &b, zero);
        nl.output_bus("s", &sum);
        let lib = Library::default();
        let mut ev = EventDrivenSim::new(&nl, &lib).unwrap();
        let vecs: Vec<Vec<bool>> = crate::streams::random(3, nl.input_count()).take(50).collect();
        let timed = ev.run(vecs.clone());
        let mut zd = ZeroDelaySim::new(&nl).unwrap();
        let plain = zd.run(vecs);
        let ev_total: u64 = timed.activity.toggles.iter().sum();
        let zd_total: u64 = plain.toggles.iter().sum();
        assert!(ev_total >= zd_total);
        // Functional decomposition must match the zero-delay simulator.
        assert_eq!(timed.functional, plain.toggles);
    }

    #[test]
    fn glitch_fraction_bounded() {
        let (nl, _) = glitcher();
        let lib = Library::default();
        let mut sim = EventDrivenSim::new(&nl, &lib).unwrap();
        let t = sim.run(crate::streams::random(11, 1).take(200));
        let f = t.glitch_fraction();
        assert!((0.0..=1.0).contains(&f));
    }
}
