//! Event-driven, real-delay simulation capturing glitches.
//!
//! The zero-delay simulator in [`crate::ZeroDelaySim`] counts at most one
//! transition per node per cycle. Real circuits also produce *glitches*
//! (spurious transitions caused by unequal path delays) which can dominate
//! power in arithmetic circuits; the survey's retiming and guarded-evaluation
//! sections depend on them. This simulator propagates events under the
//! library's transport-delay model, counting every transition.
//!
//! [`EventDrivenSim`] is the scalar reference engine; the compiled 64-lane
//! [`TimedSim64`](crate::TimedSim64) in [`crate::sim64timed`] reproduces its
//! per-lane results bit-for-bit at much higher throughput.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hlpower_obs::metrics as obs;

use crate::error::NetlistError;
use crate::library::Library;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::power::PowerReport;
use crate::sim::Activity;

/// Activity record with glitch decomposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimedActivity {
    /// All transitions per node (functional + glitches).
    pub activity: Activity,
    /// Functional (zero-delay) transitions per node; `activity.toggles -
    /// functional` is the per-node glitch count.
    pub functional: Vec<u64>,
}

impl TimedActivity {
    /// An all-zero timed-activity record for a netlist.
    pub fn zero(netlist: &Netlist) -> Self {
        TimedActivity {
            activity: Activity::zero(netlist),
            functional: vec![0; netlist.node_count()],
        }
    }

    /// Checks that the functional vector is parallel to the toggle vector.
    fn check_shape(&self) -> Result<(), NetlistError> {
        if self.activity.toggles.len() != self.functional.len() {
            return Err(NetlistError::FunctionalSizeMismatch {
                toggles: self.activity.toggles.len(),
                functional: self.functional.len(),
            });
        }
        Ok(())
    }

    /// Total number of glitch transitions across the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::FunctionalSizeMismatch`] if the toggle and
    /// functional vectors have different lengths, or
    /// [`NetlistError::GlitchUnderflow`] if any node records more
    /// functional transitions than total transitions (a record assembled
    /// from mismatched runs).
    pub fn total_glitches(&self) -> Result<u64, NetlistError> {
        self.check_shape()?;
        let mut total = 0u64;
        for (node, (&t, &f)) in self.activity.toggles.iter().zip(&self.functional).enumerate() {
            total += t.checked_sub(f).ok_or(NetlistError::GlitchUnderflow {
                node,
                toggles: t,
                functional: f,
            })?;
        }
        Ok(total)
    }

    /// Glitch transitions on one node.
    ///
    /// # Errors
    ///
    /// As [`total_glitches`](Self::total_glitches), for this node.
    pub fn node_glitches(&self, node: NodeId) -> Result<u64, NetlistError> {
        self.check_shape()?;
        let t = self.activity.toggles[node.index()];
        let f = self.functional[node.index()];
        t.checked_sub(f).ok_or(NetlistError::GlitchUnderflow {
            node: node.index(),
            toggles: t,
            functional: f,
        })
    }

    /// Fraction of all transitions that are glitches.
    ///
    /// # Errors
    ///
    /// As [`total_glitches`](Self::total_glitches).
    pub fn glitch_fraction(&self) -> Result<f64, NetlistError> {
        let glitches = self.total_glitches()?;
        let total: u64 = self.activity.toggles.iter().sum();
        if total == 0 {
            Ok(0.0)
        } else {
            Ok(glitches as f64 / total as f64)
        }
    }

    /// Sum of glitch counts with per-node saturation, for contexts (metric
    /// flushes) that must not fail on a malformed record.
    pub(crate) fn total_glitches_saturating(&self) -> u64 {
        self.activity.toggles.iter().zip(&self.functional).map(|(&t, &f)| t.saturating_sub(f)).sum()
    }

    /// Merges another timed-activity record (same netlist) into this one.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ActivitySizeMismatch`] or
    /// [`NetlistError::FunctionalSizeMismatch`] if the records disagree in
    /// shape; `self` is left unchanged in that case.
    pub fn merge(&mut self, other: &TimedActivity) -> Result<(), NetlistError> {
        self.check_shape()?;
        other.check_shape()?;
        self.activity.merge(&other.activity)?;
        for (t, o) in self.functional.iter_mut().zip(&other.functional) {
            *t += o;
        }
        Ok(())
    }

    /// Converts the (glitch-inclusive) activity into a power report.
    pub fn power(&self, netlist: &Netlist, lib: &Library) -> PowerReport {
        self.activity.power(netlist, lib)
    }
}

/// Per-gate transport delays derived from a library.
pub(crate) fn gate_delays_ps(netlist: &Netlist, lib: &Library) -> Vec<u64> {
    netlist
        .node_ids()
        .map(|id| match netlist.kind(id) {
            NodeKind::Gate { kind, inputs } => {
                let c = lib.cell(*kind);
                (c.delay_ps + c.delay_per_fanin_ps * (inputs.len().saturating_sub(1)) as f64)
                    .round()
                    .max(1.0) as u64
            }
            _ => 0,
        })
        .collect()
}

/// An event-driven simulator with per-gate transport delays.
///
/// Each [`step`](EventDrivenSim::step) models one clock cycle: primary
/// inputs and flip-flop outputs change at time zero, and the resulting
/// events propagate through the gates in timestamp order. All transitions —
/// including glitches — are counted.
#[derive(Debug, Clone)]
pub struct EventDrivenSim<'a> {
    netlist: &'a Netlist,
    fanouts: Vec<Vec<NodeId>>,
    delays: Vec<u64>,
    values: Vec<bool>,
    dff_next: Vec<bool>,
    toggles: Vec<u64>,
    functional: Vec<u64>,
    cycles: u64,
    initialized: bool,
    order: Vec<NodeId>,
    /// Heap entries pushed during the last step (one per changed fanin of
    /// a changed node; dedup diagnostics for the in-file tests).
    events_scheduled: u64,
    /// Unique `(time, node)` evaluations performed during the last step.
    events_processed: u64,
}

impl<'a> EventDrivenSim<'a> {
    /// Creates an event-driven simulator for `netlist` under `lib`'s delay
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// network is cyclic.
    pub fn new(netlist: &'a Netlist, lib: &Library) -> Result<Self, NetlistError> {
        let order = netlist.topo_order()?;
        let mut values = vec![false; netlist.node_count()];
        let mut dff_next = Vec::with_capacity(netlist.dffs().len());
        for &q in netlist.dffs() {
            if let NodeKind::Dff { init, .. } = netlist.kind(q) {
                values[q.index()] = *init;
                dff_next.push(*init);
            }
        }
        for id in netlist.node_ids() {
            if let NodeKind::Const(v) = netlist.kind(id) {
                values[id.index()] = *v;
            }
        }
        // Settle the combinational network so the initial state is
        // consistent (all-false inputs, flip-flops at their init values);
        // otherwise the first input changes would propagate through stale
        // gate values.
        for &id in &order {
            if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
                let vals: Vec<bool> = inputs.iter().map(|f| values[f.index()]).collect();
                values[id.index()] = kind.eval(&vals);
            }
        }
        Ok(EventDrivenSim {
            netlist,
            fanouts: netlist.fanouts(),
            delays: gate_delays_ps(netlist, lib),
            values,
            dff_next,
            toggles: vec![0; netlist.node_count()],
            functional: vec![0; netlist.node_count()],
            cycles: 0,
            initialized: false,
            order,
            events_scheduled: 0,
            events_processed: 0,
        })
    }

    fn eval_gate(&self, id: NodeId) -> bool {
        match self.netlist.kind(id) {
            NodeKind::Gate { kind, inputs } => {
                let vals: Vec<bool> = inputs.iter().map(|f| self.values[f.index()]).collect();
                kind.eval(&vals)
            }
            _ => self.values[id.index()],
        }
    }

    /// Simulates one clock cycle with the given input vector.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// have one bit per primary input.
    pub fn step(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        self.step_inner(inputs, None)
    }

    /// [`step`](Self::step) plus an event trace: appends one `(time_ps,
    /// node)` entry per actual value flip this cycle, in event order
    /// (time-zero register/input flips first, then gate flips by
    /// ascending timestamp). [`crate::IncrementalTimedSim`] records these
    /// waveforms so dirty-cone replays can play back boundary events
    /// without re-simulating the rest of the circuit.
    pub(crate) fn step_traced(
        &mut self,
        inputs: &[bool],
        trace: &mut Vec<(u64, u32)>,
    ) -> Result<(), NetlistError> {
        self.step_inner(inputs, Some(trace))
    }

    /// Settled node values after the last step (power-on settle before the
    /// first), indexed by node.
    pub(crate) fn values_raw(&self) -> &[bool] {
        &self.values
    }

    fn step_inner(
        &mut self,
        inputs: &[bool],
        mut trace: Option<&mut Vec<(u64, u32)>>,
    ) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                got: inputs.len(),
                expected: self.netlist.input_count(),
            });
        }
        let count = self.initialized;
        // Record functional transitions by diffing stable states: snapshot
        // old stable values of gates first.
        let old_values = self.values.clone();

        let mut scheduled = 0u64;
        let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        // Time-zero events: DFF outputs and primary inputs.
        for (i, &q) in self.netlist.dffs().iter().enumerate() {
            let new = self.dff_next[i];
            if self.values[q.index()] != new {
                self.values[q.index()] = new;
                if count {
                    self.toggles[q.index()] += 1;
                }
                if let Some(tr) = trace.as_deref_mut() {
                    tr.push((0, q.index() as u32));
                }
                for &f in &self.fanouts[q.index()] {
                    if matches!(self.netlist.kind(f), NodeKind::Gate { .. }) {
                        heap.push(Reverse((self.delays[f.index()], f)));
                        scheduled += 1;
                    }
                }
            }
        }
        for (i, &inp) in self.netlist.inputs().iter().enumerate() {
            if self.values[inp.index()] != inputs[i] {
                self.values[inp.index()] = inputs[i];
                if count {
                    self.toggles[inp.index()] += 1;
                }
                if let Some(tr) = trace.as_deref_mut() {
                    tr.push((0, inp.index() as u32));
                }
                for &f in &self.fanouts[inp.index()] {
                    if matches!(self.netlist.kind(f), NodeKind::Gate { .. }) {
                        heap.push(Reverse((self.delays[f.index()], f)));
                        scheduled += 1;
                    }
                }
            }
        }
        // Queue depth after the time-zero schedule: how bursty this cycle's
        // stimulus is (purely observational, never read back).
        obs::SIM_EV_QUEUE_DEPTH.record(heap.len() as u64);
        // Propagate events in time order (transport delay: every scheduled
        // evaluation re-reads current fanin values).
        let mut events = 0u64;
        while let Some(Reverse((t, id))) = heap.pop() {
            // Coalesce duplicate (time, node) entries: one entry was pushed
            // per changed fanin, but fanin values only change when an event
            // at a *later* timestamp fires (delays are >= 1), so the extra
            // evaluations of the same gate at the same time are no-ops.
            while heap.peek() == Some(&Reverse((t, id))) {
                heap.pop();
            }
            events += 1;
            let new = self.eval_gate(id);
            if new != self.values[id.index()] {
                self.values[id.index()] = new;
                if count {
                    self.toggles[id.index()] += 1;
                }
                if let Some(tr) = trace.as_deref_mut() {
                    tr.push((t, id.index() as u32));
                }
                for &f in &self.fanouts[id.index()] {
                    if matches!(self.netlist.kind(f), NodeKind::Gate { .. }) {
                        heap.push(Reverse((t + self.delays[f.index()], f)));
                        scheduled += 1;
                    }
                }
            }
        }
        self.events_scheduled = scheduled;
        self.events_processed = events;
        obs::SIM_EV_STEPS.inc();
        obs::SIM_EV_EVENTS.add(events);
        // Functional transition accounting: stable-state diff.
        if count {
            for &id in &self.order {
                if old_values[id.index()] != self.values[id.index()] {
                    self.functional[id.index()] += 1;
                }
            }
            self.cycles += 1;
        }
        // Sample D inputs at the (next) clock edge.
        for (i, &q) in self.netlist.dffs().iter().enumerate() {
            if let NodeKind::Dff { d, .. } = self.netlist.kind(q) {
                self.dff_next[i] = self.values[d.index()];
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// Current value of a node.
    pub fn value(&self, node: NodeId) -> bool {
        self.values[node.index()]
    }

    /// Current primary-output values.
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist.outputs().iter().map(|&(_, n)| self.values[n.index()]).collect()
    }

    /// Runs over a stream of vectors and returns the timed activity.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] from the failing step
    /// if any vector's width does not match the input count. (Earlier
    /// versions silently truncated the run instead, under-reporting power
    /// with no signal.)
    pub fn run(
        &mut self,
        stream: impl IntoIterator<Item = Vec<bool>>,
    ) -> Result<TimedActivity, NetlistError> {
        for v in stream {
            self.step(&v)?;
        }
        Ok(self.take_activity())
    }

    /// Returns the accumulated activity, resetting the counters.
    pub fn take_activity(&mut self) -> TimedActivity {
        let toggles = std::mem::replace(&mut self.toggles, vec![0; self.netlist.node_count()]);
        let functional =
            std::mem::replace(&mut self.functional, vec![0; self.netlist.node_count()]);
        let cycles = self.cycles;
        self.cycles = 0;
        let timed = TimedActivity { activity: Activity { toggles, cycles }, functional };
        obs::SIM_EV_CYCLES.add(cycles);
        obs::SIM_EV_TRANSITIONS.add(timed.activity.toggles.iter().sum::<u64>());
        obs::SIM_EV_GLITCHES.add(timed.total_glitches_saturating());
        timed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::netlist::Netlist;
    use crate::sim::ZeroDelaySim;

    /// A classic glitch generator: y = a AND (NOT a) settles to 0 but
    /// produces a pulse when `a` rises (the AND sees the new `a` before the
    /// inverted one).
    fn glitcher() -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let na = nl.not(a);
        // Lengthen the inverting path to widen the hazard window.
        let na2 = nl.buf(na);
        let na3 = nl.buf(na2);
        let y = nl.and([a, na3]);
        nl.set_output("y", y);
        (nl, y)
    }

    fn ripple8() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let zero = nl.constant(false);
        let sum = crate::gen::ripple_adder(&mut nl, &a, &b, zero);
        nl.output_bus("s", &sum);
        nl
    }

    /// One step of the pre-dedup event loop: every duplicate `(time, node)`
    /// heap entry is popped and re-evaluated individually. Used as the
    /// reference to show that coalescing duplicates preserves the activity
    /// while strictly reducing the event count.
    fn step_naive(sim: &mut EventDrivenSim<'_>, inputs: &[bool]) -> u64 {
        assert_eq!(inputs.len(), sim.netlist.input_count());
        let count = sim.initialized;
        let old_values = sim.values.clone();
        let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        for (i, &q) in sim.netlist.dffs().iter().enumerate() {
            let new = sim.dff_next[i];
            if sim.values[q.index()] != new {
                sim.values[q.index()] = new;
                if count {
                    sim.toggles[q.index()] += 1;
                }
                for &f in &sim.fanouts[q.index()] {
                    if matches!(sim.netlist.kind(f), NodeKind::Gate { .. }) {
                        heap.push(Reverse((sim.delays[f.index()], f)));
                    }
                }
            }
        }
        for (i, &inp) in sim.netlist.inputs().iter().enumerate() {
            if sim.values[inp.index()] != inputs[i] {
                sim.values[inp.index()] = inputs[i];
                if count {
                    sim.toggles[inp.index()] += 1;
                }
                for &f in &sim.fanouts[inp.index()] {
                    if matches!(sim.netlist.kind(f), NodeKind::Gate { .. }) {
                        heap.push(Reverse((sim.delays[f.index()], f)));
                    }
                }
            }
        }
        let mut events = 0u64;
        while let Some(Reverse((t, id))) = heap.pop() {
            events += 1;
            let new = sim.eval_gate(id);
            if new != sim.values[id.index()] {
                sim.values[id.index()] = new;
                if count {
                    sim.toggles[id.index()] += 1;
                }
                for &f in &sim.fanouts[id.index()] {
                    if matches!(sim.netlist.kind(f), NodeKind::Gate { .. }) {
                        heap.push(Reverse((t + sim.delays[f.index()], f)));
                    }
                }
            }
        }
        if count {
            for &id in &sim.order.clone() {
                if old_values[id.index()] != sim.values[id.index()] {
                    sim.functional[id.index()] += 1;
                }
            }
            sim.cycles += 1;
        }
        for (i, &q) in sim.netlist.dffs().iter().enumerate() {
            if let NodeKind::Dff { d, .. } = sim.netlist.kind(q) {
                sim.dff_next[i] = sim.values[d.index()];
            }
        }
        sim.initialized = true;
        events
    }

    #[test]
    fn static_hazard_is_counted_as_glitch() {
        let (nl, y) = glitcher();
        let lib = Library::default();
        let mut sim = EventDrivenSim::new(&nl, &lib).unwrap();
        sim.step(&[false]).unwrap();
        sim.step(&[true]).unwrap(); // rising edge: glitch pulse on y
        let act = sim.take_activity();
        // y stays functionally 0 but glitched (two transitions: 0->1->0).
        assert_eq!(act.functional[y.index()], 0);
        assert_eq!(act.activity.toggles[y.index()], 2);
        assert_eq!(act.node_glitches(y).unwrap(), 2);
    }

    #[test]
    fn settles_to_functional_values() {
        let (nl, _) = glitcher();
        let lib = Library::default();
        let mut ev = EventDrivenSim::new(&nl, &lib).unwrap();
        let mut zd = ZeroDelaySim::new(&nl).unwrap();
        for v in [false, true, true, false, true] {
            ev.step(&[v]).unwrap();
            zd.step(&[v]).unwrap();
            assert_eq!(ev.output_values(), zd.output_values());
        }
    }

    #[test]
    fn event_toggles_at_least_functional() {
        // On a random-ish circuit: event-driven counts >= zero-delay counts.
        let nl = ripple8();
        let lib = Library::default();
        let mut ev = EventDrivenSim::new(&nl, &lib).unwrap();
        let vecs: Vec<Vec<bool>> = crate::streams::random(3, nl.input_count()).take(50).collect();
        let timed = ev.run(vecs.clone()).unwrap();
        let mut zd = ZeroDelaySim::new(&nl).unwrap();
        let plain = zd.run(vecs).unwrap();
        let ev_total: u64 = timed.activity.toggles.iter().sum();
        let zd_total: u64 = plain.toggles.iter().sum();
        assert!(ev_total >= zd_total);
        // Functional decomposition must match the zero-delay simulator.
        assert_eq!(timed.functional, plain.toggles);
    }

    #[test]
    fn glitch_fraction_bounded() {
        let (nl, _) = glitcher();
        let lib = Library::default();
        let mut sim = EventDrivenSim::new(&nl, &lib).unwrap();
        let t = sim.run(crate::streams::random(11, 1).take(200)).unwrap();
        let f = t.glitch_fraction().unwrap();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn run_propagates_width_mismatch_instead_of_truncating() {
        let nl = ripple8();
        let lib = Library::default();
        let mut sim = EventDrivenSim::new(&nl, &lib).unwrap();
        let mut vecs: Vec<Vec<bool>> =
            crate::streams::random(5, nl.input_count()).take(10).collect();
        vecs.push(vec![true; nl.input_count() + 1]); // poison the tail
        let err = sim.run(vecs);
        assert!(
            matches!(err, Err(NetlistError::InputWidthMismatch { got, expected })
                if got == nl.input_count() + 1 && expected == nl.input_count()),
            "got {err:?}"
        );
    }

    #[test]
    fn glitch_underflow_is_a_structured_error_not_a_wrap() {
        let nl = ripple8();
        let lib = Library::default();
        let mut sim = EventDrivenSim::new(&nl, &lib).unwrap();
        let mut timed = sim.run(crate::streams::random(7, nl.input_count()).take(30)).unwrap();
        // Corrupt the record the way a mismatched merge would: more
        // functional transitions than total transitions on node 0.
        timed.functional[0] = timed.activity.toggles[0] + 5;
        let id = nl.node_ids().next().unwrap();
        assert!(matches!(
            timed.node_glitches(id),
            Err(NetlistError::GlitchUnderflow { node: 0, .. })
        ));
        assert!(matches!(
            timed.total_glitches(),
            Err(NetlistError::GlitchUnderflow { node: 0, .. })
        ));
        assert!(matches!(
            timed.glitch_fraction(),
            Err(NetlistError::GlitchUnderflow { node: 0, .. })
        ));
        // The saturating path (metric flushes) clamps instead of failing.
        let sat = timed.total_glitches_saturating();
        let rest: u64 = timed
            .activity
            .toggles
            .iter()
            .zip(&timed.functional)
            .skip(1)
            .map(|(&t, &f)| t - f)
            .sum();
        assert_eq!(sat, rest);
    }

    #[test]
    fn mismatched_functional_length_is_a_structured_error() {
        let nl = ripple8();
        let timed = TimedActivity {
            activity: Activity::zero(&nl),
            functional: vec![0; nl.node_count() + 2],
        };
        assert!(matches!(
            timed.total_glitches(),
            Err(NetlistError::FunctionalSizeMismatch { toggles, functional })
                if toggles == nl.node_count() && functional == nl.node_count() + 2
        ));
        let mut ok = TimedActivity::zero(&nl);
        assert!(ok.merge(&timed).is_err());
    }

    #[test]
    fn merge_accumulates_both_counter_sets() {
        let nl = ripple8();
        let lib = Library::default();
        let w = nl.input_count();
        let vecs: Vec<Vec<bool>> = crate::streams::random(21, w).take(60).collect();
        // One 60-vector run == merge of two 30-vector runs on one simulator
        // instance (state carries across take_activity).
        let mut sim = EventDrivenSim::new(&nl, &lib).unwrap();
        let whole = sim.run(vecs.clone()).unwrap();
        let mut sim2 = EventDrivenSim::new(&nl, &lib).unwrap();
        let first = sim2.run(vecs[..30].to_vec()).unwrap();
        let second = sim2.run(vecs[30..].to_vec()).unwrap();
        let mut merged = TimedActivity::zero(&nl);
        merged.merge(&first).unwrap();
        merged.merge(&second).unwrap();
        // Simulator state (values, initialized flag) carries across
        // `take_activity`, so the two-part run is the whole run exactly.
        assert_eq!(merged, whole);
    }

    #[test]
    fn dedup_preserves_activity_and_strictly_reduces_events() {
        let nl = ripple8();
        let lib = Library::default();
        let vecs: Vec<Vec<bool>> = crate::streams::random(13, nl.input_count()).take(80).collect();
        let mut deduped = EventDrivenSim::new(&nl, &lib).unwrap();
        let mut naive = EventDrivenSim::new(&nl, &lib).unwrap();
        let mut deduped_events = 0u64;
        let mut naive_events = 0u64;
        for v in &vecs {
            deduped.step(v).unwrap();
            deduped_events += deduped.events_processed;
            naive_events += step_naive(&mut naive, v);
            assert_eq!(deduped.values, naive.values, "states diverged");
        }
        let a = deduped.take_activity();
        let b = naive.take_activity();
        assert_eq!(a, b, "dedup changed the timed activity");
        assert!(
            deduped_events < naive_events,
            "expected strictly fewer unique events ({deduped_events}) than naive heap pops \
             ({naive_events}) on the ripple adder"
        );
    }
}
