//! Structural-Verilog emitter: the inverse of [`super::verilog`].
//!
//! [`emit_verilog`] prints any [`Netlist`] as a single structural module
//! in the subset `docs/FORMATS.md` specifies, such that re-parsing the
//! emitted text reproduces the netlist: same node kinds and fanins at
//! the same arena indices (for netlists whose primary inputs precede all
//! other nodes, which every front-end and generator in this workspace
//! guarantees), identical input/output names, groups, and flip-flop init
//! values. Internal net names are preserved when they are printable and
//! unique; otherwise they are normalized to `_n<index>`.

use std::collections::{HashMap, HashSet};

use crate::library::GateKind;
use crate::netlist::{Netlist, NodeId, NodeKind};

/// Verilog keywords that cannot be used as plain identifiers.
const KEYWORDS: &[&str] = &[
    "module",
    "macromodule",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "assign",
    "and",
    "or",
    "nand",
    "nor",
    "xor",
    "xnor",
    "not",
    "buf",
    "always",
    "always_ff",
    "always_comb",
    "initial",
    "parameter",
    "localparam",
    "defparam",
    "specify",
    "primitive",
    "task",
    "function",
    "generate",
];

fn is_plain_ident(s: &str) -> bool {
    let mut chars = s.chars();
    let Some(head) = chars.next() else { return false };
    (head.is_ascii_alphabetic() || head == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && !KEYWORDS.contains(&s)
}

/// Splits `base[bit]` names (the shape `input_bus`/`output_bus` produce).
fn split_bus_bit(s: &str) -> Option<(&str, u64)> {
    let open = s.find('[')?;
    let (base, rest) = s.split_at(open);
    let digits = rest.strip_prefix('[')?.strip_suffix(']')?;
    if !is_plain_ident(base) || digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((base, digits.parse().ok()?))
}

/// `true` for names the emitter reserves for normalized nets.
fn is_reserved(s: &str) -> bool {
    s.strip_prefix("_n").is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
}

/// How a net is written at its references (must match its declaration).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ref {
    /// A plain identifier.
    Plain(String),
    /// A bit-select of a declared vector.
    Select(String, u64),
    /// An escaped identifier (`\name ` — the trailing space is part of
    /// the token).
    Escaped(String),
}

impl Ref {
    fn scalar(name: &str) -> Ref {
        if is_plain_ident(name) {
            Ref::Plain(name.to_string())
        } else {
            // Escaped identifiers end at whitespace, so embedded
            // whitespace cannot survive; normalize it away.
            Ref::Escaped(name.replace(char::is_whitespace, "_"))
        }
    }

    fn render(&self) -> String {
        match self {
            Ref::Plain(s) => s.clone(),
            Ref::Select(b, i) => format!("{b}[{i}]"),
            Ref::Escaped(s) => format!("\\{s} "),
        }
    }
}

/// The net name [`emit_verilog`] uses for every node, indexed by arena
/// position.
///
/// A node keeps its own [`Netlist::name`] when it is present, printable
/// (no embedded whitespace problems once escaped), unique, and not of
/// the reserved `_n<digits>` shape; every other node is named
/// `_n<index>`. Tests use this to map original node ids onto the
/// re-parsed netlist by name.
pub fn emitted_net_names(nl: &Netlist) -> Vec<String> {
    let mut used: HashSet<String> = HashSet::new();
    let mut names: Vec<String> = Vec::with_capacity(nl.node_count());
    for id in nl.node_ids() {
        let fallback = format!("_n{}", id.index());
        let name = match nl.name(id) {
            Some(n)
                if !n.is_empty()
                    && !n.contains(char::is_whitespace)
                    && !is_reserved(n)
                    && !used.contains(n) =>
            {
                n.to_string()
            }
            _ => fallback,
        };
        used.insert(name.clone());
        names.push(name);
    }
    // An alias output (`assign y = net;`) declares `y` at module scope;
    // an unrelated net with the same name would collide, so normalize it.
    let mut reserved_decls: HashSet<String> = HashSet::new();
    for (oname, onode) in nl.outputs() {
        if &names[onode.index()] != oname {
            match split_bus_bit(oname) {
                Some((base, _)) => reserved_decls.insert(base.to_string()),
                None => reserved_decls.insert(oname.clone()),
            };
        }
    }
    for id in nl.node_ids() {
        let i = id.index();
        let is_input = matches!(nl.kind(id), NodeKind::Input);
        if !is_input && reserved_decls.contains(&names[i]) {
            names[i] = format!("_n{i}");
        }
    }
    names
}

/// One planned port declaration.
enum PortDecl {
    Scalar { name: Ref, group: Option<String> },
    Vector { base: String, lo: u64, hi: u64, group: Option<String> },
}

impl PortDecl {
    fn header_name(&self) -> String {
        match self {
            PortDecl::Scalar { name, .. } => name.render(),
            PortDecl::Vector { base, .. } => base.clone(),
        }
    }

    fn render(&self, dir: &str) -> String {
        let attr = |g: &Option<String>| match g {
            Some(g) => format!("(* group = \"{g}\" *) "),
            None => String::new(),
        };
        match self {
            PortDecl::Scalar { name, group } => {
                // No trimming: an escaped identifier's trailing space is
                // part of the token and must separate it from the `;`.
                format!("  {}{dir} {};", attr(group), name.render())
            }
            PortDecl::Vector { base, lo, hi, group } => {
                format!("  {}{dir} [{hi}:{lo}] {base};", attr(group))
            }
        }
    }
}

/// Emits `nl` as one structural-Verilog module named `module_name`.
///
/// The body lists instances in arena order, which is what makes an
/// emit→parse round trip reproduce node indices (see the module docs).
/// Vector ports are reconstructed from `base[i]` name runs; everything
/// else is declared scalar, escaping identifiers where needed.
pub fn emit_verilog(nl: &Netlist, module_name: &str) -> String {
    let names = emitted_net_names(nl);
    let group_of = |id: NodeId| nl.node_group(id).map(|g| nl.group_name(g).to_string());

    // Plan input declarations: maximal runs of `base[k]` names that are
    // consecutive in input order, contiguous and ascending in k, and
    // share one group, become vector declarations.
    let mut input_decls: Vec<PortDecl> = Vec::new();
    let mut styles: HashMap<usize, Ref> = HashMap::new();
    let ins = nl.inputs();
    let mut i = 0;
    while i < ins.len() {
        let id = ins[i];
        let name = &names[id.index()];
        let group = group_of(id);
        match split_bus_bit(name) {
            Some((base, lo)) => {
                let mut hi = lo;
                let mut run = vec![id];
                while i + run.len() < ins.len() {
                    let next = ins[i + run.len()];
                    match split_bus_bit(&names[next.index()]) {
                        Some((b, k)) if b == base && k == hi + 1 && group_of(next) == group => {
                            hi = k;
                            run.push(next);
                        }
                        _ => break,
                    }
                }
                for (off, &rid) in run.iter().enumerate() {
                    styles.insert(rid.index(), Ref::Select(base.to_string(), lo + off as u64));
                }
                input_decls.push(PortDecl::Vector { base: base.to_string(), lo, hi, group });
                i += run.len();
            }
            None => {
                styles.insert(id.index(), Ref::scalar(name));
                input_decls.push(PortDecl::Scalar { name: Ref::scalar(name), group });
                i += 1;
            }
        }
    }

    // Plan output declarations the same way over the outputs list. An
    // output whose name matches its driver's net name (and whose driver
    // is not a primary input) is driven directly; others get an alias
    // `assign` after the body.
    let mut output_decls: Vec<PortDecl> = Vec::new();
    let mut aliases: Vec<(Ref, NodeId)> = Vec::new();
    let outs = nl.outputs();
    let mut direct: HashSet<usize> = HashSet::new();
    let mut o = 0;
    while o < outs.len() {
        let (oname, _) = &outs[o];
        match split_bus_bit(oname) {
            Some((base, lo)) => {
                let mut hi = lo;
                let mut count = 1;
                while o + count < outs.len() {
                    match split_bus_bit(&outs[o + count].0) {
                        Some((b, k)) if b == base && k == hi + 1 => {
                            hi = k;
                            count += 1;
                        }
                        _ => break,
                    }
                }
                for (bit, (on, onode)) in (lo..=hi).zip(&outs[o..o + count]) {
                    let r = Ref::Select(base.to_string(), bit);
                    let idx = onode.index();
                    if &names[idx] == on
                        && !matches!(nl.kind(*onode), NodeKind::Input)
                        && !direct.contains(&idx)
                    {
                        direct.insert(idx);
                        styles.insert(idx, r);
                    } else {
                        aliases.push((r, *onode));
                    }
                }
                output_decls.push(PortDecl::Vector { base: base.to_string(), lo, hi, group: None });
                o += count;
            }
            None => {
                let (on, onode) = &outs[o];
                let r = Ref::scalar(on);
                let idx = onode.index();
                if &names[idx] == on
                    && !matches!(nl.kind(*onode), NodeKind::Input)
                    && !direct.contains(&idx)
                {
                    direct.insert(idx);
                    styles.insert(idx, r.clone());
                } else {
                    aliases.push((r.clone(), *onode));
                }
                output_decls.push(PortDecl::Scalar { name: r, group: None });
                o += 1;
            }
        }
    }

    // Everything else is a scalar wire.
    let mut wires: Vec<Ref> = Vec::new();
    for id in nl.node_ids() {
        let idx = id.index();
        if matches!(nl.kind(id), NodeKind::Input) || styles.contains_key(&idx) {
            continue;
        }
        let r = Ref::scalar(&names[idx]);
        styles.insert(idx, r.clone());
        wires.push(r);
    }
    let net = |id: NodeId| styles[&id.index()].render();

    let mut out = String::new();
    let ports: Vec<String> =
        input_decls.iter().chain(output_decls.iter()).map(PortDecl::header_name).collect();
    out.push_str(&format!("module {module_name} ({});\n", ports.join(", ")));
    for d in &input_decls {
        out.push_str(&d.render("input"));
        out.push('\n');
    }
    for d in &output_decls {
        out.push_str(&d.render("output"));
        out.push('\n');
    }
    for w in &wires {
        out.push_str(&format!("  wire {};\n", w.render()));
    }
    out.push('\n');

    for id in nl.node_ids() {
        let idx = id.index();
        let attr = {
            let mut parts: Vec<String> = Vec::new();
            if let Some(g) = group_of(id) {
                if !matches!(nl.kind(id), NodeKind::Input) {
                    parts.push(format!("group = \"{g}\""));
                }
            }
            if let NodeKind::Dff { init: true, .. } = nl.kind(id) {
                parts.push("init = 1'b1".to_string());
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("(* {} *) ", parts.join(", "))
            }
        };
        match nl.kind(id) {
            NodeKind::Input => {}
            NodeKind::Const(v) => {
                // Plain constants are assigns; grouped ones must be tie
                // cells, because `assign` cannot carry attributes.
                if attr.is_empty() {
                    out.push_str(&format!("  assign {}= 1'b{};\n", net(id), u8::from(*v)));
                } else {
                    out.push_str(&format!(
                        "  {attr}TIE{} g{idx} (.Y({}));\n",
                        u8::from(*v),
                        net(id)
                    ));
                }
            }
            NodeKind::Gate { kind: GateKind::Mux, inputs } => {
                out.push_str(&format!(
                    "  {attr}MUX2 g{idx} (.Y({}), .S({}), .A({}), .B({}));\n",
                    net(id),
                    net(inputs[0]),
                    net(inputs[1]),
                    net(inputs[2])
                ));
            }
            NodeKind::Gate { kind, inputs } => {
                let pins: Vec<String> =
                    std::iter::once(net(id)).chain(inputs.iter().map(|&n| net(n))).collect();
                out.push_str(&format!("  {attr}{} g{idx} ({});\n", kind.name(), pins.join(", ")));
            }
            NodeKind::Dff { d, .. } => {
                out.push_str(&format!("  {attr}DFF g{idx} (.Q({}), .D({}));\n", net(id), net(*d)));
            }
        }
    }
    for (r, node) in &aliases {
        out.push_str(&format!("  assign {}= {};\n", r.render(), net(*node)));
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_preserved_or_normalized() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let g = nl.and([a, b]);
        nl.set_name(g, "and"); // a keyword: usable only escaped
        let h = nl.or([g, b]);
        let names = emitted_net_names(&nl);
        assert_eq!(names[a.index()], "a");
        assert_eq!(names[g.index()], "and");
        assert_eq!(names[h.index()], format!("_n{}", h.index()));
    }

    #[test]
    fn vector_runs_become_vector_ports() {
        let mut nl = Netlist::new();
        let bus = nl.input_bus("x", 3);
        let g = nl.xor([bus[0], bus[2]]);
        nl.set_output("y", g);
        let v = emit_verilog(&nl, "t");
        assert!(v.contains("input [2:0] x;"), "{v}");
        assert!(v.contains("x[0]"), "{v}");
        assert!(v.contains("output y;"), "{v}");
    }

    #[test]
    fn escaped_identifiers_round_trip_odd_names() {
        let mut nl = Netlist::new();
        let a = nl.input("data.0"); // not a plain identifier
        let g = nl.not(a);
        nl.set_output("q", g);
        let v = emit_verilog(&nl, "t");
        assert!(v.contains("\\data.0 "), "{v}");
        let back = crate::ingest::parse_verilog(&v).expect("parses");
        assert_eq!(back.name(back.inputs()[0]), Some("data.0"));
    }
}
