//! Real-netlist ingestion: structural Verilog and EDIF 2.0.0 front-ends
//! plus a Verilog emitter.
//!
//! This module tree turns external gate-level netlist files into the
//! in-memory [`Netlist`] every estimator in the workspace consumes, and
//! prints netlists back out as structural Verilog:
//!
//! * [`parse_verilog`] — the structural-Verilog subset ([`verilog`]),
//! * [`parse_edif`] — the flat EDIF 2.0.0 subset ([`edif`], over the
//!   [`sexpr`] reader),
//! * [`emit_verilog`] — the emitter ([`emit`]), whose output re-parses to
//!   a structurally identical netlist,
//! * [`ingest_auto`] / [`sniff_format`] — format detection by file
//!   extension or content.
//!
//! All three textual formats (including the native `.nl` format of
//! [`crate::io`]) share the lexing machinery in [`lex`], so every parse
//! error in the workspace reports a 1-based line/column and a source
//! snippet. The grammars, the cell-name vocabulary, and the exact error
//! variant each violation raises are specified normatively in
//! `docs/FORMATS.md`; parse failures are structured [`NetlistError`]
//! variants, never bare strings.

pub mod build;
pub mod cells;
pub mod edif;
pub mod emit;
pub mod lex;
pub mod sexpr;
pub mod verilog;

pub use edif::parse_edif;
pub use emit::{emit_verilog, emitted_net_names};
pub use verilog::parse_verilog;

use crate::error::{NetlistError, SourceFormat};
use crate::netlist::{Netlist, NodeKind};

/// Guesses the netlist format of a file from its name and contents.
///
/// The extension wins when it is recognized (`.v`/`.sv`/`.vh` →
/// Verilog, `.edf`/`.edif`/`.edn` → EDIF, `.nl` → native). Otherwise
/// the first meaningful line decides: `module`, `(*`, `/*`, or an
/// escaped identifier mean Verilog; a bare `(` means EDIF; anything
/// else is the native line-oriented format.
pub fn sniff_format(path: Option<&str>, src: &str) -> SourceFormat {
    if let Some(p) = path {
        let lower = p.to_ascii_lowercase();
        let by_ext = [
            (".v", SourceFormat::Verilog),
            (".sv", SourceFormat::Verilog),
            (".vh", SourceFormat::Verilog),
            (".edf", SourceFormat::Edif),
            (".edif", SourceFormat::Edif),
            (".edn", SourceFormat::Edif),
            (".nl", SourceFormat::NativeNl),
        ];
        for (ext, f) in by_ext {
            if lower.ends_with(ext) {
                return f;
            }
        }
    }
    for line in src.lines() {
        let t = line.trim_start();
        if t.is_empty() || t.starts_with("//") || t.starts_with('#') {
            continue;
        }
        if t.starts_with("module")
            || t.starts_with("(*")
            || t.starts_with("/*")
            || t.starts_with('\\')
        {
            return SourceFormat::Verilog;
        }
        if t.starts_with('(') {
            return SourceFormat::Edif;
        }
        break;
    }
    SourceFormat::NativeNl
}

/// Parses netlist source text in the given format.
///
/// # Errors
///
/// Propagates the front-end's structured [`NetlistError`] parse variant;
/// native-format errors are converted from
/// [`crate::io::ParseNetlistError`] and carry the same line/column.
pub fn ingest_str(src: &str, format: SourceFormat) -> Result<Netlist, NetlistError> {
    match format {
        SourceFormat::NativeNl => crate::io::parse_netlist(src).map_err(NetlistError::from),
        SourceFormat::Verilog => parse_verilog(src),
        SourceFormat::Edif => parse_edif(src),
    }
}

/// Sniffs the format of `src` (see [`sniff_format`]) and parses it,
/// returning both the detected format and the netlist.
///
/// # Errors
///
/// Propagates the front-end's structured [`NetlistError`] parse variant.
pub fn ingest_auto(path: Option<&str>, src: &str) -> Result<(SourceFormat, Netlist), NetlistError> {
    let format = sniff_format(path, src);
    Ok((format, ingest_str(src, format)?))
}

/// Checks that two netlists are structurally identical, arena index by
/// arena index: same node kinds, gate fanins, flip-flop data/init, input
/// names, group assignments, and the same primary-output list.
///
/// Internal (non-input) net names are *not* compared — the Verilog
/// emitter normalizes unprintable or duplicate names — so this is the
/// equality an emit→parse round trip guarantees.
///
/// # Errors
///
/// Returns a human-readable description of the first mismatch.
pub fn structurally_equivalent(a: &Netlist, b: &Netlist) -> Result<(), String> {
    if a.node_count() != b.node_count() {
        return Err(format!("node counts differ: {} vs {}", a.node_count(), b.node_count()));
    }
    for id in a.node_ids() {
        match (a.kind(id), b.kind(id)) {
            (NodeKind::Input, NodeKind::Input) => {
                if a.name(id) != b.name(id) {
                    return Err(format!(
                        "input {id} names differ: {:?} vs {:?}",
                        a.name(id),
                        b.name(id)
                    ));
                }
            }
            (NodeKind::Const(x), NodeKind::Const(y)) => {
                if x != y {
                    return Err(format!("constant {id} values differ: {x} vs {y}"));
                }
            }
            (NodeKind::Gate { kind: k1, inputs: i1 }, NodeKind::Gate { kind: k2, inputs: i2 }) => {
                if k1 != k2 {
                    return Err(format!("gate {id} kinds differ: {k1:?} vs {k2:?}"));
                }
                if i1 != i2 {
                    return Err(format!("gate {id} fanins differ: {i1:?} vs {i2:?}"));
                }
            }
            (NodeKind::Dff { d: d1, init: n1 }, NodeKind::Dff { d: d2, init: n2 }) => {
                if d1 != d2 || n1 != n2 {
                    return Err(format!("dff {id} differs: d {d1}/{d2}, init {n1}/{n2}"));
                }
            }
            (x, y) => return Err(format!("node {id} kinds differ: {x:?} vs {y:?}")),
        }
        let ga = a.node_group(id).map(|g| a.group_name(g));
        let gb = b.node_group(id).map(|g| b.group_name(g));
        if ga != gb {
            return Err(format!("node {id} groups differ: {ga:?} vs {gb:?}"));
        }
    }
    if a.inputs() != b.inputs() {
        return Err("primary-input orders differ".to_string());
    }
    if a.outputs() != b.outputs() {
        return Err(format!("outputs differ: {:?} vs {:?}", a.outputs(), b.outputs()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniffing_prefers_extension_then_content() {
        assert_eq!(sniff_format(Some("x.v"), "(edif)"), SourceFormat::Verilog);
        assert_eq!(sniff_format(Some("x.EDF"), "module m;"), SourceFormat::Edif);
        assert_eq!(sniff_format(Some("x.nl"), "module m;"), SourceFormat::NativeNl);
        assert_eq!(sniff_format(None, "// hi\nmodule m;\nendmodule\n"), SourceFormat::Verilog);
        assert_eq!(sniff_format(None, "(edif top)"), SourceFormat::Edif);
        assert_eq!(sniff_format(None, "# c\ninput a\n"), SourceFormat::NativeNl);
        assert_eq!(sniff_format(Some("x.txt"), "(* keep *) module m; endmodule"), {
            SourceFormat::Verilog
        });
    }

    #[test]
    fn ingest_auto_round_trips_a_verilog_module() {
        let src = "module m (a, y);\n  input a;\n  output y;\n  not g (y, a);\nendmodule\n";
        let (fmt, nl) = ingest_auto(Some("inv.v"), src).expect("parses");
        assert_eq!(fmt, SourceFormat::Verilog);
        assert_eq!(nl.gate_count(), 1);
        let emitted = emit_verilog(&nl, "m");
        let back = parse_verilog(&emitted).expect("re-parses");
        structurally_equivalent(&nl, &back).expect("round trip");
    }
}
