//! A minimal s-expression reader used by the EDIF front-end.
//!
//! EDIF 2.0.0 files are Lisp-style nested lists of atoms and strings.
//! This reader produces a [`Sexpr`] tree in which every node carries the
//! 1-based [`Loc`] of its first character, so the EDIF interpreter can
//! attach precise positions to semantic errors long after lexing.

use crate::error::{NetlistError, SourceFormat};
use crate::ingest::lex::{Cursor, Loc};

/// One node of an s-expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sexpr {
    /// A bare atom: a keyword, identifier, or number, kept as written.
    Atom {
        /// The atom text, as written.
        text: String,
        /// Position of the atom's first character.
        loc: Loc,
    },
    /// A double-quoted string, with the quotes removed.
    Str {
        /// The string contents.
        text: String,
        /// Position of the opening quote.
        loc: Loc,
    },
    /// A parenthesized list.
    List {
        /// The list elements, in order.
        items: Vec<Sexpr>,
        /// Position of the opening parenthesis.
        loc: Loc,
    },
}

impl Sexpr {
    /// The source position of this node's first character.
    pub fn loc(&self) -> Loc {
        match self {
            Sexpr::Atom { loc, .. } | Sexpr::Str { loc, .. } | Sexpr::List { loc, .. } => *loc,
        }
    }

    /// The atom text if this node is an [`Sexpr::Atom`].
    pub fn atom(&self) -> Option<&str> {
        match self {
            Sexpr::Atom { text, .. } => Some(text),
            _ => None,
        }
    }

    /// The list elements if this node is an [`Sexpr::List`].
    pub fn list(&self) -> Option<&[Sexpr]> {
        match self {
            Sexpr::List { items, .. } => Some(items),
            _ => None,
        }
    }

    /// For a list whose head is an atom (the usual EDIF `(keyword ...)`
    /// shape), the lowercased head and the remaining elements.
    pub fn form(&self) -> Option<(String, &[Sexpr])> {
        let items = self.list()?;
        let head = items.first()?.atom()?;
        Some((head.to_ascii_lowercase(), &items[1..]))
    }

    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Sexpr::Atom { text, .. } => format!("atom `{text}`"),
            Sexpr::Str { text, .. } => format!("string \"{text}\""),
            Sexpr::List { items, .. } => match items.first().and_then(Sexpr::atom) {
                Some(head) => format!("({head} ...)"),
                None => "a list".to_string(),
            },
        }
    }
}

fn is_atom_char(c: char) -> bool {
    !c.is_whitespace() && c != '(' && c != ')' && c != '"'
}

/// Parses one toplevel s-expression (EDIF files are a single `(edif ...)`
/// form). Trailing whitespace after the form is allowed; any other
/// trailing text is an error.
///
/// # Errors
///
/// Returns [`NetlistError::ParseSyntax`] (format [`SourceFormat::Edif`])
/// for unbalanced parentheses, unterminated strings, or stray text.
pub fn parse_sexpr(src: &str) -> Result<Sexpr, NetlistError> {
    let mut cur = Cursor::new(src);
    let err = |cur: &Cursor, loc: Loc, message: String| NetlistError::ParseSyntax {
        format: SourceFormat::Edif,
        at: loc.src_loc(cur.src()),
        message,
    };

    fn skip_ws(cur: &mut Cursor) {
        while let Some(c) = cur.peek() {
            if c.is_whitespace() {
                cur.bump();
            } else {
                break;
            }
        }
    }

    fn node(cur: &mut Cursor, src: &str) -> Result<Sexpr, NetlistError> {
        let err = |loc: Loc, message: String| NetlistError::ParseSyntax {
            format: SourceFormat::Edif,
            at: loc.src_loc(src),
            message,
        };
        skip_ws(cur);
        let loc = cur.loc();
        match cur.peek() {
            None => Err(err(loc, "unexpected end of input".to_string())),
            Some('(') => {
                cur.bump();
                let mut items = Vec::new();
                loop {
                    skip_ws(cur);
                    match cur.peek() {
                        None => {
                            return Err(err(
                                loc,
                                "unbalanced parentheses: this list is never closed".to_string(),
                            ))
                        }
                        Some(')') => {
                            cur.bump();
                            break;
                        }
                        Some(_) => items.push(node(cur, src)?),
                    }
                }
                Ok(Sexpr::List { items, loc })
            }
            Some(')') => Err(err(loc, "unexpected `)`".to_string())),
            Some('"') => {
                cur.bump();
                let text = cur.take_while(|c| c != '"');
                if cur.peek() != Some('"') {
                    return Err(err(loc, "unterminated string literal".to_string()));
                }
                cur.bump();
                Ok(Sexpr::Str { text, loc })
            }
            Some(_) => {
                let text = cur.take_while(is_atom_char);
                Ok(Sexpr::Atom { text, loc })
            }
        }
    }

    skip_ws(&mut cur);
    if cur.peek().is_none() {
        return Err(err(&cur, cur.loc(), "empty input: expected an (edif ...) form".to_string()));
    }
    let root = node(&mut cur, src)?;
    skip_ws(&mut cur);
    if let Some(c) = cur.peek() {
        return Err(err(&cur, cur.loc(), format!("trailing text after the toplevel form: `{c}`")));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_lists_carry_positions() {
        let s = parse_sexpr("(edif top\n  (net (joined)))").expect("parses");
        let (head, rest) = s.form().expect("form");
        assert_eq!(head, "edif");
        assert_eq!(rest[0].atom(), Some("top"));
        let net = &rest[1];
        assert_eq!(net.loc(), Loc { line: 2, col: 3 });
        let (nh, nr) = net.form().expect("form");
        assert_eq!(nh, "net");
        assert_eq!(nr[0].form().expect("form").0, "joined");
    }

    #[test]
    fn strings_and_errors() {
        let s = parse_sexpr("(rename n_3 \"n[3]\")").expect("parses");
        let (_, rest) = s.form().expect("form");
        assert!(matches!(&rest[1], Sexpr::Str { text, .. } if text == "n[3]"));

        match parse_sexpr("(edif (cell x)").unwrap_err() {
            NetlistError::ParseSyntax { at, message, .. } => {
                assert_eq!((at.line, at.col), (1, 1));
                assert!(message.contains("never closed"), "{message}");
            }
            other => panic!("wrong variant: {other:?}"),
        }

        match parse_sexpr("(a) (b)").unwrap_err() {
            NetlistError::ParseSyntax { at, .. } => assert_eq!((at.line, at.col), (1, 5)),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
