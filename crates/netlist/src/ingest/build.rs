//! Shared lowering from a parsed instance network to a [`Netlist`].
//!
//! Both front-ends (Verilog and EDIF) reduce their input to the same
//! intermediate form — a list of named net *slots*, primary inputs, an
//! ordered list of [`BuildItem`]s, and primary outputs — and this module
//! turns that form into a [`Netlist`]. Centralizing the lowering gives
//! both parsers identical semantics for instance ordering, forward
//! references, flip-flop feedback, undriven-net detection, and
//! combinational-cycle reporting.
//!
//! Ordering contract: nodes are created in item order wherever possible
//! (inputs first, then items as listed), deferring an item only until its
//! fanins exist. Emit→parse round trips therefore reproduce the original
//! node-arena order, which is what makes packed-kernel activity records
//! comparable index-for-index across a round trip.

use crate::error::{NetlistError, SourceFormat, SrcLoc};
use crate::library::GateKind;
use crate::netlist::{Netlist, NodeId};

/// A reference to a net slot, with the source position of the reference
/// (used for undriven/cycle diagnostics).
#[derive(Debug, Clone)]
pub struct SlotRef {
    /// Index into the builder's slot table.
    pub slot: usize,
    /// Where the reference appears in the source.
    pub at: SrcLoc,
}

/// One ordered netlist-construction step produced by a front-end.
#[derive(Debug, Clone)]
pub enum BuildItem {
    /// A constant driver (`assign n = 1'b0;`, a tie cell).
    Const {
        /// The driven slot.
        slot: usize,
        /// The constant value.
        value: bool,
        /// Power-accounting group, if an attribute named one. Constants
        /// dedupe to one node per value, so a later grouped driver of
        /// the same value wins.
        group: Option<String>,
    },
    /// A combinational gate instance.
    Gate {
        /// The driven slot.
        slot: usize,
        /// The gate function.
        kind: GateKind,
        /// Fanin slots in pin order.
        ins: Vec<SlotRef>,
        /// Power-accounting group, if an attribute named one.
        group: Option<String>,
        /// Where the instance appears (for arity errors).
        at: SrcLoc,
    },
    /// A D flip-flop instance.
    Dff {
        /// The driven (Q) slot.
        slot: usize,
        /// The data-input slot.
        d: SlotRef,
        /// Power-on value.
        init: bool,
        /// Power-accounting group, if an attribute named one.
        group: Option<String>,
    },
    /// A pure alias (`assign dst = src;`): no node is created, the
    /// destination slot resolves to the source's node.
    Alias {
        /// The aliased slot.
        slot: usize,
        /// The slot it aliases.
        src: SlotRef,
    },
}

impl BuildItem {
    /// The slot this item drives.
    fn slot(&self) -> usize {
        match self {
            BuildItem::Const { slot, .. }
            | BuildItem::Gate { slot, .. }
            | BuildItem::Dff { slot, .. }
            | BuildItem::Alias { slot, .. } => *slot,
        }
    }
}

/// The complete intermediate form a front-end hands to [`build`].
#[derive(Debug, Clone, Default)]
pub struct BuildInput {
    /// Net-slot names, indexed by slot id (used in diagnostics and as
    /// node names).
    pub slot_names: Vec<String>,
    /// Primary inputs in declaration order: `(slot, group)`.
    pub inputs: Vec<(usize, Option<String>)>,
    /// Ordered construction steps.
    pub items: Vec<BuildItem>,
    /// Primary outputs in declaration order: `(name, slot, where)`.
    pub outputs: Vec<(String, SlotRef)>,
}

/// Lowers a front-end's intermediate form into a [`Netlist`].
///
/// # Errors
///
/// * [`NetlistError::ParseUndriven`] — an instance pin or output reads a
///   slot no item drives.
/// * [`NetlistError::ParseSyntax`] — the instances form a combinational
///   cycle (construction is impossible because gate fanins must exist
///   first), or a gate's pin count violates its kind's arity.
pub fn build(format: SourceFormat, input: BuildInput) -> Result<Netlist, NetlistError> {
    let BuildInput { slot_names, inputs, items, outputs } = input;
    let mut nl = Netlist::new();
    let mut resolved: Vec<Option<NodeId>> = vec![None; slot_names.len()];
    let mut driven: Vec<bool> = vec![false; slot_names.len()];
    for item in &items {
        driven[item.slot()] = true;
    }
    for &(slot, ref group) in &inputs {
        let id = nl.input(slot_names[slot].clone());
        if let Some(g) = group {
            let gid = nl.group(g.clone());
            nl.set_node_group(id, gid);
        }
        resolved[slot] = Some(id);
        driven[slot] = true;
    }

    // Create nodes in item order, deferring an item only while a fanin
    // slot is still unresolved. Flip-flops never defer: their D pin is
    // patched afterwards (that is how sequential feedback parses).
    let mut dff_fixups: Vec<(NodeId, SlotRef)> = Vec::new();
    let mut pending: Vec<BuildItem> = items;
    loop {
        let mut progressed = false;
        let mut still: Vec<BuildItem> = Vec::with_capacity(pending.len());
        for item in pending {
            let ready = match &item {
                BuildItem::Const { .. } | BuildItem::Dff { .. } => true,
                BuildItem::Gate { ins, .. } => ins.iter().all(|r| resolved[r.slot].is_some()),
                BuildItem::Alias { src, .. } => resolved[src.slot].is_some(),
            };
            if !ready {
                still.push(item);
                continue;
            }
            progressed = true;
            match item {
                BuildItem::Const { slot, value, group } => {
                    let id = nl.constant(value);
                    nl.set_name(id, slot_names[slot].clone());
                    if let Some(g) = group {
                        let gid = nl.group(g);
                        nl.set_node_group(id, gid);
                    }
                    resolved[slot] = Some(id);
                }
                BuildItem::Gate { slot, kind, ins, group, at } => {
                    let fanins: Vec<NodeId> =
                        ins.iter().map(|r| resolved[r.slot].expect("checked ready")).collect();
                    let id = nl.gate(kind, fanins).map_err(|e| NetlistError::ParseSyntax {
                        format,
                        at,
                        message: e.to_string(),
                    })?;
                    nl.set_name(id, slot_names[slot].clone());
                    if let Some(g) = group {
                        let gid = nl.group(g);
                        nl.set_node_group(id, gid);
                    }
                    resolved[slot] = Some(id);
                }
                BuildItem::Dff { slot, d, init, group } => {
                    let id = nl.dff_placeholder(init);
                    nl.set_name(id, slot_names[slot].clone());
                    if let Some(g) = group {
                        let gid = nl.group(g);
                        nl.set_node_group(id, gid);
                    }
                    resolved[slot] = Some(id);
                    dff_fixups.push((id, d));
                }
                BuildItem::Alias { slot, src } => {
                    resolved[slot] = Some(resolved[src.slot].expect("checked ready"));
                }
            }
        }
        if still.is_empty() {
            break;
        }
        if !progressed {
            // No item could make progress: the first blocked item either
            // reads a net nothing drives, or sits on a combinational
            // cycle (every fanin is driven, but only by blocked items).
            let (refs, slot_of) = match &still[0] {
                BuildItem::Gate { ins, slot, .. } => (ins.clone(), *slot),
                BuildItem::Alias { src, slot } => (vec![src.clone()], *slot),
                _ => unreachable!("consts and dffs are always ready"),
            };
            let blocked =
                refs.iter().find(|r| resolved[r.slot].is_none()).expect("item was not ready");
            if !driven[blocked.slot] {
                return Err(NetlistError::ParseUndriven {
                    format,
                    at: blocked.at.clone(),
                    name: slot_names[blocked.slot].clone(),
                });
            }
            return Err(NetlistError::ParseSyntax {
                format,
                at: blocked.at.clone(),
                message: format!(
                    "instances form a combinational cycle through net '{}' (driving '{}'); \
                     only flip-flops may close feedback loops",
                    slot_names[blocked.slot], slot_names[slot_of]
                ),
            });
        }
        pending = still;
    }

    for (q, d) in dff_fixups {
        let id = resolved[d.slot].ok_or_else(|| NetlistError::ParseUndriven {
            format,
            at: d.at.clone(),
            name: slot_names[d.slot].clone(),
        })?;
        nl.connect_dff_d(q, id);
    }
    for (name, slot_ref) in outputs {
        let id = resolved[slot_ref.slot].ok_or_else(|| NetlistError::ParseUndriven {
            format,
            at: slot_ref.at.clone(),
            name: slot_names[slot_ref.slot].clone(),
        })?;
        nl.set_output(name, id);
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NodeKind;

    fn loc(line: usize, col: usize) -> SrcLoc {
        SrcLoc { line, col, snippet: String::new() }
    }

    fn slot_ref(slot: usize, line: usize) -> SlotRef {
        SlotRef { slot, at: loc(line, 1) }
    }

    #[test]
    fn forward_references_resolve_out_of_order() {
        // y = and(w, a) appears before w = not(a): the builder defers it.
        let input = BuildInput {
            slot_names: vec!["a".into(), "w".into(), "y".into()],
            inputs: vec![(0, None)],
            items: vec![
                BuildItem::Gate {
                    slot: 2,
                    kind: GateKind::And,
                    ins: vec![slot_ref(1, 1), slot_ref(0, 1)],
                    group: None,
                    at: loc(1, 1),
                },
                BuildItem::Gate {
                    slot: 1,
                    kind: GateKind::Not,
                    ins: vec![slot_ref(0, 2)],
                    group: None,
                    at: loc(2, 1),
                },
            ],
            outputs: vec![("y".into(), slot_ref(2, 3))],
        };
        let nl = build(SourceFormat::Verilog, input).expect("builds");
        assert_eq!(nl.gate_count(), 2);
        // The NOT was created first (the AND deferred until `w` existed).
        assert!(matches!(nl.kind(NodeId(1)), NodeKind::Gate { kind: GateKind::Not, .. }));
    }

    #[test]
    fn dff_feedback_builds() {
        // q = dff(xor(q, en)).
        let input = BuildInput {
            slot_names: vec!["en".into(), "q".into(), "d".into()],
            inputs: vec![(0, None)],
            items: vec![
                BuildItem::Dff { slot: 1, d: slot_ref(2, 1), init: true, group: None },
                BuildItem::Gate {
                    slot: 2,
                    kind: GateKind::Xor,
                    ins: vec![slot_ref(1, 2), slot_ref(0, 2)],
                    group: None,
                    at: loc(2, 1),
                },
            ],
            outputs: vec![("q".into(), slot_ref(1, 3))],
        };
        let nl = build(SourceFormat::Edif, input).expect("builds");
        assert_eq!(nl.dffs().len(), 1);
        match nl.kind(nl.dffs()[0]) {
            NodeKind::Dff { init, .. } => assert!(*init),
            other => panic!("not a dff: {other:?}"),
        }
    }

    #[test]
    fn undriven_and_cycle_diagnostics() {
        let undriven = BuildInput {
            slot_names: vec!["a".into(), "ghost".into(), "y".into()],
            inputs: vec![(0, None)],
            items: vec![BuildItem::Gate {
                slot: 2,
                kind: GateKind::And,
                ins: vec![slot_ref(0, 4), SlotRef { slot: 1, at: loc(4, 9) }],
                group: None,
                at: loc(4, 1),
            }],
            outputs: vec![("y".into(), slot_ref(2, 5))],
        };
        match build(SourceFormat::Verilog, undriven).unwrap_err() {
            NetlistError::ParseUndriven { at, name, .. } => {
                assert_eq!((at.line, at.col), (4, 9));
                assert_eq!(name, "ghost");
            }
            other => panic!("wrong variant: {other:?}"),
        }

        // x = not(y); y = not(x): a gate-only loop.
        let cyclic = BuildInput {
            slot_names: vec!["x".into(), "y".into()],
            inputs: vec![],
            items: vec![
                BuildItem::Gate {
                    slot: 0,
                    kind: GateKind::Not,
                    ins: vec![SlotRef { slot: 1, at: loc(1, 5) }],
                    group: None,
                    at: loc(1, 1),
                },
                BuildItem::Gate {
                    slot: 1,
                    kind: GateKind::Not,
                    ins: vec![SlotRef { slot: 0, at: loc(2, 5) }],
                    group: None,
                    at: loc(2, 1),
                },
            ],
            outputs: vec![],
        };
        match build(SourceFormat::Verilog, cyclic).unwrap_err() {
            NetlistError::ParseSyntax { at, message, .. } => {
                assert_eq!(at.line, 1);
                assert!(message.contains("combinational cycle"), "{message}");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
