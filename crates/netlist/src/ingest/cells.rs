//! Library-cell name mapping shared by the Verilog and EDIF front-ends.
//!
//! External netlists name cells after vendor libraries (`AND2`, `NAND3X2`,
//! `INV`, `DFFQ`, ...). This module maps those names onto the synthetic
//! library's [`GateKind`]s plus the flip-flop and constant-tie pseudo
//! cells, using one documented rule (see `docs/FORMATS.md` §"Cell-name
//! mapping"): names are matched case-insensitively, and a trailing
//! arity/drive-strength suffix (`2`, `3`, `X1`, `X4`, ...) is stripped
//! before matching.

use crate::library::GateKind;

/// The function of a recognized library cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFunc {
    /// A combinational gate of the given kind.
    Gate(GateKind),
    /// A rising-edge D flip-flop (ports `D`, `Q`, optional ignored clock).
    Dff,
    /// A constant driver (`TIE0`/`GND`/`VSS` or `TIE1`/`VCC`/`VDD`).
    Const(bool),
}

/// Maps a cell (module) name to its function, or `None` if the name is
/// not in the supported vocabulary.
///
/// Matching is case-insensitive. A trailing drive-strength suffix
/// (`X<digits>` or `_<digits>`) and then a trailing arity suffix
/// (`<digits>`) are stripped before matching, so `NAND3X2`, `nand4`,
/// and `NAND` all map to [`GateKind::Nand`]. Tie cells are matched
/// before stripping (so the `0`/`1` in `TIE0`/`TIE1` survives).
pub fn cell_func(name: &str) -> Option<CellFunc> {
    fn base_func(base: &str) -> Option<CellFunc> {
        let func = match base {
            "BUF" | "BUFF" | "BUFFER" => CellFunc::Gate(GateKind::Buf),
            "NOT" | "INV" | "INVERTER" => CellFunc::Gate(GateKind::Not),
            "AND" => CellFunc::Gate(GateKind::And),
            "OR" => CellFunc::Gate(GateKind::Or),
            "NAND" => CellFunc::Gate(GateKind::Nand),
            "NOR" => CellFunc::Gate(GateKind::Nor),
            "XOR" | "EXOR" => CellFunc::Gate(GateKind::Xor),
            "XNOR" | "EXNOR" => CellFunc::Gate(GateKind::Xnor),
            "MUX" => CellFunc::Gate(GateKind::Mux),
            "DFF" | "DFFQ" | "FD" | "REG" => CellFunc::Dff,
            _ => return None,
        };
        Some(func)
    }
    let upper = name.to_ascii_uppercase();
    // Constant ties first: their digits are semantic, not an arity suffix.
    match upper.as_str() {
        "TIE0" | "GND" | "VSS" | "LOGIC0" | "ZERO" => return Some(CellFunc::Const(false)),
        "TIE1" | "VCC" | "VDD" | "LOGIC1" | "ONE" => return Some(CellFunc::Const(true)),
        _ => {}
    }
    // First strip a trailing arity suffix (`AND2`, `MUX21` -> `MUX`) and
    // try the base name; if that misses and the remainder ends in a
    // drive-strength separator (`NAND3X2` -> `NAND3X`, `INVX1` -> `INVX`),
    // strip it and one more arity suffix and try again.
    let base = upper.trim_end_matches(|c: char| c.is_ascii_digit());
    if let Some(func) = base_func(base) {
        return Some(func);
    }
    let stripped = base.strip_suffix('X').or_else(|| base.strip_suffix('_'))?;
    base_func(stripped.trim_end_matches(|c: char| c.is_ascii_digit()))
}

/// The role a named cell port plays, as resolved by [`port_role`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRole {
    /// A gate data input with the given pin position (0-based).
    Input(usize),
    /// The (single) cell output.
    Output,
    /// The mux select pin (pin 0 of [`GateKind::Mux`]).
    Select,
    /// The flip-flop data pin.
    DffD,
    /// The flip-flop output pin.
    DffQ,
    /// A clock pin, accepted and ignored (single implicit clock domain).
    Clock,
}

/// Resolves a named port of a recognized cell to its pin role, or `None`
/// if the port name is not in the documented vocabulary for that cell.
///
/// Gate inputs accept single letters `A`..`X` (alphabetical pin order) or
/// indexed forms `A0`/`I0`/`IN0`/`D0` (index order). Outputs accept `Y`,
/// `Z`, `O`, `OUT`, `Q`. Mux selects accept `S`/`SEL`; mux data pins `A`/
/// `B` or `D0`/`D1` or `I0`/`I1`. Flip-flops use `D`, `Q`, and a clock
/// pin named `CK`/`CLK`/`C`/`CP`/`G` that is accepted and ignored.
pub fn port_role(func: CellFunc, port: &str) -> Option<PortRole> {
    let p = port.to_ascii_uppercase();
    match func {
        CellFunc::Const(_) => match p.as_str() {
            "Y" | "Z" | "O" | "OUT" | "Q" => Some(PortRole::Output),
            _ => None,
        },
        CellFunc::Dff => match p.as_str() {
            "D" => Some(PortRole::DffD),
            "Q" => Some(PortRole::DffQ),
            "CK" | "CLK" | "C" | "CP" | "G" => Some(PortRole::Clock),
            _ => None,
        },
        CellFunc::Gate(GateKind::Mux) => match p.as_str() {
            "S" | "SEL" => Some(PortRole::Select),
            "A" | "D0" | "I0" => Some(PortRole::Input(0)),
            "B" | "D1" | "I1" => Some(PortRole::Input(1)),
            "Y" | "Z" | "O" | "OUT" => Some(PortRole::Output),
            _ => None,
        },
        CellFunc::Gate(_) => {
            match p.as_str() {
                "Y" | "Z" | "O" | "OUT" => return Some(PortRole::Output),
                _ => {}
            }
            let mut chars = p.chars();
            let head = chars.next()?;
            let tail: String = chars.collect();
            if tail.is_empty() {
                // Single letters A..X are inputs in alphabetical pin order
                // (Y/Z/O were claimed by the output above).
                if head.is_ascii_uppercase() {
                    return Some(PortRole::Input((head as u8 - b'A') as usize));
                }
                return None;
            }
            // Indexed pins: A<k>, I<k>, IN<k>, D<k>.
            let (prefix, digits) = if let Some(d) = p.strip_prefix("IN") {
                ("IN", d)
            } else if let Some(d) = p.strip_prefix('A') {
                ("A", d)
            } else if let Some(d) = p.strip_prefix('I') {
                ("I", d)
            } else if let Some(d) = p.strip_prefix('D') {
                ("D", d)
            } else {
                return None;
            };
            let _ = prefix;
            digits.parse::<usize>().ok().map(PortRole::Input)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_map_case_insensitively_with_suffixes() {
        assert_eq!(cell_func("AND2"), Some(CellFunc::Gate(GateKind::And)));
        assert_eq!(cell_func("nand3"), Some(CellFunc::Gate(GateKind::Nand)));
        assert_eq!(cell_func("NAND3X2"), Some(CellFunc::Gate(GateKind::Nand)));
        assert_eq!(cell_func("INVX1"), Some(CellFunc::Gate(GateKind::Not)));
        assert_eq!(cell_func("Mux2"), Some(CellFunc::Gate(GateKind::Mux)));
        assert_eq!(cell_func("MUX21"), Some(CellFunc::Gate(GateKind::Mux)));
        assert_eq!(cell_func("dff"), Some(CellFunc::Dff));
        assert_eq!(cell_func("TIE0"), Some(CellFunc::Const(false)));
        assert_eq!(cell_func("VDD"), Some(CellFunc::Const(true)));
        assert_eq!(cell_func("RAM32"), None);
    }

    #[test]
    fn port_roles_resolve() {
        let and = CellFunc::Gate(GateKind::And);
        assert_eq!(port_role(and, "A"), Some(PortRole::Input(0)));
        assert_eq!(port_role(and, "B"), Some(PortRole::Input(1)));
        assert_eq!(port_role(and, "IN3"), Some(PortRole::Input(3)));
        assert_eq!(port_role(and, "Y"), Some(PortRole::Output));
        let mux = CellFunc::Gate(GateKind::Mux);
        assert_eq!(port_role(mux, "S"), Some(PortRole::Select));
        assert_eq!(port_role(mux, "D1"), Some(PortRole::Input(1)));
        assert_eq!(port_role(CellFunc::Dff, "CLK"), Some(PortRole::Clock));
        assert_eq!(port_role(CellFunc::Dff, "RST"), None);
    }
}
