//! Structural-Verilog front-end.
//!
//! Parses the gate-level subset specified in `docs/FORMATS.md`: one
//! `module` with scalar/vector `input`/`output`/`wire` declarations,
//! gate-primitive instantiations (`and`, `or`, `nand`, `nor`, `xor`,
//! `xnor`, `not`, `buf`), library-cell instantiations resolved through
//! [`super::cells::cell_func`] (including `DFF` and `MUX2` with named
//! ports), alias/constant `assign`s, and `(* group = "..." *)` /
//! `(* init = 1'b1 *)` attributes. Everything else is rejected with a
//! structured [`NetlistError`] carrying line, column, and a snippet.

use std::collections::HashMap;

use crate::error::{NetlistError, SourceFormat, SrcLoc};
use crate::ingest::build::{self, BuildInput, BuildItem, SlotRef};
use crate::ingest::cells::{cell_func, port_role, CellFunc, PortRole};
use crate::ingest::lex::{tokenize_verilog, Loc, Tok, Token};
use crate::netlist::Netlist;

const FORMAT: SourceFormat = SourceFormat::Verilog;

/// Parses the structural-Verilog subset into a [`Netlist`].
///
/// # Errors
///
/// Every rejection is a structured [`NetlistError`] parse variant with
/// line/column and a source snippet; `docs/FORMATS.md` specifies which
/// violation raises which variant.
pub fn parse_verilog(src: &str) -> Result<Netlist, NetlistError> {
    let toks = tokenize_verilog(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    let ast = p.parse_module()?;
    lower(src, ast)
}

/// A net reference: a scalar name or one bit of a vector.
#[derive(Debug, Clone)]
struct NetRef {
    base: String,
    bit: Option<u64>,
    loc: Loc,
}

/// A pin/assign connection.
#[derive(Debug, Clone)]
enum Conn {
    Net(NetRef),
    Const(bool, Loc),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Input,
    Output,
    Wire,
}

/// Attributes collected from `(* ... *)` before an item.
#[derive(Debug, Clone, Default)]
struct Attrs {
    group: Option<String>,
    init: Option<bool>,
}

#[derive(Debug, Clone)]
enum Item {
    Decl { dir: Dir, range: Option<(u64, u64)>, names: Vec<(String, Loc)>, attrs: Attrs },
    Assign { lhs: NetRef, rhs: Conn },
    Inst { cell: String, cell_loc: Loc, conns: Conns, attrs: Attrs },
}

#[derive(Debug, Clone)]
enum Conns {
    Positional(Vec<Conn>),
    Named(Vec<(String, Loc, Conn)>),
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn src_loc(&self, loc: Loc) -> SrcLoc {
        loc.src_loc(self.src)
    }

    fn syntax(&self, loc: Loc, message: String) -> NetlistError {
        NetlistError::ParseSyntax { format: FORMAT, at: self.src_loc(loc), message }
    }

    fn unsupported(&self, loc: Loc, construct: &str) -> NetlistError {
        NetlistError::ParseUnsupported {
            format: FORMAT,
            at: self.src_loc(loc),
            construct: construct.to_string(),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<Loc, NetlistError> {
        let t = self.bump();
        if t.tok == Tok::Punct(c) {
            Ok(t.loc)
        } else {
            Err(self.syntax(t.loc, format!("expected `{c}`, found {}", t.tok.describe())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Loc), NetlistError> {
        let t = self.bump();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.loc)),
            other => {
                Err(self.syntax(t.loc, format!("expected {what}, found {}", other.describe())))
            }
        }
    }

    fn expect_num(&mut self, what: &str) -> Result<(u64, Loc), NetlistError> {
        let t = self.bump();
        match t.tok {
            Tok::Num(n) => Ok((n, t.loc)),
            other => {
                Err(self.syntax(t.loc, format!("expected {what}, found {}", other.describe())))
            }
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek().tok == Tok::Punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Parses `(* name = value, ... *)` groups into an [`Attrs`].
    fn parse_attrs(&mut self) -> Result<Attrs, NetlistError> {
        let mut attrs = Attrs::default();
        while self.peek().tok == Tok::AttrOpen {
            self.bump();
            loop {
                let (name, nloc) = self.expect_ident("attribute name")?;
                let value = if self.eat_punct('=') {
                    let t = self.bump();
                    match t.tok {
                        Tok::Str(s) => AttrValue::Str(s),
                        Tok::Num(n) => AttrValue::Bit(n != 0),
                        Tok::Based(b) => AttrValue::Bit(parse_based_bit(&b).ok_or_else(|| {
                            self.syntax(t.loc, format!("attribute literal `{b}` is not 1'b0/1'b1"))
                        })?),
                        other => {
                            return Err(self.syntax(
                                t.loc,
                                format!("expected attribute value, found {}", other.describe()),
                            ))
                        }
                    }
                } else {
                    AttrValue::Bit(true)
                };
                match (name.as_str(), value) {
                    ("group", AttrValue::Str(s)) => attrs.group = Some(s),
                    ("group", AttrValue::Bit(_)) => {
                        return Err(self.syntax(
                            nloc,
                            "the `group` attribute takes a string value".to_string(),
                        ))
                    }
                    ("init", AttrValue::Bit(b)) => attrs.init = Some(b),
                    ("init", AttrValue::Str(_)) => {
                        return Err(self
                            .syntax(nloc, "the `init` attribute takes 1'b0 or 1'b1".to_string()))
                    }
                    // Unknown attributes are accepted and ignored.
                    _ => {}
                }
                if !self.eat_punct(',') {
                    break;
                }
            }
            let t = self.bump();
            if t.tok != Tok::AttrClose {
                return Err(
                    self.syntax(t.loc, format!("expected `*)`, found {}", t.tok.describe()))
                );
            }
        }
        Ok(attrs)
    }

    fn parse_net_ref(&mut self) -> Result<NetRef, NetlistError> {
        let (base, loc) = self.expect_ident("a net name")?;
        let bit = if self.eat_punct('[') {
            let (n, _) = self.expect_num("a bit index")?;
            self.expect_punct(']')?;
            Some(n)
        } else {
            None
        };
        Ok(NetRef { base, bit, loc })
    }

    fn parse_conn(&mut self) -> Result<Conn, NetlistError> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Based(ref b) => {
                let bit = parse_based_bit(b).ok_or_else(|| {
                    self.syntax(
                        t.loc,
                        format!("literal `{b}` is not supported; only 1'b0 and 1'b1 connect"),
                    )
                })?;
                self.bump();
                Ok(Conn::Const(bit, t.loc))
            }
            Tok::Ident(_) => Ok(Conn::Net(self.parse_net_ref()?)),
            ref other => {
                Err(self
                    .syntax(t.loc, format!("expected a connection, found {}", other.describe())))
            }
        }
    }

    fn parse_module(&mut self) -> Result<Vec<Item>, NetlistError> {
        // Attributes on the module itself are accepted and ignored.
        self.parse_attrs()?;
        let (kw, kloc) = self.expect_ident("`module`")?;
        if kw != "module" {
            return Err(self.syntax(kloc, format!("expected `module`, found `{kw}`")));
        }
        let _ = self.expect_ident("the module name")?;
        // The header port list only repeats names that must be declared
        // with `input`/`output` in the body; it is parsed and discarded.
        if self.eat_punct('(') {
            if self.peek().tok != Tok::Punct(')') {
                loop {
                    self.expect_ident("a port name")?;
                    if !self.eat_punct(',') {
                        break;
                    }
                }
            }
            self.expect_punct(')')?;
        }
        self.expect_punct(';')?;

        let mut items = Vec::new();
        loop {
            let attrs = self.parse_attrs()?;
            let t = self.peek().clone();
            let (word, loc) = match t.tok {
                Tok::Ident(ref s) => (s.clone(), t.loc),
                Tok::Eof => {
                    return Err(
                        self.syntax(t.loc, "expected `endmodule`, found end of input".into())
                    )
                }
                ref other => {
                    return Err(self.syntax(
                        t.loc,
                        format!("expected a statement, found {}", other.describe()),
                    ))
                }
            };
            match word.as_str() {
                "endmodule" => {
                    self.bump();
                    break;
                }
                "input" | "output" | "wire" | "reg" => {
                    self.bump();
                    let dir = match word.as_str() {
                        "input" => Dir::Input,
                        "output" => Dir::Output,
                        _ => Dir::Wire,
                    };
                    let range = if self.eat_punct('[') {
                        let (msb, _) = self.expect_num("the range msb")?;
                        self.expect_punct(':')?;
                        let (lsb, _) = self.expect_num("the range lsb")?;
                        self.expect_punct(']')?;
                        Some((msb.min(lsb), msb.max(lsb)))
                    } else {
                        None
                    };
                    let mut names = Vec::new();
                    loop {
                        let (n, nloc) = self.expect_ident("a net name")?;
                        names.push((n, nloc));
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct(';')?;
                    items.push(Item::Decl { dir, range, names, attrs });
                }
                "inout" => return Err(self.unsupported(loc, "inout ports")),
                "assign" => {
                    self.bump();
                    let lhs = self.parse_net_ref()?;
                    self.expect_punct('=')?;
                    let rhs = self.parse_conn()?;
                    // Any operator after the rhs means an expression.
                    if self.peek().tok != Tok::Punct(';') {
                        let t = self.peek().clone();
                        return Err(self.unsupported(
                            t.loc,
                            "expressions in assign (only aliases and 1'b0/1'b1 constants)",
                        ));
                    }
                    self.expect_punct(';')?;
                    items.push(Item::Assign { lhs, rhs });
                }
                "always" | "initial" | "always_ff" | "always_comb" => {
                    return Err(self.unsupported(loc, "behavioral blocks (always/initial)"))
                }
                "specify" | "primitive" | "task" | "function" | "generate" => {
                    return Err(self.unsupported(loc, "non-structural module items"))
                }
                "parameter" | "localparam" | "defparam" => {
                    return Err(self.unsupported(loc, "parameter declarations"))
                }
                "module" | "macromodule" => {
                    return Err(self.unsupported(loc, "more than one module per file"))
                }
                _ => {
                    // A gate-primitive or library-cell instantiation.
                    self.bump();
                    if self.peek().tok == Tok::Punct('#') {
                        let t = self.peek().clone();
                        return Err(self.unsupported(t.loc, "parameter/delay lists (`#`)"));
                    }
                    // Optional instance name (required in real netlists,
                    // optional on primitives).
                    if let Tok::Ident(_) = self.peek().tok {
                        self.bump();
                    }
                    self.expect_punct('(')?;
                    let conns = if self.peek().tok == Tok::Punct('.') {
                        let mut named = Vec::new();
                        loop {
                            self.expect_punct('.')?;
                            let (port, ploc) = self.expect_ident("a port name")?;
                            self.expect_punct('(')?;
                            if self.peek().tok == Tok::Punct(')') {
                                let t = self.peek().clone();
                                return Err(self.unsupported(t.loc, "unconnected pins"));
                            }
                            let conn = self.parse_conn()?;
                            self.expect_punct(')')?;
                            named.push((port, ploc, conn));
                            if !self.eat_punct(',') {
                                break;
                            }
                        }
                        Conns::Named(named)
                    } else {
                        let mut conns = Vec::new();
                        loop {
                            conns.push(self.parse_conn()?);
                            if !self.eat_punct(',') {
                                break;
                            }
                        }
                        Conns::Positional(conns)
                    };
                    self.expect_punct(')')?;
                    self.expect_punct(';')?;
                    items.push(Item::Inst { cell: word, cell_loc: loc, conns, attrs });
                }
            }
        }
        let t = self.peek().clone();
        if t.tok != Tok::Eof {
            return Err(self.unsupported(t.loc, "more than one module per file"));
        }
        Ok(items)
    }
}

enum AttrValue {
    Str(String),
    Bit(bool),
}

fn parse_based_bit(b: &str) -> Option<bool> {
    match b {
        "1'b0" | "1'B0" | "1'h0" | "1'd0" => Some(false),
        "1'b1" | "1'B1" | "1'h1" | "1'd1" => Some(true),
        _ => None,
    }
}

/// A declared net in the symbol table.
struct Decl {
    dir: Dir,
    range: Option<(u64, u64)>,
    /// Slot ids: `slots[i]` is bit `range.0 + i` (or the scalar slot).
    slots: Vec<usize>,
}

/// Semantic lowering: declarations + instances -> [`BuildInput`] -> netlist.
fn lower(src: &str, items: Vec<Item>) -> Result<Netlist, NetlistError> {
    let src_loc = |loc: Loc| loc.src_loc(src);
    let syntax = |loc: Loc, message: String| NetlistError::ParseSyntax {
        format: FORMAT,
        at: src_loc(loc),
        message,
    };

    let mut slot_names: Vec<String> = Vec::new();
    let mut decls: HashMap<String, Decl> = HashMap::new();
    let mut decl_order: Vec<(String, Loc)> = Vec::new();

    // Pass 1: register every declaration (declarations may legally follow
    // the instances that use them).
    for item in &items {
        let Item::Decl { dir, range, names, attrs: _ } = item else { continue };
        for (name, nloc) in names {
            if decls.contains_key(name) {
                return Err(syntax(*nloc, format!("net '{name}' is declared twice")));
            }
            let slots: Vec<usize> = match range {
                None => {
                    slot_names.push(name.clone());
                    vec![slot_names.len() - 1]
                }
                Some((lo, hi)) => (*lo..=*hi)
                    .map(|i| {
                        slot_names.push(format!("{name}[{i}]"));
                        slot_names.len() - 1
                    })
                    .collect(),
            };
            decls.insert(name.clone(), Decl { dir: *dir, range: *range, slots });
            decl_order.push((name.clone(), *nloc));
        }
    }

    // Resolves a net reference to its slot.
    let resolve = |decls: &HashMap<String, Decl>, r: &NetRef| -> Result<usize, NetlistError> {
        let decl = decls.get(&r.base).ok_or_else(|| NetlistError::ParseUnknownName {
            format: FORMAT,
            at: src_loc(r.loc),
            name: r.base.clone(),
        })?;
        match (r.bit, decl.range) {
            (None, None) => Ok(decl.slots[0]),
            (Some(b), Some((lo, hi))) => {
                if b < lo || b > hi {
                    Err(syntax(
                        r.loc,
                        format!(
                            "bit-select {}[{b}] is outside the declared range [{hi}:{lo}]",
                            r.base
                        ),
                    ))
                } else {
                    Ok(decl.slots[(b - lo) as usize])
                }
            }
            (Some(b), None) => {
                Err(syntax(r.loc, format!("bit-select {}[{b}] on scalar net '{}'", r.base, r.base)))
            }
            (None, Some(_)) => Err(NetlistError::ParseUnsupported {
                format: FORMAT,
                at: src_loc(r.loc),
                construct: format!(
                    "whole-vector reference to '{}' (connect individual bits)",
                    r.base
                ),
            }),
        }
    };

    // Driver bookkeeping for ParseMultipleDrivers.
    let mut driver: Vec<Option<SrcLoc>> = vec![None; slot_names.len()];
    let claim =
        |driver: &mut Vec<Option<SrcLoc>>, slot: usize, loc: Loc| -> Result<(), NetlistError> {
            if driver[slot].is_some() {
                return Err(NetlistError::ParseMultipleDrivers {
                    format: FORMAT,
                    at: src_loc(loc),
                    name: slot_names[slot].clone(),
                });
            }
            driver[slot] = Some(src_loc(loc));
            Ok(())
        };

    let mut input = BuildInput { slot_names: slot_names.clone(), ..BuildInput::default() };

    // Inputs, in declaration order (this fixes the primary-input order).
    for item in &items {
        let Item::Decl { dir: Dir::Input, names, attrs, .. } = item else { continue };
        for (name, nloc) in names {
            let decl = &decls[name];
            for &slot in &decl.slots {
                claim(&mut driver, slot, *nloc)?;
                input.inputs.push((slot, attrs.group.clone()));
            }
        }
    }

    // Inline 1'b0/1'b1 connections share one hidden slot per value,
    // created at first use so arena order tracks textual order.
    let mut const_slots: [Option<usize>; 2] = [None, None];

    // Pass 2: instances and assigns, in textual order.
    for item in &items {
        match item {
            Item::Decl { .. } => {}
            Item::Assign { lhs, rhs } => {
                let slot = resolve(&decls, lhs)?;
                claim(&mut driver, slot, lhs.loc)?;
                match rhs {
                    Conn::Const(v, _) => {
                        input.items.push(BuildItem::Const { slot, value: *v, group: None })
                    }
                    Conn::Net(r) => {
                        let sref = SlotRef { slot: resolve(&decls, r)?, at: src_loc(r.loc) };
                        input.items.push(BuildItem::Alias { slot, src: sref });
                    }
                }
            }
            Item::Inst { cell, cell_loc, conns, attrs } => {
                let func = cell_func(cell).ok_or_else(|| NetlistError::ParseUnknownCell {
                    format: FORMAT,
                    at: src_loc(*cell_loc),
                    cell: cell.clone(),
                })?;
                let pins = resolve_pins(src, func, cell, *cell_loc, conns)?;
                // An inline-constant fanin materializes the hidden slot.
                let mut ins = Vec::with_capacity(pins.ins.len());
                for conn in pins.ins {
                    match conn {
                        Conn::Net(r) => {
                            ins.push(SlotRef { slot: resolve(&decls, &r)?, at: src_loc(r.loc) })
                        }
                        Conn::Const(v, loc) => {
                            let idx = v as usize;
                            let slot = match const_slots[idx] {
                                Some(s) => s,
                                None => {
                                    input.slot_names.push(format!("1'b{}", idx));
                                    let s = input.slot_names.len() - 1;
                                    const_slots[idx] = Some(s);
                                    input.items.push(BuildItem::Const {
                                        slot: s,
                                        value: v,
                                        group: None,
                                    });
                                    s
                                }
                            };
                            ins.push(SlotRef { slot, at: src_loc(loc) });
                        }
                    }
                }
                let out = resolve(&decls, &pins.out)?;
                claim(&mut driver, out, pins.out.loc)?;
                match func {
                    CellFunc::Gate(kind) => input.items.push(BuildItem::Gate {
                        slot: out,
                        kind,
                        ins,
                        group: attrs.group.clone(),
                        at: src_loc(*cell_loc),
                    }),
                    CellFunc::Dff => input.items.push(BuildItem::Dff {
                        slot: out,
                        d: ins.into_iter().next().expect("resolve_pins guarantees a D pin"),
                        init: attrs.init.unwrap_or(false),
                        group: attrs.group.clone(),
                    }),
                    CellFunc::Const(v) => input.items.push(BuildItem::Const {
                        slot: out,
                        value: v,
                        group: attrs.group.clone(),
                    }),
                }
            }
        }
    }

    // Outputs, in declaration order, vectors LSB-first.
    for (name, nloc) in &decl_order {
        let decl = &decls[name];
        if decl.dir != Dir::Output {
            continue;
        }
        match decl.range {
            None => input
                .outputs
                .push((name.clone(), SlotRef { slot: decl.slots[0], at: src_loc(*nloc) })),
            Some((lo, _)) => {
                for (i, &slot) in decl.slots.iter().enumerate() {
                    let bit = lo + i as u64;
                    input
                        .outputs
                        .push((format!("{name}[{bit}]"), SlotRef { slot, at: src_loc(*nloc) }));
                }
            }
        }
    }

    build::build(FORMAT, input)
}

/// The resolved pins of one instance: the output reference and the fanin
/// connections in pin order (for flip-flops: `[D]`, clock dropped).
struct Pins {
    out: NetRef,
    ins: Vec<Conn>,
}

fn resolve_pins(
    src: &str,
    func: CellFunc,
    cell: &str,
    cell_loc: Loc,
    conns: &Conns,
) -> Result<Pins, NetlistError> {
    let syntax = |loc: Loc, message: String| NetlistError::ParseSyntax {
        format: FORMAT,
        at: loc.src_loc(src),
        message,
    };
    let out_of = |conn: &Conn, loc: Loc| -> Result<NetRef, NetlistError> {
        match conn {
            Conn::Net(r) => Ok(r.clone()),
            Conn::Const(..) => {
                Err(syntax(loc, "an instance output must connect to a net".to_string()))
            }
        }
    };
    match conns {
        Conns::Positional(list) => {
            if list.is_empty() {
                return Err(syntax(cell_loc, format!("instance of `{cell}` has no connections")));
            }
            let out = out_of(&list[0], cell_loc)?;
            let ins: Vec<Conn> = list[1..].to_vec();
            if func == CellFunc::Dff && ins.len() != 1 {
                return Err(syntax(
                    cell_loc,
                    "positional flip-flops take exactly (Q, D); use named ports for a clock pin"
                        .to_string(),
                ));
            }
            if matches!(func, CellFunc::Const(_)) && !ins.is_empty() {
                return Err(syntax(
                    cell_loc,
                    format!("tie cell `{cell}` takes a single output pin"),
                ));
            }
            Ok(Pins { out, ins })
        }
        Conns::Named(named) => {
            let mut out: Option<NetRef> = None;
            let mut d: Option<Conn> = None;
            let mut sel: Option<Conn> = None;
            let mut indexed: Vec<(usize, Conn)> = Vec::new();
            for (port, ploc, conn) in named {
                let role = port_role(func, port).ok_or_else(|| {
                    syntax(*ploc, format!("cell `{cell}` has no port named `{port}`"))
                })?;
                match role {
                    PortRole::Output | PortRole::DffQ => {
                        if out.is_some() {
                            return Err(syntax(
                                *ploc,
                                format!("output pin `{port}` connected twice"),
                            ));
                        }
                        out = Some(out_of(conn, *ploc)?);
                    }
                    PortRole::DffD => {
                        if d.is_some() {
                            return Err(syntax(*ploc, "pin `D` connected twice".to_string()));
                        }
                        d = Some(conn.clone());
                    }
                    PortRole::Select => {
                        if sel.is_some() {
                            return Err(syntax(*ploc, "select pin connected twice".to_string()));
                        }
                        sel = Some(conn.clone());
                    }
                    PortRole::Input(i) => {
                        if indexed.iter().any(|(j, _)| *j == i) {
                            return Err(syntax(*ploc, format!("pin `{port}` connected twice")));
                        }
                        indexed.push((i, conn.clone()));
                    }
                    PortRole::Clock => {} // single implicit clock domain
                }
            }
            let out = out.ok_or_else(|| {
                syntax(cell_loc, format!("instance of `{cell}` never connects its output pin"))
            })?;
            let ins = match func {
                CellFunc::Dff => {
                    vec![d.ok_or_else(|| {
                        syntax(cell_loc, "flip-flop instance never connects pin `D`".to_string())
                    })?]
                }
                CellFunc::Const(_) => Vec::new(),
                CellFunc::Gate(kind) => {
                    indexed.sort_by_key(|(i, _)| *i);
                    for (want, (got, _)) in indexed.iter().enumerate() {
                        if *got != want {
                            return Err(syntax(
                                cell_loc,
                                format!("instance of `{cell}` is missing input pin {want}"),
                            ));
                        }
                    }
                    let mut ins: Vec<Conn> = Vec::new();
                    if kind == crate::library::GateKind::Mux {
                        ins.push(sel.ok_or_else(|| {
                            syntax(
                                cell_loc,
                                "mux instance never connects its select pin".to_string(),
                            )
                        })?);
                    } else if sel.is_some() {
                        return Err(syntax(cell_loc, format!("cell `{cell}` has no select pin")));
                    }
                    ins.extend(indexed.into_iter().map(|(_, c)| c));
                    ins
                }
            };
            Ok(Pins { out, ins })
        }
    }
}
