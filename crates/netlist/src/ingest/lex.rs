//! Shared source-text lexing for every textual front-end.
//!
//! All three parsers — native `.nl` ([`crate::io`]), structural Verilog
//! ([`super::verilog`]), and the EDIF s-expression reader
//! ([`super::sexpr`]) — lex through the [`Cursor`] defined here, so every
//! parse error in the workspace carries the same 1-based line/column
//! position and source-line snippet (see [`SrcLoc`]).

use crate::error::{NetlistError, SourceFormat, SrcLoc};

/// A 1-based source position (line and character column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc {
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
}

impl Loc {
    /// The position of the first character of a source file.
    pub fn start() -> Loc {
        Loc { line: 1, col: 1 }
    }

    /// Materializes this position into a [`SrcLoc`] carrying the source
    /// line it points into.
    pub fn src_loc(self, src: &str) -> SrcLoc {
        SrcLoc { line: self.line, col: self.col, snippet: snippet(src, self.line) }
    }
}

/// The source line `line` (1-based) of `src`, trimmed of trailing
/// whitespace and truncated to 120 characters for error snippets.
pub fn snippet(src: &str, line: usize) -> String {
    let raw = src.lines().nth(line.saturating_sub(1)).unwrap_or("");
    let trimmed = raw.trim_end();
    if trimmed.chars().count() > 120 {
        let cut: String = trimmed.chars().take(117).collect();
        format!("{cut}...")
    } else {
        trimmed.to_string()
    }
}

/// A character cursor over source text that tracks 1-based line/column
/// positions. The building block all lexers in this module tree share.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    src: &'a str,
    rest: std::str::Chars<'a>,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `src`.
    pub fn new(src: &'a str) -> Cursor<'a> {
        Cursor { src, rest: src.chars(), line: 1, col: 1 }
    }

    /// The full source text this cursor walks.
    pub fn src(&self) -> &'a str {
        self.src
    }

    /// The position of the next unconsumed character.
    pub fn loc(&self) -> Loc {
        Loc { line: self.line, col: self.col }
    }

    /// The next character without consuming it.
    pub fn peek(&self) -> Option<char> {
        self.rest.clone().next()
    }

    /// The character after the next one, without consuming anything.
    pub fn peek2(&self) -> Option<char> {
        let mut it = self.rest.clone();
        it.next();
        it.next()
    }

    /// Consumes and returns the next character, updating line/column.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.rest.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes characters while `pred` holds, returning them.
    pub fn take_while(&mut self, mut pred: impl FnMut(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
        out
    }
}

/// One whitespace-delimited word of a line-oriented format, with the
/// position of its first character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    /// The word text.
    pub text: String,
    /// Position of the word's first character.
    pub loc: Loc,
}

/// Splits line-oriented source (the native `.nl` format) into lines of
/// whitespace-delimited words, each word carrying its position. Blank
/// lines and lines whose first word starts with `#` are skipped.
pub fn lines_of_words(src: &str) -> Vec<(usize, Vec<Word>)> {
    let mut cur = Cursor::new(src);
    let mut out: Vec<(usize, Vec<Word>)> = Vec::new();
    let mut line: Vec<Word> = Vec::new();
    let mut lineno = 1usize;
    loop {
        match cur.peek() {
            None => {
                if !line.is_empty() {
                    out.push((lineno, line));
                }
                break;
            }
            Some('\n') => {
                cur.bump();
                if !line.is_empty() {
                    out.push((lineno, std::mem::take(&mut line)));
                }
            }
            Some(c) if c.is_whitespace() => {
                cur.bump();
            }
            Some('#') => {
                // Comment to end of line.
                cur.take_while(|c| c != '\n');
            }
            Some(_) => {
                let loc = cur.loc();
                lineno = loc.line;
                let text = cur.take_while(|c| !c.is_whitespace());
                line.push(Word { text, loc });
            }
        }
    }
    out
}

/// A lexical token of the structural-Verilog subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`module`, `wire`, a net name, ...).
    Ident(String),
    /// An unsigned decimal integer (`7` in `[7:0]`).
    Num(u64),
    /// A based literal such as `1'b0`, kept as written.
    Based(String),
    /// A double-quoted string (used in attribute values).
    Str(String),
    /// Single-character punctuation: `( ) [ ] , ; . : =`.
    Punct(char),
    /// The attribute opener `(*`.
    AttrOpen,
    /// The attribute closer `*)`.
    AttrClose,
    /// End of input.
    Eof,
}

impl Tok {
    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Num(n) => format!("number `{n}`"),
            Tok::Based(s) => format!("literal `{s}`"),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::Punct(c) => format!("`{c}`"),
            Tok::AttrOpen => "`(*`".to_string(),
            Tok::AttrClose => "`*)`".to_string(),
            Tok::Eof => "end of input".to_string(),
        }
    }
}

/// A [`Tok`] with the position of its first character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Position of the token's first character.
    pub loc: Loc,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '\\'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '$'
}

/// Tokenizes the structural-Verilog subset: identifiers (including
/// `\escaped ` ones), decimal and based literals, strings, punctuation,
/// and `(*`/`*)` attribute delimiters. `//` and `/* */` comments are
/// skipped. The final token is always [`Tok::Eof`].
///
/// # Errors
///
/// Returns [`NetlistError::ParseSyntax`] for unterminated strings or
/// block comments and for characters outside the subset's alphabet.
pub fn tokenize_verilog(src: &str) -> Result<Vec<Token>, NetlistError> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    let err = |cur: &Cursor, loc: Loc, message: String| NetlistError::ParseSyntax {
        format: SourceFormat::Verilog,
        at: loc.src_loc(cur.src()),
        message,
    };
    loop {
        let Some(c) = cur.peek() else { break };
        let loc = cur.loc();
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek2() == Some('/') {
            cur.take_while(|c| c != '\n');
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            cur.bump();
            cur.bump();
            let mut closed = false;
            while let Some(c) = cur.bump() {
                if c == '*' && cur.peek() == Some('/') {
                    cur.bump();
                    closed = true;
                    break;
                }
            }
            if !closed {
                return Err(err(&cur, loc, "unterminated block comment".to_string()));
            }
            continue;
        }
        if c == '(' && cur.peek2() == Some('*') {
            cur.bump();
            cur.bump();
            out.push(Token { tok: Tok::AttrOpen, loc });
            continue;
        }
        if c == '*' && cur.peek2() == Some(')') {
            cur.bump();
            cur.bump();
            out.push(Token { tok: Tok::AttrClose, loc });
            continue;
        }
        if c == '"' {
            cur.bump();
            let text = cur.take_while(|c| c != '"' && c != '\n');
            if cur.peek() != Some('"') {
                return Err(err(&cur, loc, "unterminated string literal".to_string()));
            }
            cur.bump();
            out.push(Token { tok: Tok::Str(text), loc });
            continue;
        }
        if c == '\\' {
            // Verilog escaped identifier: `\` up to the next whitespace.
            cur.bump();
            let text = cur.take_while(|c| !c.is_whitespace());
            if text.is_empty() {
                return Err(err(&cur, loc, "empty escaped identifier".to_string()));
            }
            out.push(Token { tok: Tok::Ident(text), loc });
            continue;
        }
        if is_ident_start(c) {
            let text = cur.take_while(is_ident_char);
            out.push(Token { tok: Tok::Ident(text), loc });
            continue;
        }
        if c.is_ascii_digit() {
            let digits = cur.take_while(|c| c.is_ascii_digit() || c == '_');
            if cur.peek() == Some('\'') {
                // Based literal: width ' base digits, e.g. 1'b0, 4'hF.
                cur.bump();
                let base = cur.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
                if base.is_empty() {
                    return Err(err(&cur, loc, "based literal is missing its base".to_string()));
                }
                out.push(Token { tok: Tok::Based(format!("{digits}'{base}")), loc });
            } else {
                let clean: String = digits.chars().filter(|&c| c != '_').collect();
                let n: u64 = clean
                    .parse()
                    .map_err(|_| err(&cur, loc, format!("integer `{digits}` is out of range")))?;
                out.push(Token { tok: Tok::Num(n), loc });
            }
            continue;
        }
        if "()[],;.:=#".contains(c) {
            cur.bump();
            out.push(Token { tok: Tok::Punct(c), loc });
            continue;
        }
        return Err(err(&cur, loc, format!("unexpected character `{c}`")));
    }
    out.push(Token { tok: Tok::Eof, loc: cur.loc() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_tracks_lines_and_columns() {
        let mut c = Cursor::new("ab\ncd");
        assert_eq!(c.loc(), Loc { line: 1, col: 1 });
        c.bump();
        c.bump();
        assert_eq!(c.loc(), Loc { line: 1, col: 3 });
        c.bump(); // newline
        assert_eq!(c.loc(), Loc { line: 2, col: 1 });
        c.bump();
        assert_eq!(c.loc(), Loc { line: 2, col: 2 });
    }

    #[test]
    fn words_carry_positions_and_skip_comments() {
        let lines = lines_of_words("input a\n# note\n  gate g1 and a a\n");
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].0, 1);
        assert_eq!(lines[0].1[1].text, "a");
        assert_eq!(lines[0].1[1].loc, Loc { line: 1, col: 7 });
        assert_eq!(lines[1].0, 3);
        assert_eq!(lines[1].1[0].loc, Loc { line: 3, col: 3 });
    }

    #[test]
    fn verilog_tokens_and_attributes() {
        let toks = tokenize_verilog("module m; (* group = \"x\" *) and g (y, a, 1'b0); // c\n")
            .expect("lexes");
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(kinds.contains(&&Tok::AttrOpen));
        assert!(kinds.contains(&&Tok::AttrClose));
        assert!(kinds.contains(&&Tok::Based("1'b0".to_string())));
        assert!(kinds.contains(&&Tok::Str("x".to_string())));
        assert_eq!(kinds.last(), Some(&&Tok::Eof));
    }

    #[test]
    fn verilog_lex_errors_carry_location() {
        let e = tokenize_verilog("wire w;\n\"open").unwrap_err();
        match e {
            NetlistError::ParseSyntax { at, .. } => {
                assert_eq!(at.line, 2);
                assert_eq!(at.col, 1);
                assert_eq!(at.snippet, "\"open");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn snippets_truncate_long_lines() {
        let long = "x".repeat(200);
        let s = snippet(&long, 1);
        assert_eq!(s.chars().count(), 120);
        assert!(s.ends_with("..."));
    }
}
