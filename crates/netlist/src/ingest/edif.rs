//! EDIF 2.0.0 front-end.
//!
//! Interprets the flat gate-level EDIF subset specified in
//! `docs/FORMATS.md`: one `(edif ...)` form holding `(library ...)`
//! definitions, a top cell with an `(interface ...)` of scalar ports and
//! a `(contents ...)` of `(instance ...)` and `(net ... (joined ...))`
//! forms, and optionally a `(design ...)` form naming the top cell.
//! Instance cell functions are resolved from the *cell name* via
//! [`super::cells::cell_func`] — library cell definitions are treated as
//! opaque. Hierarchical designs (an instance of another cell that has
//! `contents`) are rejected with [`NetlistError::ParseUnsupported`].

use std::collections::HashMap;

use crate::error::{NetlistError, SourceFormat, SrcLoc};
use crate::ingest::build::{self, BuildInput, BuildItem, SlotRef};
use crate::ingest::cells::{cell_func, port_role, CellFunc, PortRole};
use crate::ingest::lex::Loc;
use crate::ingest::sexpr::{parse_sexpr, Sexpr};
use crate::netlist::Netlist;

const FORMAT: SourceFormat = SourceFormat::Edif;

/// Parses the EDIF 2.0.0 subset into a [`Netlist`].
///
/// # Errors
///
/// Every rejection is a structured [`NetlistError`] parse variant with
/// line/column and a source snippet; `docs/FORMATS.md` specifies which
/// violation raises which variant.
pub fn parse_edif(src: &str) -> Result<Netlist, NetlistError> {
    let root = parse_sexpr(src)?;
    Interp { src }.run(&root)
}

struct Interp<'a> {
    src: &'a str,
}

/// One parsed `(port ...)` of the top cell's interface.
struct Port {
    name: String,
    is_input: bool,
    loc: Loc,
}

/// One parsed `(instance ...)` of the top cell's contents.
struct Instance {
    name: String,
    func: CellFunc,
    group: Option<String>,
    init: bool,
    loc: Loc,
    /// Fanin pins by index, filled in while walking nets.
    ins: Vec<Option<(usize, Loc)>>,
    /// Mux select pin (pin 0), filled in while walking nets.
    sel: Option<(usize, Loc)>,
    /// The net slot the output pin drives, filled in while walking nets.
    out: Option<(usize, Loc)>,
}

impl<'a> Interp<'a> {
    fn src_loc(&self, loc: Loc) -> SrcLoc {
        loc.src_loc(self.src)
    }

    fn syntax(&self, loc: Loc, message: String) -> NetlistError {
        NetlistError::ParseSyntax { format: FORMAT, at: self.src_loc(loc), message }
    }

    fn unsupported(&self, loc: Loc, construct: String) -> NetlistError {
        NetlistError::ParseUnsupported { format: FORMAT, at: self.src_loc(loc), construct }
    }

    /// Resolves an EDIF name position: a bare atom, or a
    /// `(rename ident "original")` form (the string wins, so round-trips
    /// preserve names like `n[3]` that EDIF identifiers cannot spell).
    fn name_of(&self, s: &Sexpr) -> Result<(String, Loc), NetlistError> {
        if let Some(a) = s.atom() {
            return Ok((a.to_string(), s.loc()));
        }
        if let Some(("rename", rest)) = s.form().as_ref().map(|(h, r)| (h.as_str(), *r)) {
            if let Some(Sexpr::Str { text, .. }) = rest.get(1) {
                return Ok((text.clone(), s.loc()));
            }
            if let Some(a) = rest.first().and_then(Sexpr::atom) {
                return Ok((a.to_string(), s.loc()));
            }
        }
        if let Some(("array", _)) = s.form().as_ref().map(|(h, r)| (h.as_str(), *r)) {
            return Err(self.unsupported(s.loc(), "port/net arrays (bit-blast the design)".into()));
        }
        Err(self.syntax(s.loc(), format!("expected a name, found {}", s.describe())))
    }

    fn run(&self, root: &Sexpr) -> Result<Netlist, NetlistError> {
        let (head, rest) = root
            .form()
            .ok_or_else(|| self.syntax(root.loc(), "expected an (edif ...) form".to_string()))?;
        if head != "edif" {
            return Err(self.syntax(root.loc(), format!("expected (edif ...), found ({head} ...)")));
        }

        // Collect every (cell ...) that has a (contents ...) — candidate
        // top cells — plus the (design ...) form, if any.
        let mut cells: Vec<(String, &Sexpr)> = Vec::new();
        let mut design: Option<(String, Loc)> = None;
        for item in rest {
            let Some((h, r)) = item.form() else { continue };
            match h.as_str() {
                "library" | "external" => {
                    for cell in r.iter().skip(1) {
                        let Some(("cell", cr)) =
                            cell.form().as_ref().map(|(h, r)| (h.as_str(), *r))
                        else {
                            continue;
                        };
                        let Some(name_pos) = cr.first() else { continue };
                        let (name, _) = self.name_of(name_pos)?;
                        if find_view_with_contents(cell).is_some() {
                            cells.push((name, cell));
                        }
                    }
                }
                "design" => {
                    // (design d (cellRef top (libraryRef work)))
                    let cell_ref = r.iter().find_map(|s| match s.form() {
                        Some((h, cr)) if h == "cellref" => Some((s.loc(), cr)),
                        _ => None,
                    });
                    let Some((loc, cr)) = cell_ref else {
                        return Err(self.syntax(
                            item.loc(),
                            "(design ...) is missing its (cellRef ...)".into(),
                        ));
                    };
                    let name = cr.first().and_then(Sexpr::atom).ok_or_else(|| {
                        self.syntax(loc, "(cellRef ...) is missing its name".into())
                    })?;
                    design = Some((name.to_string(), loc));
                }
                _ => {} // edifVersion, edifLevel, keywordMap, status, comment, ...
            }
        }

        let top = match design {
            Some((name, loc)) => cells
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(&name))
                .map(|(_, c)| *c)
                .ok_or_else(|| NetlistError::ParseUnknownName {
                    format: FORMAT,
                    at: self.src_loc(loc),
                    name,
                })?,
            None => match cells.len() {
                1 => cells[0].1,
                0 => {
                    return Err(self.syntax(
                        root.loc(),
                        "no cell with a (contents ...) form to use as the top cell".into(),
                    ))
                }
                _ => {
                    return Err(self.syntax(
                        root.loc(),
                        format!(
                            "{} cells have (contents ...); add a (design ...) form naming the top",
                            cells.len()
                        ),
                    ))
                }
            },
        };
        let hierarchical: Vec<String> = cells.iter().map(|(n, _)| n.to_ascii_uppercase()).collect();

        let view = find_view_with_contents(top).expect("cells list only holds cells with contents");
        let (_, view_items) = view.form().expect("find_view_with_contents returns a form");

        // Interface: scalar ports with directions.
        let mut ports: Vec<Port> = Vec::new();
        if let Some((_, iface)) =
            view_items.iter().find_map(|s| s.form().filter(|(h, _)| h == "interface"))
        {
            for p in iface {
                let Some(("port", pr)) = p.form().as_ref().map(|(h, r)| (h.as_str(), *r)) else {
                    continue;
                };
                let name_pos = pr
                    .first()
                    .ok_or_else(|| self.syntax(p.loc(), "(port ...) is missing its name".into()))?;
                let (name, nloc) = self.name_of(name_pos)?;
                let dir = pr.iter().find_map(|s| match s.form() {
                    Some((h, dr)) if h == "direction" => Some((
                        s.loc(),
                        dr.first().and_then(Sexpr::atom).map(str::to_ascii_uppercase),
                    )),
                    _ => None,
                });
                let is_input = match dir {
                    Some((_, Some(d))) if d == "INPUT" => true,
                    Some((_, Some(d))) if d == "OUTPUT" => false,
                    Some((dloc, Some(d))) if d == "INOUT" => {
                        return Err(self.unsupported(dloc, "inout ports".into()))
                    }
                    Some((dloc, _)) => {
                        return Err(self.syntax(dloc, "unrecognized (direction ...)".into()))
                    }
                    None => {
                        return Err(
                            self.syntax(p.loc(), format!("port '{name}' has no (direction ...)"))
                        )
                    }
                };
                ports.push(Port { name, is_input, loc: nloc });
            }
        }

        let (_, contents) = view_items
            .iter()
            .find_map(|s| s.form().filter(|(h, _)| h == "contents"))
            .expect("find_view_with_contents checked this");

        // Slots: one per interface port, then one per net.
        let mut input = BuildInput::default();
        let mut port_slot: HashMap<String, usize> = HashMap::new();
        for p in &ports {
            input.slot_names.push(p.name.clone());
            port_slot.insert(p.name.to_ascii_uppercase(), input.slot_names.len() - 1);
        }
        for p in &ports {
            if p.is_input {
                input.inputs.push((port_slot[&p.name.to_ascii_uppercase()], None));
            }
        }

        // First pass over contents: instances.
        let mut instances: Vec<Instance> = Vec::new();
        let mut inst_index: HashMap<String, usize> = HashMap::new();
        for item in contents {
            let Some(("instance", ir)) = item.form().as_ref().map(|(h, r)| (h.as_str(), *r)) else {
                continue;
            };
            let name_pos = item.list().and_then(|l| l.get(1)).ok_or_else(|| {
                self.syntax(item.loc(), "(instance ...) is missing its name".into())
            })?;
            let (name, nloc) = self.name_of(name_pos)?;
            let cell = self.instance_cell(item, ir)?;
            let func = cell_func(&cell.0).ok_or_else(|| {
                if hierarchical.contains(&cell.0.to_ascii_uppercase()) {
                    self.unsupported(
                        cell.1,
                        format!("hierarchical instance of cell '{}' (flatten the design)", cell.0),
                    )
                } else {
                    NetlistError::ParseUnknownCell {
                        format: FORMAT,
                        at: self.src_loc(cell.1),
                        cell: cell.0.clone(),
                    }
                }
            })?;
            let (group, init) = self.instance_properties(ir)?;
            if inst_index.contains_key(&name.to_ascii_uppercase()) {
                return Err(self.syntax(nloc, format!("instance '{name}' is declared twice")));
            }
            inst_index.insert(name.to_ascii_uppercase(), instances.len());
            instances.push(Instance {
                name,
                func,
                group,
                init,
                loc: nloc,
                ins: Vec::new(),
                sel: None,
                out: None,
            });
        }

        // Second pass: nets join pins together.
        let mut driver: Vec<Option<Loc>> = vec![None; input.slot_names.len()];
        for p in &ports {
            if p.is_input {
                driver[port_slot[&p.name.to_ascii_uppercase()]] = Some(p.loc);
            }
        }
        // Output ports resolve to the slot of the net that feeds them.
        let mut port_feed: HashMap<String, (usize, Loc)> = HashMap::new();
        for item in contents {
            let Some(("net", nr)) = item.form().as_ref().map(|(h, r)| (h.as_str(), *r)) else {
                continue;
            };
            let name_pos = nr
                .first()
                .ok_or_else(|| self.syntax(item.loc(), "(net ...) is missing its name".into()))?;
            let (net_name, net_loc) = self.name_of(name_pos)?;
            input.slot_names.push(net_name.clone());
            driver.push(None);
            let slot = input.slot_names.len() - 1;

            let Some((_, joined)) = nr.iter().find_map(|s| s.form().filter(|(h, _)| h == "joined"))
            else {
                return Err(
                    self.syntax(net_loc, format!("net '{net_name}' has no (joined ...) form"))
                );
            };
            for pr in joined {
                let Some(("portref", prr)) = pr.form().as_ref().map(|(h, r)| (h.as_str(), *r))
                else {
                    return Err(self.syntax(
                        pr.loc(),
                        format!("expected a (portRef ...), found {}", pr.describe()),
                    ));
                };
                let (port, ploc) = self.name_of(prr.first().ok_or_else(|| {
                    self.syntax(pr.loc(), "(portRef ...) is missing its port name".into())
                })?)?;
                let inst_ref = prr.iter().find_map(|s| match s.form() {
                    Some((h, ir)) if h == "instanceref" => Some((s.loc(), ir)),
                    _ => None,
                });
                match inst_ref {
                    None => {
                        // A connection to one of the cell's own ports.
                        let Some(&pslot) = port_slot.get(&port.to_ascii_uppercase()) else {
                            return Err(NetlistError::ParseUnknownName {
                                format: FORMAT,
                                at: self.src_loc(ploc),
                                name: port,
                            });
                        };
                        let is_input = ports
                            .iter()
                            .find(|p| p.name.eq_ignore_ascii_case(&port))
                            .map(|p| p.is_input)
                            .expect("port_slot and ports share keys");
                        if is_input {
                            // The input port drives this net.
                            self.claim(&mut driver, &input.slot_names, slot, ploc)?;
                            input.items.push(BuildItem::Alias {
                                slot,
                                src: SlotRef { slot: pslot, at: self.src_loc(ploc) },
                            });
                        } else {
                            port_feed.insert(port.to_ascii_uppercase(), (slot, ploc));
                        }
                    }
                    Some((irloc, ir)) => {
                        let iname = ir.first().and_then(Sexpr::atom).ok_or_else(|| {
                            self.syntax(irloc, "(instanceRef ...) is missing its name".into())
                        })?;
                        let Some(&idx) = inst_index.get(&iname.to_ascii_uppercase()) else {
                            return Err(NetlistError::ParseUnknownName {
                                format: FORMAT,
                                at: self.src_loc(irloc),
                                name: iname.to_string(),
                            });
                        };
                        let inst = &mut instances[idx];
                        let role = port_role(inst.func, &port).ok_or_else(|| {
                            self.syntax(
                                ploc,
                                format!("instance '{}' has no port named `{port}`", inst.name),
                            )
                        })?;
                        match role {
                            PortRole::Output | PortRole::DffQ => {
                                self.claim(&mut driver, &input.slot_names, slot, ploc)?;
                                if inst.out.is_some() {
                                    return Err(self.syntax(
                                        ploc,
                                        format!(
                                            "output pin of instance '{}' joins two nets",
                                            inst.name
                                        ),
                                    ));
                                }
                                inst.out = Some((slot, ploc));
                            }
                            PortRole::DffD => set_pin(&mut inst.ins, 0, slot, ploc)
                                .map_err(|()| self.pin_twice(ploc, &inst.name, &port))?,
                            PortRole::Input(i) => set_pin(&mut inst.ins, i, slot, ploc)
                                .map_err(|()| self.pin_twice(ploc, &inst.name, &port))?,
                            PortRole::Select => {
                                if inst.sel.is_some() {
                                    return Err(self.pin_twice(ploc, &inst.name, &port));
                                }
                                inst.sel = Some((slot, ploc));
                            }
                            PortRole::Clock => {} // single implicit clock domain
                        }
                    }
                }
            }
        }

        // Lower instances, in declaration order.
        for inst in &instances {
            let Some((out, _)) = inst.out else {
                return Err(self.syntax(
                    inst.loc,
                    format!("output pin of instance '{}' is not joined to any net", inst.name),
                ));
            };
            let mut ins: Vec<SlotRef> = Vec::with_capacity(inst.ins.len() + 1);
            if let CellFunc::Gate(crate::library::GateKind::Mux) = inst.func {
                let (s, l) = inst.sel.ok_or_else(|| {
                    self.syntax(
                        inst.loc,
                        format!("mux instance '{}' never joins its select pin", inst.name),
                    )
                })?;
                ins.push(SlotRef { slot: s, at: self.src_loc(l) });
            } else if let Some((_, l)) = inst.sel {
                return Err(self.syntax(l, format!("instance '{}' has no select pin", inst.name)));
            }
            for (i, pin) in inst.ins.iter().enumerate() {
                let Some((s, l)) = pin else {
                    return Err(self.syntax(
                        inst.loc,
                        format!("instance '{}' is missing input pin {i}", inst.name),
                    ));
                };
                ins.push(SlotRef { slot: *s, at: self.src_loc(*l) });
            }
            match inst.func {
                CellFunc::Gate(kind) => input.items.push(BuildItem::Gate {
                    slot: out,
                    kind,
                    ins,
                    group: inst.group.clone(),
                    at: self.src_loc(inst.loc),
                }),
                CellFunc::Dff => {
                    let d = ins.into_iter().next().ok_or_else(|| {
                        self.syntax(
                            inst.loc,
                            format!("flip-flop instance '{}' never joins pin `D`", inst.name),
                        )
                    })?;
                    input.items.push(BuildItem::Dff {
                        slot: out,
                        d,
                        init: inst.init,
                        group: inst.group.clone(),
                    });
                }
                CellFunc::Const(v) => input.items.push(BuildItem::Const {
                    slot: out,
                    value: v,
                    group: inst.group.clone(),
                }),
            }
        }

        // Outputs, in interface order.
        for p in &ports {
            if p.is_input {
                continue;
            }
            let Some(&(slot, loc)) = port_feed.get(&p.name.to_ascii_uppercase()) else {
                return Err(NetlistError::ParseUndriven {
                    format: FORMAT,
                    at: self.src_loc(p.loc),
                    name: p.name.clone(),
                });
            };
            input.outputs.push((p.name.clone(), SlotRef { slot, at: self.src_loc(loc) }));
        }

        build::build(FORMAT, input)
    }

    fn claim(
        &self,
        driver: &mut [Option<Loc>],
        slot_names: &[String],
        slot: usize,
        loc: Loc,
    ) -> Result<(), NetlistError> {
        if driver[slot].is_some() {
            return Err(NetlistError::ParseMultipleDrivers {
                format: FORMAT,
                at: self.src_loc(loc),
                name: slot_names[slot].clone(),
            });
        }
        driver[slot] = Some(loc);
        Ok(())
    }

    fn pin_twice(&self, loc: Loc, inst: &str, port: &str) -> NetlistError {
        self.syntax(loc, format!("pin `{port}` of instance '{inst}' joins two nets"))
    }

    /// The cell name an instance references, from its `(viewRef ...
    /// (cellRef C ...))` or direct `(cellRef C ...)` form.
    fn instance_cell(&self, inst: &Sexpr, items: &[Sexpr]) -> Result<(String, Loc), NetlistError> {
        fn find_cellref(items: &[Sexpr]) -> Option<(Loc, String)> {
            for s in items {
                if let Some((h, r)) = s.form() {
                    match h.as_str() {
                        "cellref" => {
                            if let Some(name) = r.first().and_then(Sexpr::atom) {
                                return Some((s.loc(), name.to_string()));
                            }
                        }
                        "viewref" => {
                            if let Some(found) = find_cellref(r) {
                                return Some(found);
                            }
                        }
                        _ => {}
                    }
                }
            }
            None
        }
        match find_cellref(items) {
            Some((loc, name)) => Ok((name, loc)),
            None => Err(self.syntax(
                inst.loc(),
                "(instance ...) has no (viewRef ... (cellRef ...))".to_string(),
            )),
        }
    }

    /// Recognized instance properties: `(property group (string "..."))`
    /// and `(property init (integer 0|1))`. Unknown properties are
    /// accepted and ignored.
    fn instance_properties(&self, items: &[Sexpr]) -> Result<(Option<String>, bool), NetlistError> {
        let mut group = None;
        let mut init = false;
        for s in items {
            let Some(("property", pr)) = s.form().as_ref().map(|(h, r)| (h.as_str(), *r)) else {
                continue;
            };
            let Some(name) = pr.first().and_then(Sexpr::atom) else { continue };
            match name.to_ascii_lowercase().as_str() {
                "group" => {
                    let value = pr.get(1).and_then(|v| match v.form() {
                        Some((h, vr)) if h == "string" => match vr.first() {
                            Some(Sexpr::Str { text, .. }) => Some(text.clone()),
                            _ => None,
                        },
                        _ => None,
                    });
                    group = Some(value.ok_or_else(|| {
                        self.syntax(s.loc(), "the group property takes (string \"...\")".into())
                    })?);
                }
                "init" => {
                    let value = pr.get(1).and_then(|v| match v.form() {
                        Some((h, vr)) if h == "integer" => {
                            vr.first().and_then(Sexpr::atom).and_then(|a| a.parse::<u64>().ok())
                        }
                        _ => None,
                    });
                    init = match value {
                        Some(0) => false,
                        Some(1) => true,
                        _ => {
                            return Err(self.syntax(
                                s.loc(),
                                "the init property takes (integer 0) or (integer 1)".into(),
                            ))
                        }
                    };
                }
                _ => {}
            }
        }
        Ok((group, init))
    }
}

fn set_pin(
    pins: &mut Vec<Option<(usize, Loc)>>,
    i: usize,
    slot: usize,
    loc: Loc,
) -> Result<(), ()> {
    if pins.len() <= i {
        pins.resize(i + 1, None);
    }
    if pins[i].is_some() {
        return Err(());
    }
    pins[i] = Some((slot, loc));
    Ok(())
}

/// The first `(view ...)` of a cell that has a `(contents ...)` child.
fn find_view_with_contents(cell: &Sexpr) -> Option<&Sexpr> {
    let (_, items) = cell.form()?;
    items.iter().find(|s| match s.form() {
        Some((h, vr)) if h == "view" => {
            vr.iter().any(|c| matches!(c.form(), Some((ch, _)) if ch == "contents"))
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::GateKind;
    use crate::netlist::NodeKind;

    const SMALL: &str = r#"
(edif demo
  (edifVersion 2 0 0)
  (library work
    (cell top
      (view netlist
        (viewType NETLIST)
        (interface
          (port a (direction INPUT))
          (port b (direction INPUT))
          (port y (direction OUTPUT)))
        (contents
          (instance g1 (viewRef netlist (cellRef AND2)))
          (net na (joined (portRef a) (portRef A (instanceRef g1))))
          (net nb (joined (portRef b) (portRef B (instanceRef g1))))
          (net ny (joined (portRef Y (instanceRef g1)) (portRef y)))))))
  (design demo (cellRef top (libraryRef work))))
"#;

    #[test]
    fn small_and_gate_parses() {
        let nl = parse_edif(SMALL).expect("parses");
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.outputs().len(), 1);
        let (_, y) = &nl.outputs()[0];
        assert!(matches!(nl.kind(*y), NodeKind::Gate { kind: GateKind::And, .. }));
    }

    #[test]
    fn unknown_cell_and_undriven_port_report_positions() {
        let bad = SMALL.replace("AND2", "RAM32");
        match parse_edif(&bad).unwrap_err() {
            NetlistError::ParseUnknownCell { cell, at, .. } => {
                assert_eq!(cell, "RAM32");
                assert!(at.line > 1);
                assert!(at.snippet.contains("RAM32"));
            }
            other => panic!("wrong variant: {other:?}"),
        }

        // The output port y is never fed by any net.
        let undriven = SMALL.replace(" (portRef y)", "");
        match parse_edif(&undriven).unwrap_err() {
            NetlistError::ParseUndriven { name, .. } => assert_eq!(name, "y"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn multiple_drivers_detected() {
        let bad = SMALL.replace(
            "(net ny (joined (portRef Y (instanceRef g1)) (portRef y)))",
            "(net ny (joined (portRef Y (instanceRef g1)) (portRef a) (portRef y)))",
        );
        match parse_edif(&bad).unwrap_err() {
            NetlistError::ParseMultipleDrivers { name, .. } => assert_eq!(name, "ny"),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
