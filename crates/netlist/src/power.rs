//! Switched-capacitance power accounting.

pub mod attribution;

use std::collections::BTreeMap;

use crate::library::Library;
use crate::netlist::{Netlist, NodeKind};
use crate::sim::Activity;

/// Power attributed to one accounting group.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroupPower {
    /// Switched capacitance per cycle, in femtofarads.
    pub switched_cap_ff: f64,
    /// Average dynamic power, in microwatts.
    pub power_uw: f64,
}

/// Power report produced from an [`Activity`] under a [`Library`].
///
/// Dynamic energy per transition of a node is `0.5 * Vdd^2 * C_load +
/// E_internal` of the driving cell; clock power adds the flip-flops' clock
/// pin switching (two transitions per cycle) and per-edge internal energy.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Cycles the underlying activity covers.
    pub cycles: u64,
    /// Net switching power (charging/discharging load capacitances), in µW.
    pub net_power_uw: f64,
    /// Cell-internal power (short-circuit and parasitics), in µW.
    pub internal_power_uw: f64,
    /// Clock-distribution power (flip-flop clock pins), in µW.
    pub clock_power_uw: f64,
    /// Average switched load capacitance per cycle, in fF (the quantity the
    /// survey's Table I reports).
    pub switched_cap_ff_per_cycle: f64,
    /// Per-group breakdown, keyed by group name. Nodes without a group are
    /// accumulated under `"(ungrouped)"`. Clock load is attributed to the
    /// `"registers/clock"` pseudo-group.
    pub by_group: BTreeMap<String, GroupPower>,
}

impl PowerReport {
    /// Total average power (net + internal + clock) in microwatts.
    pub fn total_power_uw(&self) -> f64 {
        self.net_power_uw + self.internal_power_uw + self.clock_power_uw
    }

    /// Total switched capacitance over the whole run, in picofarads.
    pub fn total_switched_cap_pf(&self) -> f64 {
        self.switched_cap_ff_per_cycle * self.cycles as f64 / 1000.0
    }

    pub(crate) fn from_activity(netlist: &Netlist, lib: &Library, act: &Activity) -> PowerReport {
        let caps = netlist.load_caps_ff(lib);
        let cycles = act.cycles.max(1) as f64;
        let period_s = lib.clock_period_ns() * 1e-9;

        let mut net_fj = 0.0f64;
        let mut internal_fj = 0.0f64;
        let mut switched_cap_ff = 0.0f64;
        let mut group_cap: BTreeMap<String, f64> = BTreeMap::new();
        let mut group_energy: BTreeMap<String, f64> = BTreeMap::new();

        for id in netlist.node_ids() {
            let toggles = act.toggles[id.index()] as f64;
            if toggles == 0.0 {
                continue;
            }
            let cap = caps[id.index()];
            let e_net = lib.switching_energy_fj(cap) * toggles;
            let e_int = match netlist.kind(id) {
                NodeKind::Gate { kind, .. } => lib.cell(*kind).internal_energy_fj * toggles,
                NodeKind::Dff { .. } => lib.dff_internal_energy_fj * toggles,
                _ => 0.0,
            };
            net_fj += e_net;
            internal_fj += e_int;
            switched_cap_ff += cap * toggles;
            let gname = netlist
                .node_group(id)
                .map(|g| netlist.group_name(g).to_string())
                .unwrap_or_else(|| "(ungrouped)".to_string());
            *group_cap.entry(gname.clone()).or_default() += cap * toggles;
            *group_energy.entry(gname).or_default() += e_net + e_int;
        }

        // Clock tree: every DFF clock pin sees two transitions per cycle
        // plus per-edge internal energy.
        let n_dff = netlist.dffs().len() as f64;
        let clk_cap_per_cycle = n_dff * lib.dff_clk_cap_ff * 2.0;
        let clk_fj_per_cycle = lib.switching_energy_fj(lib.dff_clk_cap_ff) * 2.0 * n_dff
            + lib.dff_clock_energy_fj * n_dff;
        let clock_fj = clk_fj_per_cycle * cycles;
        if n_dff > 0.0 {
            *group_cap.entry("registers/clock".to_string()).or_default() +=
                clk_cap_per_cycle * cycles;
            *group_energy.entry("registers/clock".to_string()).or_default() += clock_fj;
        }

        let to_uw = |fj: f64| fj * 1e-15 / (cycles * period_s) * 1e6;
        let by_group = group_cap
            .into_iter()
            .map(|(name, cap)| {
                let e = group_energy[&name];
                (name, GroupPower { switched_cap_ff: cap / cycles, power_uw: to_uw(e) })
            })
            .collect();

        PowerReport {
            cycles: act.cycles,
            net_power_uw: to_uw(net_fj),
            internal_power_uw: to_uw(internal_fj),
            clock_power_uw: to_uw(clock_fj),
            switched_cap_ff_per_cycle: (switched_cap_ff + clk_cap_per_cycle * cycles) / cycles,
            by_group,
        }
    }
}

/// Precomputed per-node energy coefficients for evaluating *many*
/// [`Activity`] records against the same netlist and library.
///
/// [`Activity::power`] re-derives load capacitances and the group
/// breakdown on every call — fine for one report, but the dominant cost
/// when a Monte-Carlo engine converts thousands of per-lane activities
/// into power samples (the conversion outweighed the packed simulation
/// itself before this type existed). A `PowerModel` hoists everything
/// that depends only on `(netlist, library)` out of the loop, so
/// [`total_power_uw`](Self::total_power_uw) is a single fused
/// multiply-add pass over the toggle counts.
///
/// The arithmetic reproduces [`PowerReport`]'s term-for-term — same
/// per-node products, same accumulation order — so
/// `model.total_power_uw(&act)` is **bit-identical** to
/// `act.power(netlist, lib).total_power_uw()`.
#[derive(Debug, Clone)]
pub struct PowerModel {
    /// Net switching energy per toggle of each node, in fJ
    /// (`lib.switching_energy_fj(load_cap)`).
    net_fj_per_toggle: Vec<f64>,
    /// Cell-internal energy per toggle of each node, in fJ (zero for
    /// inputs and constants).
    int_fj_per_toggle: Vec<f64>,
    /// Clock-tree energy per cycle (all DFF clock pins), in fJ.
    clk_fj_per_cycle: f64,
    period_s: f64,
}

impl PowerModel {
    /// Precomputes the coefficients for a netlist under a library.
    pub fn new(netlist: &Netlist, lib: &Library) -> Self {
        let caps = netlist.load_caps_ff(lib);
        let net_fj_per_toggle = caps.iter().map(|&cap| lib.switching_energy_fj(cap)).collect();
        let int_fj_per_toggle = netlist
            .node_ids()
            .map(|id| match netlist.kind(id) {
                NodeKind::Gate { kind, .. } => lib.cell(*kind).internal_energy_fj,
                NodeKind::Dff { .. } => lib.dff_internal_energy_fj,
                _ => 0.0,
            })
            .collect();
        let n_dff = netlist.dffs().len() as f64;
        let clk_fj_per_cycle = lib.switching_energy_fj(lib.dff_clk_cap_ff) * 2.0 * n_dff
            + lib.dff_clock_energy_fj * n_dff;
        PowerModel {
            net_fj_per_toggle,
            int_fj_per_toggle,
            clk_fj_per_cycle,
            period_s: lib.clock_period_ns() * 1e-9,
        }
    }

    /// Total average power (net + internal + clock) of an activity
    /// record, in microwatts. Bit-identical to
    /// `act.power(netlist, lib).total_power_uw()`.
    pub fn total_power_uw(&self, act: &Activity) -> f64 {
        let cycles = act.cycles.max(1) as f64;
        let mut net_fj = 0.0f64;
        let mut internal_fj = 0.0f64;
        for (i, &t) in act.toggles.iter().enumerate() {
            if t == 0 {
                continue;
            }
            let toggles = t as f64;
            net_fj += self.net_fj_per_toggle[i] * toggles;
            internal_fj += self.int_fj_per_toggle[i] * toggles;
        }
        let clock_fj = self.clk_fj_per_cycle * cycles;
        let to_uw = |fj: f64| fj * 1e-15 / (cycles * self.period_s) * 1e6;
        to_uw(net_fj) + to_uw(internal_fj) + to_uw(clock_fj)
    }

    /// Per-lane total power over the packed simulators' strided per-lane
    /// toggle totals (`node * lanes + lane`), walking the totals
    /// node-major — one sequential pass, with per-lane accumulators that
    /// stay cache-resident — instead of transposing per-lane [`Activity`]
    /// records first (a `lanes`-stride gather that falls out of cache for
    /// the wide words). Lane `l` of the result is bit-identical to
    /// [`total_power_uw`](Self::total_power_uw) of lane `l`'s activity:
    /// per lane, the same products accumulate in the same node order.
    pub(crate) fn lane_powers_uw(
        &self,
        lane_toggles: &[u64],
        lanes: usize,
        lane_cycles: &[u64],
    ) -> Vec<f64> {
        let mut net_fj = vec![0.0f64; lanes];
        let mut internal_fj = vec![0.0f64; lanes];
        for (node, row) in lane_toggles.chunks_exact(lanes).enumerate() {
            let c_net = self.net_fj_per_toggle[node];
            let c_int = self.int_fj_per_toggle[node];
            for (l, &t) in row.iter().enumerate() {
                if t == 0 {
                    continue;
                }
                let toggles = t as f64;
                net_fj[l] += c_net * toggles;
                internal_fj[l] += c_int * toggles;
            }
        }
        (0..lanes)
            .map(|l| {
                let cycles = lane_cycles[l].max(1) as f64;
                let clock_fj = self.clk_fj_per_cycle * cycles;
                let to_uw = |fj: f64| fj * 1e-15 / (cycles * self.period_s) * 1e6;
                to_uw(net_fj[l]) + to_uw(internal_fj[l]) + to_uw(clock_fj)
            })
            .collect()
    }
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "power: total {:.2} uW (net {:.2}, internal {:.2}, clock {:.2}) over {} cycles",
            self.total_power_uw(),
            self.net_power_uw,
            self.internal_power_uw,
            self.clock_power_uw,
            self.cycles
        )?;
        for (name, g) in &self.by_group {
            writeln!(
                f,
                "  {:<20} {:>10.2} fF/cycle {:>10.2} uW",
                name, g.switched_cap_ff, g.power_uw
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::sim::ZeroDelaySim;
    use crate::streams;

    fn adder_report(cycles: usize) -> PowerReport {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let c0 = nl.constant(false);
        let s = crate::gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        let lib = Library::default();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act =
            sim.run(streams::random(42, nl.input_count()).take(cycles)).expect("width matches");
        act.power(&nl, &lib)
    }

    #[test]
    fn power_is_positive_under_random_stimulus() {
        let r = adder_report(500);
        assert!(r.net_power_uw > 0.0);
        assert!(r.internal_power_uw > 0.0);
        assert!(r.total_power_uw() > r.net_power_uw);
    }

    #[test]
    fn idle_circuit_dissipates_only_clock_power() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let q = nl.dff(a, false);
        nl.set_output("q", q);
        let lib = Library::default();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(std::iter::repeat_n(vec![false], 100)).expect("width matches");
        let r = act.power(&nl, &lib);
        assert_eq!(r.net_power_uw, 0.0);
        assert!(r.clock_power_uw > 0.0);
    }

    #[test]
    fn group_breakdown_sums_to_total_cap() {
        let r = adder_report(200);
        let group_sum: f64 = r.by_group.values().map(|g| g.switched_cap_ff).sum();
        assert!(
            (group_sum - r.switched_cap_ff_per_cycle).abs()
                < 1e-6 * r.switched_cap_ff_per_cycle.max(1.0)
        );
    }

    #[test]
    fn power_scales_with_voltage_squared() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.xor([a, b]);
        nl.set_output("y", y);
        let hi = Library::default();
        let lo = hi.scaled_to_voltage(hi.vdd / 2.0);
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(streams::random(1, 2).take(300)).expect("width matches");
        let p_hi = act.power(&nl, &hi).net_power_uw;
        let p_lo = act.power(&nl, &lo).net_power_uw;
        assert!((p_hi / p_lo - 4.0).abs() < 0.01);
    }

    /// The precomputed fast path must reproduce `Activity::power`'s
    /// arithmetic exactly — the Monte-Carlo engines rely on this for
    /// their cross-kernel bit-identity contract.
    #[test]
    fn power_model_is_bit_identical_to_report() {
        for (seed, gates, cycles) in [(1u64, 40usize, 100usize), (2, 80, 37), (3, 15, 250)] {
            let mut nl = Netlist::new();
            crate::gen::random_logic(&mut nl, seed, 6, gates, 3);
            let lib = Library::default();
            let mut sim = ZeroDelaySim::new(&nl).unwrap();
            let act = sim.run(streams::random(seed, nl.input_count()).take(cycles)).expect("width");
            let model = PowerModel::new(&nl, &lib);
            assert_eq!(
                model.total_power_uw(&act).to_bits(),
                act.power(&nl, &lib).total_power_uw().to_bits()
            );
        }
        // Sequential circuit: clock power and DFF internal energy.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let q = nl.dff(a, false);
        let b = nl.xor([a, q]);
        nl.set_output("y", b);
        let lib = Library::default();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(streams::random(9, 1).take(64)).expect("width");
        let model = PowerModel::new(&nl, &lib);
        assert_eq!(
            model.total_power_uw(&act).to_bits(),
            act.power(&nl, &lib).total_power_uw().to_bits()
        );
    }

    #[test]
    fn display_is_nonempty() {
        let r = adder_report(50);
        let s = format!("{r}");
        assert!(s.contains("power: total"));
    }
}
