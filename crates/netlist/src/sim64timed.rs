//! Compiled, bit-parallel 64-lane *timed* (glitch-capturing) simulation.
//!
//! The scalar [`EventDrivenSim`] pops one `(time, node)` event at a time
//! from a binary heap and re-evaluates one `bool` per pop. [`TimedSim64`]
//! runs the same transport-delay model 64 stimulus lanes at a time: the
//! netlist is compiled once into the dense opcode+slot instruction stream
//! shared with [`crate::sim64`], gate delays are bucketed to the library's
//! delay resolution (the GCD of all gate delays), and events live on a
//! discretized **time wheel** — a `wheel_len x node` array of lane masks.
//! One wheel entry coalesces every pending evaluation of a node at one
//! timestamp across all 64 lanes, so a dense glitch cascade costs one
//! word-wide gate evaluation where the scalar engine would pay up to 64
//! heap pops.
//!
//! # Determinism contract
//!
//! Lane `l` of a [`TimedSim64`] run is *bit-identical* to a scalar
//! [`EventDrivenSim`] run over the same vector stream: the wheel processes
//! time buckets in ascending order and, within a bucket, nodes in
//! ascending node-id order — exactly the scalar heap's `(time, node)`
//! ordering — and per-lane toggle/functional counts are exact integers
//! accumulated in vertical carry-save bit-plane counters. Glitch counts,
//! glitch fractions, and power reports therefore agree to the bit with the
//! scalar engine; `tests/timed_differential.rs` locks this in for all six
//! circuit generators.
//!
//! # Single-stream acceleration
//!
//! [`timed_activity`] profiles one stream on either kernel. The packed
//! path exploits that the event-driven simulator always settles to the
//! zero-delay stable state: a cheap [`ZeroDelaySim`] pass computes the
//! stable-state trajectory, and the `N - 1` stream transitions are then
//! replayed 64 per word through [`TimedSim64::eval_transition_block`].
//! Because per-transition toggle counts are order-independent integers,
//! the merged [`TimedActivity`] equals the scalar run's exactly.

use hlpower_obs::metrics as obs;

use crate::error::NetlistError;
use crate::event::{gate_delays_ps, EventDrivenSim, TimedActivity};
use crate::library::Library;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::sim::{Activity, ZeroDelaySim};
use crate::sim64::{broadcast, Program, LANES};

/// Bit planes per node in the vertical transition counters. A node can
/// absorb `2^PLANES - 1` transitions per lane before the carry chain
/// spills; unlike the zero-delay packed kernel, a *timed* node can toggle
/// many times per step, so overflow out of the top plane is handled
/// exactly (see [`bump_planes_spill`]) rather than avoided by a flush
/// schedule.
const PLANES: usize = 16;

/// The simulation kernel used by glitch-aware consumers
/// ([`timed_activity`], `optimize::balance`, `optimize::retime`, the
/// glitch Monte-Carlo entry points).
///
/// Both kernels produce bit-identical [`TimedActivity`] records; the
/// packed kernel is purely a wall-clock optimization and the scalar
/// kernel remains available as the differential oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimedKernel {
    /// The scalar heap-based [`EventDrivenSim`] — the differential oracle.
    Scalar,
    /// The compiled 64-lane time-wheel [`TimedSim64`] (the default).
    #[default]
    Packed64,
}

/// Adds `carry` (a set of lanes that transitioned) into a node's vertical
/// bit-plane counter, spilling exactly into the 64-bit totals if the
/// carry ripples out of the top plane.
#[inline]
fn bump_planes_spill(
    planes: &mut [u64],
    base: usize,
    lane_totals: &mut [u64],
    lane_base: usize,
    mut carry: u64,
) {
    for p in 0..PLANES {
        if carry == 0 {
            return;
        }
        let t = planes[base + p];
        planes[base + p] = t ^ carry;
        carry &= t;
    }
    // Carry out of the top plane: the plane stack wrapped modulo
    // `2^PLANES` for these lanes, so credit the wrapped weight directly.
    while carry != 0 {
        let l = carry.trailing_zeros() as usize;
        lane_totals[lane_base + l] += 1u64 << PLANES;
        carry &= carry - 1;
    }
}

/// Drains a bit-plane array into exact per-lane totals.
fn flush_planes(planes: &mut [u64], lane_totals: &mut [u64], nodes: usize) {
    for node in 0..nodes {
        let base = node * PLANES;
        for p in 0..PLANES {
            let mut w = planes[base + p];
            if w == 0 {
                continue;
            }
            planes[base + p] = 0;
            let weight = 1u64 << p;
            while w != 0 {
                let l = w.trailing_zeros() as usize;
                lane_totals[node * LANES + l] += weight;
                w &= w - 1;
            }
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The lane-parallel compiled timed simulator: 64 independent stimulus
/// lanes advance one clock cycle per [`step`](TimedSim64::step), with
/// every glitch counted.
///
/// Sequencing per step matches [`EventDrivenSim`] exactly: flip-flop
/// outputs and primary inputs change at time zero, events propagate
/// through the time wheel in `(time, node)` order under the library's
/// transport delays, functional transitions are recovered from the
/// settled-state diff, and flip-flops sample their D inputs. The first
/// step initializes values without counting.
#[derive(Debug, Clone)]
pub struct TimedSim64<'a> {
    netlist: &'a Netlist,
    program: Program,
    /// Per-node index into `program.instrs`, `u32::MAX` for non-gates.
    instr_of: Vec<u32>,
    /// CSR fanout graph restricted to gate fanouts: entry `(gate, delay)`
    /// where `delay` is the *bucketed* transport delay of the fanout gate.
    fan_start: Vec<u32>,
    fan: Vec<(u32, u32)>,
    /// Time-wheel extent: max bucketed gate delay + 1 (all pending events
    /// lie within one wheel revolution of the cursor).
    wheel_len: usize,
    /// Pending-evaluation lane masks, `wheel_len x node_count`.
    wheel: Vec<u64>,
    /// Nodes with a nonzero mask per wheel slot.
    touched: Vec<Vec<u32>>,
    /// Total touched entries pending across all slots.
    outstanding: usize,
    /// Packed node values; bit `l` is lane `l`.
    values: Vec<u64>,
    /// Settled values at the start of the current step (functional diff).
    step_start: Vec<u64>,
    /// Next-state words latched per DFF (parallel to `netlist.dffs()`).
    dff_next: Vec<u64>,
    /// Per-DFF D-input slots.
    dff_d: Vec<u32>,
    /// Scratch buffer for one wheel slot's node list (sorted ascending).
    slot_nodes: Vec<u32>,
    /// Vertical counters for all transitions (functional + glitch).
    toggle_planes: Vec<u64>,
    /// Vertical counters for functional (settled-state) transitions.
    func_planes: Vec<u64>,
    /// Exact per-lane totals flushed out of the planes
    /// (`node * LANES + lane`).
    lane_toggles: Vec<u64>,
    lane_functional: Vec<u64>,
    lane_cycles: [u64; LANES],
    initialized: bool,
}

impl<'a> TimedSim64<'a> {
    /// Compiles the netlist under `lib`'s delay model and creates a
    /// simulator with all lanes at their settled initial values.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn new(netlist: &'a Netlist, lib: &Library) -> Result<Self, NetlistError> {
        let _span = hlpower_obs::trace::span("sim64timed", "sim64timed.compile");
        let program = Program::compile(netlist)?;
        let n = netlist.node_count();
        let mut instr_of = vec![u32::MAX; n];
        for (i, ins) in program.instrs.iter().enumerate() {
            instr_of[ins.out as usize] = i as u32;
        }
        // Bucket gate delays to the library's resolution: the GCD of all
        // gate delays. (1 for the default library; coarser libraries get a
        // proportionally shorter wheel.)
        let delays_ps = gate_delays_ps(netlist, lib);
        let resolution =
            delays_ps.iter().filter(|&&d| d > 0).fold(0u64, |acc, &d| gcd(d, acc)).max(1);
        let buckets: Vec<u64> = delays_ps.iter().map(|&d| d / resolution).collect();
        let wheel_len = buckets.iter().max().copied().unwrap_or(0) as usize + 1;
        // Gate-only fanout CSR, annotated with the fanout's own delay.
        let fanouts = netlist.fanouts();
        let mut fan_start = vec![0u32; n + 1];
        let mut fan = Vec::new();
        for u in 0..n {
            for &f in &fanouts[u] {
                if matches!(netlist.kind(f), NodeKind::Gate { .. }) {
                    fan.push((f.index() as u32, buckets[f.index()] as u32));
                }
            }
            fan_start[u + 1] = fan.len() as u32;
        }
        // Settle the combinational network from the broadcast initial
        // state, mirroring the scalar constructor.
        let mut values = program.init.clone();
        for ins in &program.instrs {
            values[ins.out as usize] = program.eval(&values, ins);
        }
        let mut dff_next = Vec::with_capacity(netlist.dffs().len());
        let mut dff_d = Vec::with_capacity(netlist.dffs().len());
        for &q in netlist.dffs() {
            if let NodeKind::Dff { d, init } = netlist.kind(q) {
                dff_next.push(broadcast(*init));
                dff_d.push(d.index() as u32);
            }
        }
        Ok(TimedSim64 {
            netlist,
            program,
            instr_of,
            fan_start,
            fan,
            wheel_len,
            wheel: vec![0; wheel_len * n],
            touched: vec![Vec::new(); wheel_len],
            outstanding: 0,
            values,
            step_start: vec![0; n],
            dff_next,
            dff_d,
            slot_nodes: Vec::new(),
            toggle_planes: vec![0; n * PLANES],
            func_planes: vec![0; n * PLANES],
            lane_toggles: vec![0; n * LANES],
            lane_functional: vec![0; n * LANES],
            lane_cycles: [0; LANES],
            initialized: false,
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Packed current value of a node (bit `l` is lane `l`).
    pub fn value_word(&self, node: NodeId) -> u64 {
        self.values[node.index()]
    }

    /// Applies a source-node change: updates lanes in `mask`, counts
    /// toggles in `count_mask`, and schedules the gate fanouts of the
    /// changed lanes at their transport delays (time zero of this step).
    fn seed_source(&mut self, node: usize, new: u64, mask: u64, count_mask: u64) {
        let changed = (self.values[node] ^ new) & mask;
        if changed == 0 {
            return;
        }
        self.values[node] ^= changed;
        bump_planes_spill(
            &mut self.toggle_planes,
            node * PLANES,
            &mut self.lane_toggles,
            node * LANES,
            changed & count_mask,
        );
        let n = self.instr_of.len();
        for k in self.fan_start[node] as usize..self.fan_start[node + 1] as usize {
            let (f, db) = self.fan[k];
            // Gate delays are >= 1 bucket, so at time zero the target slot
            // is the delay itself (no wrap).
            let idx = db as usize * n + f as usize;
            if self.wheel[idx] == 0 {
                self.touched[db as usize].push(f);
                self.outstanding += 1;
            }
            self.wheel[idx] |= changed;
        }
    }

    /// Processes the wheel until no events remain, counting toggles in
    /// `count_mask`. Returns the number of word-wide evaluations (each
    /// coalesces up to 64 scalar heap pops at one `(time, node)` point).
    fn drain(&mut self, count_mask: u64) -> u64 {
        let n = self.instr_of.len();
        let mut events = 0u64;
        let mut t = 0usize;
        while self.outstanding > 0 {
            t += 1;
            let slot = t % self.wheel_len;
            if self.touched[slot].is_empty() {
                continue;
            }
            let mut nodes = std::mem::take(&mut self.slot_nodes);
            std::mem::swap(&mut nodes, &mut self.touched[slot]);
            self.outstanding -= nodes.len();
            // Scalar tie-break: equal-time events pop in ascending node-id
            // order. A node appears at most once per slot (wheel dedup).
            nodes.sort_unstable();
            for &node in &nodes {
                let idx = slot * n + node as usize;
                let sched = self.wheel[idx];
                self.wheel[idx] = 0;
                events += 1;
                let ins = self.program.instrs[self.instr_of[node as usize] as usize];
                let new = self.program.eval(&self.values, &ins);
                let node = node as usize;
                let changed = (self.values[node] ^ new) & sched;
                if changed == 0 {
                    continue;
                }
                self.values[node] ^= changed;
                bump_planes_spill(
                    &mut self.toggle_planes,
                    node * PLANES,
                    &mut self.lane_toggles,
                    node * LANES,
                    changed & count_mask,
                );
                for k in self.fan_start[node] as usize..self.fan_start[node + 1] as usize {
                    let (f, db) = self.fan[k];
                    // Delays are in [1, wheel_len - 1], so the target slot
                    // never collides with the slot being processed.
                    let slot2 = (t + db as usize) % self.wheel_len;
                    let idx2 = slot2 * n + f as usize;
                    if self.wheel[idx2] == 0 {
                        self.touched[slot2].push(f);
                        self.outstanding += 1;
                    }
                    self.wheel[idx2] |= changed;
                }
            }
            nodes.clear();
            self.slot_nodes = nodes;
        }
        events
    }

    /// Advances every lane by one clock cycle. `inputs[i]` packs the bit
    /// of primary input `i` for all 64 lanes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// have one word per primary input.
    pub fn step(&mut self, inputs: &[u64]) -> Result<(), NetlistError> {
        self.step_masked(inputs, !0)
    }

    /// [`step`](Self::step) restricted to the lanes set in `mask`.
    ///
    /// The contract matches [`crate::Sim64::step_masked`]: a prefix-closed
    /// active set per lane (active for its first `k` steps, inactive
    /// afterwards) makes lane `l` bit-identical to a scalar
    /// [`EventDrivenSim`] run over a `k`-vector stream. Input bits of
    /// inactive lanes are don't-cares.
    ///
    /// # Errors
    ///
    /// As [`step`](Self::step).
    pub fn step_masked(&mut self, inputs: &[u64], mask: u64) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                got: inputs.len(),
                expected: self.netlist.input_count(),
            });
        }
        // The first step only establishes values; count nothing.
        let count_mask = if self.initialized { mask } else { 0 };
        self.step_start.copy_from_slice(&self.values);
        // Time-zero events: DFF outputs and primary inputs.
        for i in 0..self.dff_next.len() {
            let q = self.netlist.dffs()[i].index();
            let new = self.dff_next[i];
            self.seed_source(q, new, mask, count_mask);
        }
        for (i, &new) in inputs.iter().enumerate() {
            let inp = self.netlist.inputs()[i].index();
            self.seed_source(inp, new, mask, count_mask);
        }
        let events = self.drain(count_mask);
        obs::SIM_EVP_STEPS.inc();
        obs::SIM_EVP_EVENTS.add(events);
        // Functional transition accounting: settled-state diff.
        if count_mask != 0 {
            for node in 0..self.values.len() {
                let diff = (self.step_start[node] ^ self.values[node]) & count_mask;
                if diff != 0 {
                    bump_planes_spill(
                        &mut self.func_planes,
                        node * PLANES,
                        &mut self.lane_functional,
                        node * LANES,
                        diff,
                    );
                }
            }
        }
        // Sample D inputs for the next cycle.
        for (i, &d) in self.dff_d.iter().enumerate() {
            self.dff_next[i] = self.values[d as usize];
        }
        if self.initialized {
            obs::SIM_EVP_LANE_CYCLES.add(mask.count_ones() as u64);
            for l in 0..LANES {
                self.lane_cycles[l] += (mask >> l) & 1;
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// Replays 64 independent *transitions* of a single stream: lane `l`
    /// starts from settled state `from` and receives the source-node
    /// (primary input and flip-flop output) values of settled state `to`,
    /// both packed per node with bit `l` = lane `l`. Used by
    /// [`timed_activity`]'s trajectory driver; every lane counts (no
    /// initialization step), and flip-flop latching state is bypassed, so
    /// do not mix transition blocks with [`step`](Self::step) calls on one
    /// instance.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ActivitySizeMismatch`] if `from`/`to` do
    /// not have one word per node.
    pub fn eval_transition_block(
        &mut self,
        from: &[u64],
        to: &[u64],
        mask: u64,
    ) -> Result<(), NetlistError> {
        let n = self.values.len();
        if from.len() != n || to.len() != n {
            return Err(NetlistError::ActivitySizeMismatch {
                left: n,
                right: if from.len() != n { from.len() } else { to.len() },
            });
        }
        self.values.copy_from_slice(from);
        for i in 0..self.dff_next.len() {
            let q = self.netlist.dffs()[i].index();
            self.seed_source(q, to[q], mask, mask);
        }
        for i in 0..self.netlist.input_count() {
            // Primary inputs change at time zero like DFF outputs.
            let inp = self.netlist.inputs()[i].index();
            self.seed_source(inp, to[inp], mask, mask);
        }
        let events = self.drain(mask);
        obs::SIM_EVP_STEPS.inc();
        obs::SIM_EVP_EVENTS.add(events);
        obs::SIM_EVP_LANE_CYCLES.add(mask.count_ones() as u64);
        for node in 0..n {
            debug_assert_eq!(
                (self.values[node] ^ to[node]) & mask,
                0,
                "event-driven settle diverged from the zero-delay trajectory at node {node}"
            );
            let diff = (from[node] ^ self.values[node]) & mask;
            if diff != 0 {
                bump_planes_spill(
                    &mut self.func_planes,
                    node * PLANES,
                    &mut self.lane_functional,
                    node * LANES,
                    diff,
                );
            }
        }
        for l in 0..LANES {
            self.lane_cycles[l] += (mask >> l) & 1;
        }
        Ok(())
    }

    /// Returns the 64 per-lane timed-activity records and resets the
    /// counters (values, flip-flop state, and the initialized flag are
    /// preserved so runs can be chained, mirroring the scalar
    /// `take_activity`).
    ///
    /// Lane `l`'s record is bit-identical to what a scalar
    /// [`EventDrivenSim`] run over lane `l`'s stream would have
    /// accumulated.
    pub fn take_lane_activities(&mut self) -> Vec<TimedActivity> {
        let n = self.values.len();
        flush_planes(&mut self.toggle_planes, &mut self.lane_toggles, n);
        flush_planes(&mut self.func_planes, &mut self.lane_functional, n);
        let mut out = Vec::with_capacity(LANES);
        let mut total_toggles = 0u64;
        let mut total_glitches = 0u64;
        for l in 0..LANES {
            let mut toggles = vec![0u64; n];
            let mut functional = vec![0u64; n];
            for node in 0..n {
                toggles[node] = self.lane_toggles[node * LANES + l];
                functional[node] = self.lane_functional[node * LANES + l];
                total_toggles += toggles[node];
                total_glitches += toggles[node].saturating_sub(functional[node]);
            }
            out.push(TimedActivity {
                activity: Activity { toggles, cycles: self.lane_cycles[l] },
                functional,
            });
        }
        obs::SIM_EVP_TRANSITIONS.add(total_toggles);
        obs::SIM_EVP_GLITCHES.add(total_glitches);
        self.lane_toggles.iter_mut().for_each(|t| *t = 0);
        self.lane_functional.iter_mut().for_each(|t| *t = 0);
        self.lane_cycles = [0; LANES];
        out
    }
}

/// Profiles one input-vector stream with the chosen timed kernel and
/// returns the glitch-decomposed activity.
///
/// Both kernels return bit-identical records. The scalar kernel steps an
/// [`EventDrivenSim`] over the stream; the packed kernel computes the
/// zero-delay stable-state trajectory once, then replays the stream's
/// `N - 1` transitions 64 per word on a [`TimedSim64`] and merges the
/// lanes (exact integer sums, so the reorganization is invisible).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists or
/// [`NetlistError::InputWidthMismatch`] for a bad vector width.
pub fn timed_activity(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
    kernel: TimedKernel,
) -> Result<TimedActivity, NetlistError> {
    match kernel {
        TimedKernel::Scalar => {
            let mut sim = EventDrivenSim::new(netlist, lib)?;
            sim.run(stream.iter().cloned())
        }
        TimedKernel::Packed64 => timed_activity_packed(netlist, lib, stream),
    }
}

/// The packed [`timed_activity`] driver: zero-delay trajectory +
/// transition blocks.
fn timed_activity_packed(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
) -> Result<TimedActivity, NetlistError> {
    let n = netlist.node_count();
    let mut zd = ZeroDelaySim::new(netlist)?;
    if stream.is_empty() {
        return Ok(TimedActivity::zero(netlist));
    }
    // Settled-state trajectory, bit-packed per node: bit `c` of
    // `traj[node * blocks + c / 64]` is the node's stable value after
    // vector `c`. The event-driven simulator always settles to exactly
    // this state, so it is both the per-transition start state and the
    // functional reference.
    let blocks = stream.len().div_ceil(64);
    let mut traj = vec![0u64; n * blocks];
    for (c, v) in stream.iter().enumerate() {
        zd.step(v)?;
        let (w, b) = (c / 64, c % 64);
        for (node, &val) in zd.values_raw().iter().enumerate() {
            traj[node * blocks + w] |= (val as u64) << b;
        }
    }
    // Consume the zero-delay activity so the trajectory pass does not
    // leak into the caller-visible zero-delay metrics totals twice.
    let _ = zd.take_activity();

    let mut sim = TimedSim64::new(netlist, lib)?;
    let mut from = vec![0u64; n];
    let mut to = vec![0u64; n];
    let transitions = stream.len() - 1;
    let mut t0 = 1usize;
    while t0 <= transitions {
        let lanes = (transitions - t0 + 1).min(LANES);
        let mask = if lanes == LANES { !0u64 } else { (1u64 << lanes) - 1 };
        for node in 0..n {
            let w = &traj[node * blocks..(node + 1) * blocks];
            from[node] = window(w, t0 - 1);
            to[node] = window(w, t0);
        }
        sim.eval_transition_block(&from, &to, mask)?;
        t0 += lanes;
    }
    let mut out = TimedActivity::zero(netlist);
    for lane in sim.take_lane_activities() {
        out.merge(&lane)?;
    }
    Ok(out)
}

/// Extracts 64 bits starting at `start` from a bit-packed word slice
/// (bits beyond the slice read as zero; callers mask off unused lanes).
#[inline]
fn window(words: &[u64], start: usize) -> u64 {
    let w = start / 64;
    let b = start % 64;
    let mut x = words[w] >> b;
    if b != 0 && w + 1 < words.len() {
        x |= words[w + 1] << (64 - b);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, streams};
    use hlpower_rng::Rng;

    fn mult(width: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", width);
        let b = nl.input_bus("b", width);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        nl
    }

    fn fir() -> Netlist {
        let mut nl = Netlist::new();
        let x = nl.input_bus("x", 6);
        let y = gen::fir_filter(&mut nl, &x, &[7, 13, 7], true);
        nl.output_bus("y", &y);
        nl
    }

    /// Packs per-lane bool vectors into input words.
    fn pack(vectors: &[Vec<bool>]) -> Vec<u64> {
        let width = vectors[0].len();
        let mut words = vec![0u64; width];
        for (lane, v) in vectors.iter().enumerate() {
            for (i, &b) in v.iter().enumerate() {
                words[i] |= (b as u64) << lane;
            }
        }
        words
    }

    #[test]
    fn lanes_match_scalar_event_sim_on_sequential_circuit() {
        let nl = fir();
        let lib = Library::default();
        let w = nl.input_count();
        let root = Rng::seed_from_u64(42);
        let cycles = 80;
        let mut sim = TimedSim64::new(&nl, &lib).unwrap();
        let mut iters: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        for _ in 0..cycles {
            let vectors: Vec<Vec<bool>> = iters.iter_mut().map(|it| it.next().unwrap()).collect();
            sim.step(&pack(&vectors)).unwrap();
        }
        let lanes = sim.take_lane_activities();
        for l in [0usize, 1, 31, 63] {
            let mut scalar = EventDrivenSim::new(&nl, &lib).unwrap();
            let act =
                scalar.run(streams::random_rng(root.split(l as u64), w).take(cycles)).unwrap();
            assert_eq!(lanes[l], act, "lane {l} diverged from its scalar stream");
        }
    }

    #[test]
    fn masked_lanes_stop_where_scalar_streams_end() {
        let nl = mult(3);
        let lib = Library::default();
        let w = nl.input_count();
        let root = Rng::seed_from_u64(17);
        let len = |l: usize| 5 + l / 2;
        let mut sim = TimedSim64::new(&nl, &lib).unwrap();
        let mut iters: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w).take(len(l))).collect();
        loop {
            let mut mask = 0u64;
            let mut vectors = vec![vec![false; w]; LANES];
            for (l, it) in iters.iter_mut().enumerate() {
                if let Some(v) = it.next() {
                    vectors[l] = v;
                    mask |= 1 << l;
                }
            }
            if mask == 0 {
                break;
            }
            sim.step_masked(&pack(&vectors), mask).unwrap();
        }
        let lanes = sim.take_lane_activities();
        for l in [0usize, 9, 63] {
            let mut scalar = EventDrivenSim::new(&nl, &lib).unwrap();
            let act =
                scalar.run(streams::random_rng(root.split(l as u64), w).take(len(l))).unwrap();
            assert_eq!(lanes[l], act, "masked lane {l} diverged");
        }
    }

    #[test]
    fn timed_activity_kernels_agree_on_combinational_circuit() {
        let nl = mult(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(3, nl.input_count()).take(150).collect();
        let scalar = timed_activity(&nl, &lib, &stream, TimedKernel::Scalar).unwrap();
        let packed = timed_activity(&nl, &lib, &stream, TimedKernel::Packed64).unwrap();
        assert_eq!(scalar, packed);
        assert!(scalar.total_glitches().unwrap() > 0, "multiplier should glitch");
    }

    #[test]
    fn timed_activity_kernels_agree_on_sequential_circuit() {
        let nl = fir();
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(8, nl.input_count()).take(130).collect();
        let scalar = timed_activity(&nl, &lib, &stream, TimedKernel::Scalar).unwrap();
        let packed = timed_activity(&nl, &lib, &stream, TimedKernel::Packed64).unwrap();
        assert_eq!(scalar, packed);
    }

    #[test]
    fn timed_activity_handles_degenerate_streams() {
        let nl = mult(3);
        let lib = Library::default();
        for take in [0usize, 1, 2, 64, 65] {
            let stream: Vec<Vec<bool>> = streams::random(5, nl.input_count()).take(take).collect();
            let scalar = timed_activity(&nl, &lib, &stream, TimedKernel::Scalar).unwrap();
            let packed = timed_activity(&nl, &lib, &stream, TimedKernel::Packed64).unwrap();
            assert_eq!(scalar, packed, "stream length {take}");
        }
    }

    #[test]
    fn timed_activity_propagates_width_mismatch() {
        let nl = mult(3);
        let lib = Library::default();
        let stream = vec![vec![false; nl.input_count()], vec![true; 2]];
        for kernel in [TimedKernel::Scalar, TimedKernel::Packed64] {
            assert!(matches!(
                timed_activity(&nl, &lib, &stream, kernel),
                Err(NetlistError::InputWidthMismatch { got: 2, .. })
            ));
        }
    }

    #[test]
    fn input_width_is_validated() {
        let nl = mult(3);
        let lib = Library::default();
        let mut sim = TimedSim64::new(&nl, &lib).unwrap();
        assert!(matches!(
            sim.step(&[0u64; 3]),
            Err(NetlistError::InputWidthMismatch { got: 3, expected: 6 })
        ));
    }

    #[test]
    fn plane_spill_is_exact_past_the_top_plane() {
        // Force the carry chain out of the 16-plane stack and check that
        // the spilled weight lands exactly in the 64-bit totals.
        let mut planes = vec![0u64; PLANES];
        let mut totals = vec![0u64; LANES];
        let reps = (1u64 << PLANES) + 5;
        for _ in 0..reps {
            bump_planes_spill(&mut planes, 0, &mut totals, 0, !0);
        }
        flush_planes(&mut planes, &mut totals, 1);
        for l in 0..LANES {
            assert_eq!(totals[l], reps, "lane {l}");
        }
    }
}
