//! Compiled, bit-parallel *timed* (glitch-capturing) simulation — kernel
//! selection and the single-stream driver.
//!
//! The scalar [`EventDrivenSim`] pops one `(time, node)` event at a time
//! from a binary heap and re-evaluates one `bool` per pop. [`TimedSim64`]
//! runs the same transport-delay model 64 stimulus lanes at a time: the
//! netlist is compiled once into the dense opcode+slot instruction stream
//! shared with [`crate::sim64`], gate delays are bucketed to the library's
//! delay resolution (the GCD of all gate delays), and events live on a
//! discretized **time wheel** — a `wheel_len x node` array of lane masks.
//! One wheel entry coalesces every pending evaluation of a node at one
//! timestamp across all lanes, so a dense glitch cascade costs one
//! word-wide gate evaluation where the scalar engine would pay up to one
//! heap pop per lane. `TimedSim64` is the `u64` instantiation of the
//! width-generic [`WideTimedSim`](crate::WideTimedSim) in
//! [`crate::simwide`]; [`TimedKernel::Packed256`]/[`TimedKernel::Packed512`]
//! select the wider words and [`TimedKernel::Auto`] (the default) picks a
//! width from the workload size.
//!
//! # Determinism contract
//!
//! Lane `l` of a [`TimedSim64`] run is *bit-identical* to a scalar
//! [`EventDrivenSim`] run over the same vector stream: the wheel processes
//! time buckets in ascending order and, within a bucket, nodes in
//! ascending node-id order — exactly the scalar heap's `(time, node)`
//! ordering — and per-lane toggle/functional counts are exact integers
//! accumulated in vertical carry-save bit-plane counters. Glitch counts,
//! glitch fractions, and power reports therefore agree to the bit with the
//! scalar engine at **every** lane width; `tests/timed_differential.rs`
//! and `tests/wide_differential.rs` lock this in.
//!
//! # Single-stream acceleration
//!
//! [`timed_activity`] profiles one stream on the chosen kernel. The packed
//! path exploits that the event-driven simulator always settles to the
//! zero-delay stable state: a cheap [`ZeroDelaySim`] pass computes the
//! stable-state trajectory, and the `N - 1` stream transitions are then
//! replayed [`Word::LANES`] per word through
//! [`WideTimedSim::eval_transition_block`]. Because per-transition toggle
//! counts are order-independent integers, the merged [`TimedActivity`]
//! equals the scalar run's exactly.

use crate::error::NetlistError;
use crate::event::{EventDrivenSim, TimedActivity};
use crate::library::Library;
use crate::netlist::Netlist;
use crate::sim::ZeroDelaySim;
use crate::simwide::WideTimedSim;
use crate::words::{Word, W256, W512};

/// The 64-lane lane-parallel compiled timed simulator: the `u64`
/// instantiation of the width-generic [`WideTimedSim`](crate::WideTimedSim).
/// See the `simwide` module for the machinery and the wider 256/512-lane
/// words.
pub type TimedSim64<'a> = WideTimedSim<'a, u64>;

/// The simulation kernel used by glitch-aware consumers
/// ([`timed_activity`], `optimize::balance`, `optimize::retime`, the
/// glitch Monte-Carlo entry points).
///
/// Every kernel produces bit-identical [`TimedActivity`] records; the
/// packed kernels are purely wall-clock optimizations and the scalar
/// kernel remains available as the differential oracle. Wider words
/// amortize the per-instruction overhead over more lanes but cost more
/// per-lane state, so [`Auto`](Self::Auto) — the default — picks the
/// widest word the workload can fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimedKernel {
    /// The scalar heap-based [`EventDrivenSim`] — the differential oracle.
    Scalar,
    /// The compiled 64-lane time-wheel [`TimedSim64`].
    Packed64,
    /// The compiled 256-lane time-wheel kernel ([`W256`] words).
    Packed256,
    /// The compiled 512-lane time-wheel kernel ([`W512`] words).
    Packed512,
    /// Picks a packed width from the workload size (the default): wide
    /// enough words amortize instruction decode, but a workload smaller
    /// than the lane count would leave lanes masked off for no gain.
    #[default]
    Auto,
}

impl TimedKernel {
    /// Resolves [`Auto`](Self::Auto) against a workload of `transitions`
    /// stream transitions (the wide differential batteries and
    /// `DESIGN.md` document this heuristic): at least 512 transitions
    /// fill a [`W512`] word, at least 256 fill a [`W256`] word, anything
    /// smaller stays on `u64`. Explicit kernels resolve to themselves.
    pub fn resolve(self, transitions: usize) -> TimedKernel {
        match self {
            TimedKernel::Auto => {
                if transitions >= W512::LANES {
                    TimedKernel::Packed512
                } else if transitions >= W256::LANES {
                    TimedKernel::Packed256
                } else {
                    TimedKernel::Packed64
                }
            }
            k => k,
        }
    }

    /// Number of stimulus lanes one step of this kernel advances (1 for
    /// the scalar kernel).
    ///
    /// # Panics
    ///
    /// Panics on [`Auto`](Self::Auto), which has no width until
    /// [`resolve`](Self::resolve)d against a workload.
    pub fn lanes(self) -> usize {
        match self {
            TimedKernel::Scalar => 1,
            TimedKernel::Packed64 => 64,
            TimedKernel::Packed256 => W256::LANES,
            TimedKernel::Packed512 => W512::LANES,
            TimedKernel::Auto => panic!("TimedKernel::Auto must be resolved before use"),
        }
    }
}

/// Profiles one input-vector stream with the chosen timed kernel and
/// returns the glitch-decomposed activity.
///
/// All kernels return bit-identical records. The scalar kernel steps an
/// [`EventDrivenSim`] over the stream; the packed kernels compute the
/// zero-delay stable-state trajectory once, then replay the stream's
/// `N - 1` transitions [`Word::LANES`] per word on a [`WideTimedSim`] and
/// merge the lanes (exact integer sums, so the reorganization is
/// invisible). [`TimedKernel::Auto`] resolves to the widest word the
/// transition count can fill.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists or
/// [`NetlistError::InputWidthMismatch`] for a bad vector width.
pub fn timed_activity(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
    kernel: TimedKernel,
) -> Result<TimedActivity, NetlistError> {
    match kernel.resolve(stream.len().saturating_sub(1)) {
        TimedKernel::Scalar => {
            let mut sim = EventDrivenSim::new(netlist, lib)?;
            sim.run(stream.iter().cloned())
        }
        TimedKernel::Packed64 => timed_activity_packed::<u64>(netlist, lib, stream),
        TimedKernel::Packed256 => timed_activity_packed::<W256>(netlist, lib, stream),
        TimedKernel::Packed512 => timed_activity_packed::<W512>(netlist, lib, stream),
        TimedKernel::Auto => unreachable!("resolve never returns Auto"),
    }
}

/// The packed [`timed_activity`] driver: zero-delay trajectory +
/// transition blocks, at any word width.
fn timed_activity_packed<W: Word>(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
) -> Result<TimedActivity, NetlistError> {
    let n = netlist.node_count();
    let mut zd = ZeroDelaySim::new(netlist)?;
    if stream.is_empty() {
        return Ok(TimedActivity::zero(netlist));
    }
    // Settled-state trajectory, bit-packed per node: bit `c` of
    // `traj[node * blocks + c / 64]` is the node's stable value after
    // vector `c`. The event-driven simulator always settles to exactly
    // this state, so it is both the per-transition start state and the
    // functional reference.
    let blocks = stream.len().div_ceil(64);
    let mut traj = vec![0u64; n * blocks];
    for (c, v) in stream.iter().enumerate() {
        zd.step(v)?;
        let (w, b) = (c / 64, c % 64);
        for (node, &val) in zd.values_raw().iter().enumerate() {
            traj[node * blocks + w] |= (val as u64) << b;
        }
    }
    // Consume the zero-delay activity so the trajectory pass does not
    // leak into the caller-visible zero-delay metrics totals twice.
    let _ = zd.take_activity();

    let mut sim = WideTimedSim::<W>::new(netlist, lib)?;
    let mut from = vec![W::zero(); n];
    let mut to = vec![W::zero(); n];
    let transitions = stream.len() - 1;
    let mut t0 = 1usize;
    while t0 <= transitions {
        let lanes = (transitions - t0 + 1).min(W::LANES);
        let mask = W::low_mask(lanes);
        for node in 0..n {
            let w = &traj[node * blocks..(node + 1) * blocks];
            for c in 0..W::CHUNKS {
                from[node].chunks_mut()[c] = window(w, t0 - 1 + 64 * c);
                to[node].chunks_mut()[c] = window(w, t0 + 64 * c);
            }
        }
        sim.eval_transition_block(&from, &to, mask)?;
        t0 += lanes;
    }
    let mut out = TimedActivity::zero(netlist);
    for lane in sim.take_lane_activities() {
        out.merge(&lane)?;
    }
    Ok(out)
}

/// Extracts 64 bits starting at `start` from a bit-packed word slice
/// (bits beyond the slice read as zero; callers mask off unused lanes).
#[inline]
fn window(words: &[u64], start: usize) -> u64 {
    let w = start / 64;
    let b = start % 64;
    if w >= words.len() {
        return 0;
    }
    let mut x = words[w] >> b;
    if b != 0 && w + 1 < words.len() {
        x |= words[w + 1] << (64 - b);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim64::LANES;
    use crate::{gen, streams};
    use hlpower_rng::Rng;

    fn mult(width: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", width);
        let b = nl.input_bus("b", width);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        nl
    }

    fn fir() -> Netlist {
        let mut nl = Netlist::new();
        let x = nl.input_bus("x", 6);
        let y = gen::fir_filter(&mut nl, &x, &[7, 13, 7], true);
        nl.output_bus("y", &y);
        nl
    }

    /// Packs per-lane bool vectors into input words.
    fn pack(vectors: &[Vec<bool>]) -> Vec<u64> {
        let width = vectors[0].len();
        let mut words = vec![0u64; width];
        for (lane, v) in vectors.iter().enumerate() {
            for (i, &b) in v.iter().enumerate() {
                words[i] |= (b as u64) << lane;
            }
        }
        words
    }

    #[test]
    fn lanes_match_scalar_event_sim_on_sequential_circuit() {
        let nl = fir();
        let lib = Library::default();
        let w = nl.input_count();
        let root = Rng::seed_from_u64(42);
        let cycles = 80;
        let mut sim = TimedSim64::new(&nl, &lib).unwrap();
        let mut iters: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        for _ in 0..cycles {
            let vectors: Vec<Vec<bool>> = iters.iter_mut().map(|it| it.next().unwrap()).collect();
            sim.step(&pack(&vectors)).unwrap();
        }
        let lanes = sim.take_lane_activities();
        for l in [0usize, 1, 31, 63] {
            let mut scalar = EventDrivenSim::new(&nl, &lib).unwrap();
            let act =
                scalar.run(streams::random_rng(root.split(l as u64), w).take(cycles)).unwrap();
            assert_eq!(lanes[l], act, "lane {l} diverged from its scalar stream");
        }
    }

    #[test]
    fn masked_lanes_stop_where_scalar_streams_end() {
        let nl = mult(3);
        let lib = Library::default();
        let w = nl.input_count();
        let root = Rng::seed_from_u64(17);
        let len = |l: usize| 5 + l / 2;
        let mut sim = TimedSim64::new(&nl, &lib).unwrap();
        let mut iters: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w).take(len(l))).collect();
        loop {
            let mut mask = 0u64;
            let mut vectors = vec![vec![false; w]; LANES];
            for (l, it) in iters.iter_mut().enumerate() {
                if let Some(v) = it.next() {
                    vectors[l] = v;
                    mask |= 1 << l;
                }
            }
            if mask == 0 {
                break;
            }
            sim.step_masked(&pack(&vectors), mask).unwrap();
        }
        let lanes = sim.take_lane_activities();
        for l in [0usize, 9, 63] {
            let mut scalar = EventDrivenSim::new(&nl, &lib).unwrap();
            let act =
                scalar.run(streams::random_rng(root.split(l as u64), w).take(len(l))).unwrap();
            assert_eq!(lanes[l], act, "masked lane {l} diverged");
        }
    }

    #[test]
    fn timed_activity_kernels_agree_on_combinational_circuit() {
        let nl = mult(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(3, nl.input_count()).take(150).collect();
        let scalar = timed_activity(&nl, &lib, &stream, TimedKernel::Scalar).unwrap();
        for kernel in [
            TimedKernel::Packed64,
            TimedKernel::Packed256,
            TimedKernel::Packed512,
            TimedKernel::Auto,
        ] {
            let packed = timed_activity(&nl, &lib, &stream, kernel).unwrap();
            assert_eq!(scalar, packed, "{kernel:?}");
        }
        assert!(scalar.total_glitches().unwrap() > 0, "multiplier should glitch");
    }

    #[test]
    fn timed_activity_kernels_agree_on_sequential_circuit() {
        let nl = fir();
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(8, nl.input_count()).take(130).collect();
        let scalar = timed_activity(&nl, &lib, &stream, TimedKernel::Scalar).unwrap();
        for kernel in [
            TimedKernel::Packed64,
            TimedKernel::Packed256,
            TimedKernel::Packed512,
            TimedKernel::Auto,
        ] {
            let packed = timed_activity(&nl, &lib, &stream, kernel).unwrap();
            assert_eq!(scalar, packed, "{kernel:?}");
        }
    }

    #[test]
    fn timed_activity_handles_degenerate_streams() {
        let nl = mult(3);
        let lib = Library::default();
        for take in [0usize, 1, 2, 64, 65, 256, 257] {
            let stream: Vec<Vec<bool>> = streams::random(5, nl.input_count()).take(take).collect();
            let scalar = timed_activity(&nl, &lib, &stream, TimedKernel::Scalar).unwrap();
            for kernel in [TimedKernel::Packed64, TimedKernel::Packed512, TimedKernel::Auto] {
                let packed = timed_activity(&nl, &lib, &stream, kernel).unwrap();
                assert_eq!(scalar, packed, "stream length {take}, {kernel:?}");
            }
        }
    }

    #[test]
    fn auto_kernel_scales_width_with_the_workload() {
        assert_eq!(TimedKernel::Auto.resolve(0), TimedKernel::Packed64);
        assert_eq!(TimedKernel::Auto.resolve(255), TimedKernel::Packed64);
        assert_eq!(TimedKernel::Auto.resolve(256), TimedKernel::Packed256);
        assert_eq!(TimedKernel::Auto.resolve(511), TimedKernel::Packed256);
        assert_eq!(TimedKernel::Auto.resolve(512), TimedKernel::Packed512);
        assert_eq!(TimedKernel::Scalar.resolve(10_000), TimedKernel::Scalar);
        assert_eq!(TimedKernel::Packed64.lanes(), 64);
        assert_eq!(TimedKernel::Packed512.lanes(), 512);
    }

    #[test]
    fn timed_activity_propagates_width_mismatch() {
        let nl = mult(3);
        let lib = Library::default();
        let stream = vec![vec![false; nl.input_count()], vec![true; 2]];
        for kernel in [TimedKernel::Scalar, TimedKernel::Packed64, TimedKernel::Auto] {
            assert!(matches!(
                timed_activity(&nl, &lib, &stream, kernel),
                Err(NetlistError::InputWidthMismatch { got: 2, .. })
            ));
        }
    }

    #[test]
    fn input_width_is_validated() {
        let nl = mult(3);
        let lib = Library::default();
        let mut sim = TimedSim64::new(&nl, &lib).unwrap();
        assert!(matches!(
            sim.step(&[0u64; 3]),
            Err(NetlistError::InputWidthMismatch { got: 3, expected: 6 })
        ));
    }
}
