//! Zero-delay (functional) cycle-based simulation with toggle counting.

use hlpower_obs::metrics as obs;

use crate::error::NetlistError;
use crate::library::Library;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::power::PowerReport;

/// Per-node toggle counts collected by a simulation run.
///
/// An `Activity` is the common currency between simulators and the power
/// model: both the zero-delay and the event-driven simulator produce one,
/// and [`Activity::power`] converts it into a [`PowerReport`] under a
/// [`Library`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Activity {
    /// Number of output transitions observed per node, indexed by node id.
    pub toggles: Vec<u64>,
    /// Number of clock cycles simulated.
    pub cycles: u64,
}

impl Activity {
    /// An all-zero activity record for a netlist.
    pub fn zero(netlist: &Netlist) -> Self {
        Activity { toggles: vec![0; netlist.node_count()], cycles: 0 }
    }

    /// Average switching activity (transitions per cycle) of a node.
    pub fn node_activity(&self, node: NodeId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[node.index()] as f64 / self.cycles as f64
        }
    }

    /// Average switching activity over a set of nodes (e.g. a bus).
    pub fn mean_activity(&self, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        nodes.iter().map(|&n| self.node_activity(n)).sum::<f64>() / nodes.len() as f64
    }

    /// Converts toggle counts into a power report under a library.
    pub fn power(&self, netlist: &Netlist, lib: &Library) -> PowerReport {
        PowerReport::from_activity(netlist, lib, self)
    }

    /// Merges another activity record (same netlist) into this one.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ActivitySizeMismatch`] if the records have
    /// different node counts; `self` is left unchanged in that case.
    pub fn merge(&mut self, other: &Activity) -> Result<(), NetlistError> {
        if self.toggles.len() != other.toggles.len() {
            return Err(NetlistError::ActivitySizeMismatch {
                left: self.toggles.len(),
                right: other.toggles.len(),
            });
        }
        for (t, o) in self.toggles.iter_mut().zip(&other.toggles) {
            *t += o;
        }
        self.cycles += other.cycles;
        Ok(())
    }
}

/// A cycle-based, zero-delay functional simulator.
///
/// Each [`step`](ZeroDelaySim::step) models one clock cycle: flip-flops
/// first present their previously-sampled values, the combinational network
/// settles instantly (no glitches), outputs are read, and flip-flops sample
/// their D inputs for the next cycle. Toggle counts therefore reflect the
/// *zero-delay* switching activity used by most of the survey's macro-model
/// characterization flows.
#[derive(Debug, Clone)]
pub struct ZeroDelaySim<'a> {
    netlist: &'a Netlist,
    order: Vec<NodeId>,
    values: Vec<bool>,
    /// Next-state values latched for each DFF (parallel to `netlist.dffs()`).
    dff_next: Vec<bool>,
    activity: Activity,
    initialized: bool,
    /// Gate count, cached so `step` can bump the evaluation metric once.
    gates_per_step: u64,
    /// Reusable fan-in gather buffer (sized to the widest gate) so the
    /// inner loop never allocates.
    scratch: Vec<bool>,
}

impl<'a> ZeroDelaySim<'a> {
    /// Creates a simulator, validating that the netlist is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part of the netlist is cyclic.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order = netlist.topo_order()?;
        let mut values = vec![false; netlist.node_count()];
        let mut dff_next = Vec::with_capacity(netlist.dffs().len());
        for &d in netlist.dffs() {
            if let NodeKind::Dff { init, .. } = netlist.kind(d) {
                values[d.index()] = *init;
                dff_next.push(*init);
            }
        }
        for id in netlist.node_ids() {
            if let NodeKind::Const(v) = netlist.kind(id) {
                values[id.index()] = *v;
            }
        }
        let gates_per_step =
            order.iter().filter(|&&id| matches!(netlist.kind(id), NodeKind::Gate { .. })).count()
                as u64;
        let max_fanin = netlist
            .node_ids()
            .map(|id| match netlist.kind(id) {
                NodeKind::Gate { inputs, .. } => inputs.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        Ok(ZeroDelaySim {
            netlist,
            order,
            values,
            dff_next,
            activity: Activity::zero(netlist),
            initialized: false,
            gates_per_step,
            scratch: Vec::with_capacity(max_fanin),
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Current value of a node (after the last step).
    pub fn value(&self, node: NodeId) -> bool {
        self.values[node.index()]
    }

    /// Raw per-node value slice (hot-path form of [`value`](Self::value)
    /// used by the timed kernel's trajectory driver).
    pub(crate) fn values_raw(&self) -> &[bool] {
        &self.values
    }

    /// Current values of the primary outputs, in declaration order.
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist.outputs().iter().map(|&(_, n)| self.values[n.index()]).collect()
    }

    /// Simulates one clock cycle with the given primary-input vector.
    ///
    /// The first step establishes initial values without counting input
    /// transitions as toggles (there is no "previous" vector yet); every
    /// subsequent step counts transitions on all nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` does not
    /// have one bit per primary input.
    pub fn step(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                got: inputs.len(),
                expected: self.netlist.input_count(),
            });
        }
        obs::SIM_ZD_STEPS.inc();
        obs::SIM_ZD_GATE_EVALS.add(self.gates_per_step);
        let count = self.initialized;
        // Present DFF outputs (sampled at the previous edge).
        for (i, &q) in self.netlist.dffs().iter().enumerate() {
            let new = self.dff_next[i];
            if count && self.values[q.index()] != new {
                self.activity.toggles[q.index()] += 1;
            }
            self.values[q.index()] = new;
        }
        // Apply primary inputs.
        for (i, &inp) in self.netlist.inputs().iter().enumerate() {
            if count && self.values[inp.index()] != inputs[i] {
                self.activity.toggles[inp.index()] += 1;
            }
            self.values[inp.index()] = inputs[i];
        }
        // Settle combinational logic in topological order, gathering fan-in
        // values into the one preallocated scratch buffer.
        for &id in &self.order {
            if let NodeKind::Gate { kind, inputs: fanin } = self.netlist.kind(id) {
                self.scratch.clear();
                for f in fanin {
                    self.scratch.push(self.values[f.index()]);
                }
                let new = kind.eval(&self.scratch);
                if count && self.values[id.index()] != new {
                    self.activity.toggles[id.index()] += 1;
                }
                self.values[id.index()] = new;
            }
        }
        // Sample D inputs for the next cycle.
        for (i, &q) in self.netlist.dffs().iter().enumerate() {
            if let NodeKind::Dff { d, .. } = self.netlist.kind(q) {
                self.dff_next[i] = self.values[d.index()];
            }
        }
        if self.initialized {
            self.activity.cycles += 1;
        }
        self.initialized = true;
        Ok(())
    }

    /// Runs the simulator over a stream of input vectors and returns the
    /// accumulated activity.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] from the failing step
    /// if any vector's width does not match the input count. (Earlier
    /// versions silently truncated the run instead, under-reporting power
    /// with no signal.)
    pub fn run(
        &mut self,
        stream: impl IntoIterator<Item = Vec<bool>>,
    ) -> Result<Activity, NetlistError> {
        for v in stream {
            self.step(&v)?;
        }
        Ok(self.take_activity())
    }

    /// Returns the accumulated activity and resets the counter (values and
    /// flip-flop state are preserved so runs can be chained).
    pub fn take_activity(&mut self) -> Activity {
        let mut fresh = Activity::zero(self.netlist);
        std::mem::swap(&mut fresh, &mut self.activity);
        obs::SIM_ZD_CYCLES.add(fresh.cycles);
        obs::SIM_ZD_TOGGLES.add(fresh.toggles.iter().sum::<u64>());
        fresh
    }

    /// Evaluates the netlist once as pure combinational logic (flip-flops
    /// hold their current state) and returns the primary output values.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a bad vector width.
    pub fn eval_combinational(&mut self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                got: inputs.len(),
                expected: self.netlist.input_count(),
            });
        }
        obs::SIM_ZD_GATE_EVALS.add(self.gates_per_step);
        for (i, &inp) in self.netlist.inputs().iter().enumerate() {
            self.values[inp.index()] = inputs[i];
        }
        for &id in &self.order {
            if let NodeKind::Gate { kind, inputs: fanin } = self.netlist.kind(id) {
                self.scratch.clear();
                for f in fanin {
                    self.scratch.push(self.values[f.index()]);
                }
                self.values[id.index()] = kind.eval(&self.scratch);
            }
        }
        Ok(self.output_values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn xor_circuit() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let y = nl.xor([a, b]);
        nl.set_output("y", y);
        nl
    }

    #[test]
    fn functional_correctness() {
        let nl = xor_circuit();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            sim.step(&[a, b]).unwrap();
            assert_eq!(sim.output_values(), vec![a ^ b]);
        }
    }

    #[test]
    fn toggle_counting_skips_first_vector() {
        let nl = xor_circuit();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        sim.step(&[true, false]).unwrap(); // establishes values, no toggles
        sim.step(&[false, false]).unwrap(); // a toggles, y toggles
        let act = sim.take_activity();
        assert_eq!(act.cycles, 1);
        let total: u64 = act.toggles.iter().sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let q = nl.dff(a, false);
        nl.set_output("q", q);
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        sim.step(&[true]).unwrap();
        assert_eq!(sim.output_values(), vec![false]); // init value
        sim.step(&[false]).unwrap();
        assert_eq!(sim.output_values(), vec![true]); // sampled last cycle
        sim.step(&[false]).unwrap();
        assert_eq!(sim.output_values(), vec![false]);
    }

    #[test]
    fn input_width_is_validated() {
        let nl = xor_circuit();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        assert!(matches!(
            sim.step(&[true]),
            Err(NetlistError::InputWidthMismatch { got: 1, expected: 2 })
        ));
    }

    #[test]
    fn run_propagates_width_mismatch_instead_of_truncating() {
        let nl = xor_circuit();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let vecs = vec![vec![false, true], vec![true]];
        assert!(matches!(
            sim.run(vecs),
            Err(NetlistError::InputWidthMismatch { got: 1, expected: 2 })
        ));
    }

    #[test]
    fn activity_merge_accumulates() {
        let nl = xor_circuit();
        let mut a = Activity::zero(&nl);
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        sim.step(&[false, false]).unwrap();
        sim.step(&[true, false]).unwrap();
        let first = sim.take_activity();
        sim.step(&[false, false]).unwrap();
        let second = sim.take_activity();
        a.merge(&first).unwrap();
        a.merge(&second).unwrap();
        assert_eq!(a.cycles, first.cycles + second.cycles);
    }

    #[test]
    fn activity_merge_rejects_size_mismatch() {
        let nl = xor_circuit();
        let mut a = Activity::zero(&nl);
        a.toggles[0] = 7;
        a.cycles = 3;
        let other = Activity { toggles: vec![0; nl.node_count() + 1], cycles: 9 };
        let err = a.merge(&other);
        assert!(
            matches!(err, Err(NetlistError::ActivitySizeMismatch { left, right })
                if left == nl.node_count() && right == nl.node_count() + 1),
            "got {err:?}"
        );
        // The failed merge must not have modified the destination.
        assert_eq!(a.toggles[0], 7);
        assert_eq!(a.cycles, 3);
    }

    #[test]
    fn constants_never_toggle() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let c = nl.constant(true);
        let y = nl.and([a, c]);
        nl.set_output("y", y);
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        for v in [false, true, false, true] {
            sim.step(&[v]).unwrap();
        }
        let act = sim.take_activity();
        assert_eq!(act.toggles[c.index()], 0);
        assert!(act.toggles[y.index()] > 0);
    }
}
