//! Compiled, bit-parallel zero-delay simulation (64-lane entry points).
//!
//! The scalar [`ZeroDelaySim`](crate::ZeroDelaySim) walks the netlist graph
//! every cycle, evaluating one `bool` per node. The engines here compile
//! the topological order **once** into a dense instruction stream (one
//! opcode with pre-resolved input slot indices per gate, no per-gate
//! allocation and no graph chasing) and evaluate one machine word per node
//! per pass with word-wide boolean operations. Two packings are provided:
//!
//! * [`Sim64`] — **lane-parallel**: bit `l` of every word belongs to lane
//!   `l`, an independent stimulus stream. One [`Sim64::step`] advances all
//!   64 lanes by one clock cycle. This is the Monte-Carlo kernel: 64
//!   batches per simulator instance, each on its own split RNG stream.
//!   `Sim64` is the `u64` instantiation of the width-generic
//!   [`WideSim`](crate::WideSim) in [`crate::simwide`], which also offers
//!   256- and 512-lane words ([`crate::words::W256`],
//!   [`crate::words::W512`]).
//! * [`BlockSim64`] — **time-parallel**: the 64 bits of a word are 64
//!   *consecutive cycles* of a single stream, so one network evaluation
//!   retires 64 cycles. Only valid for purely combinational netlists
//!   (cycle `t` must not depend on cycle `t - 1` through state); this is
//!   the macro-model characterization kernel.
//!
//! # Determinism contract
//!
//! Lane `l` of a [`Sim64`] run is *bit-identical* to a scalar
//! [`ZeroDelaySim`](crate::ZeroDelaySim) run over the same vector stream:
//! per-lane toggle counts are exact integers (accumulated in vertical
//! carry-save bit-plane counters, never floats), per-lane cycle counts
//! match the scalar "first vector initializes, every later vector counts"
//! rule, and [`Sim64::take_lane_activities`] returns the same
//! [`Activity`] a scalar run would. Everything downstream (power reports,
//! Monte-Carlo samples) therefore agrees bitwise with the scalar engine —
//! `tests/sim64_differential.rs` locks this in.

use hlpower_obs::metrics as obs;

use crate::error::NetlistError;
use crate::library::GateKind;
use crate::netlist::{Netlist, NodeId, NodeKind};
use crate::simwide::WideSim;
use crate::words::Word;

/// Number of independent bit lanes in one packed `u64` word.
pub const LANES: usize = 64;

/// One compiled gate operation. Fixed-arity gates carry their input slots
/// inline; variadic gates index a `(start, len)` range of the shared fanin
/// pool. Slots are plain indices into the packed value array. Shared with
/// the timed kernel in [`crate::sim64timed`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    Buf(u32),
    Not(u32),
    And2(u32, u32),
    Or2(u32, u32),
    Nand2(u32, u32),
    Nor2(u32, u32),
    Xor2(u32, u32),
    Xnor2(u32, u32),
    Mux(u32, u32, u32),
    AndN(u32, u32),
    OrN(u32, u32),
    NandN(u32, u32),
    NorN(u32, u32),
    XorN(u32, u32),
    XnorN(u32, u32),
}

/// One instruction: evaluate `op`, store into value slot `out`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Instr {
    pub(crate) out: u32,
    pub(crate) op: Op,
}

/// A netlist compiled to a flat instruction stream in topological order.
#[derive(Debug, Clone)]
pub(crate) struct Program {
    pub(crate) instrs: Vec<Instr>,
    /// Shared fanin-slot pool for variadic gates.
    pub(crate) pool: Vec<u32>,
    /// Initial scalar value per node (constants and DFF init values;
    /// everything else false), broadcast across all lanes of any word
    /// width by [`init_words`](Self::init_words).
    pub(crate) init_bits: Vec<bool>,
}

impl Program {
    /// Compiles the topological order into instructions.
    pub(crate) fn compile(netlist: &Netlist) -> Result<Program, NetlistError> {
        let _span = hlpower_obs::trace::span("sim64", "sim64.compile");
        let order = netlist.topo_order()?;
        let mut instrs = Vec::with_capacity(order.len());
        let mut pool: Vec<u32> = Vec::new();
        for &id in &order {
            let NodeKind::Gate { kind, inputs } = netlist.kind(id) else { continue };
            let s = |i: usize| inputs[i].index() as u32;
            let op = match (*kind, inputs.len()) {
                (GateKind::Buf, _) => Op::Buf(s(0)),
                (GateKind::Not, _) => Op::Not(s(0)),
                (GateKind::Mux, _) => Op::Mux(s(0), s(1), s(2)),
                (GateKind::And, 2) => Op::And2(s(0), s(1)),
                (GateKind::Or, 2) => Op::Or2(s(0), s(1)),
                (GateKind::Nand, 2) => Op::Nand2(s(0), s(1)),
                (GateKind::Nor, 2) => Op::Nor2(s(0), s(1)),
                (GateKind::Xor, 2) => Op::Xor2(s(0), s(1)),
                (GateKind::Xnor, 2) => Op::Xnor2(s(0), s(1)),
                (wide, n) => {
                    let start = pool.len() as u32;
                    pool.extend(inputs.iter().map(|f| f.index() as u32));
                    let range = (start, n as u32);
                    match wide {
                        GateKind::And => Op::AndN(range.0, range.1),
                        GateKind::Or => Op::OrN(range.0, range.1),
                        GateKind::Nand => Op::NandN(range.0, range.1),
                        GateKind::Nor => Op::NorN(range.0, range.1),
                        GateKind::Xor => Op::XorN(range.0, range.1),
                        GateKind::Xnor => Op::XnorN(range.0, range.1),
                        GateKind::Buf | GateKind::Not | GateKind::Mux => unreachable!(),
                    }
                }
            };
            instrs.push(Instr { out: id.index() as u32, op });
        }
        let mut init_bits = vec![false; netlist.node_count()];
        for id in netlist.node_ids() {
            match netlist.kind(id) {
                NodeKind::Const(v) => init_bits[id.index()] = *v,
                NodeKind::Dff { init: v, .. } => init_bits[id.index()] = *v,
                _ => {}
            }
        }
        Ok(Program { instrs, pool, init_bits })
    }

    /// Initial packed value per node, broadcast across all lanes of `W`.
    pub(crate) fn init_words<W: Word>(&self) -> Vec<W> {
        self.init_bits.iter().map(|&b| W::splat(b)).collect()
    }

    /// Evaluates one instruction against the packed value array, at any
    /// word width.
    #[inline(always)]
    pub(crate) fn eval<W: Word>(&self, values: &[W], ins: &Instr) -> W {
        let v = |slot: u32| values[slot as usize];
        let fold = |start: u32, len: u32, unit: W, f: fn(W, W) -> W| {
            self.pool[start as usize..(start + len) as usize]
                .iter()
                .fold(unit, |acc, &slot| f(acc, values[slot as usize]))
        };
        match ins.op {
            Op::Buf(a) => v(a),
            Op::Not(a) => v(a).not(),
            Op::And2(a, b) => v(a).and(v(b)),
            Op::Or2(a, b) => v(a).or(v(b)),
            Op::Nand2(a, b) => v(a).and(v(b)).not(),
            Op::Nor2(a, b) => v(a).or(v(b)).not(),
            Op::Xor2(a, b) => v(a).xor(v(b)),
            Op::Xnor2(a, b) => v(a).xor(v(b)).not(),
            Op::Mux(sel, a, b) => {
                let s = v(sel);
                s.not().and(v(a)).or(s.and(v(b)))
            }
            Op::AndN(s, n) => fold(s, n, W::splat(true), W::and),
            Op::OrN(s, n) => fold(s, n, W::zero(), W::or),
            Op::NandN(s, n) => fold(s, n, W::splat(true), W::and).not(),
            Op::NorN(s, n) => fold(s, n, W::zero(), W::or).not(),
            Op::XorN(s, n) => fold(s, n, W::zero(), W::xor),
            Op::XnorN(s, n) => fold(s, n, W::zero(), W::xor).not(),
        }
    }
}

/// An opaque, shareable compiled instruction stream, detached from any
/// simulator instance.
///
/// The wrapped program is width-generic — one compiled stream drives 64-, 256-,
/// and 512-lane simulators alike — so a long-running service can compile
/// a circuit **once** and stamp out packed simulators per request via
/// [`crate::WideSim::with_kernel`] / [`crate::WideTimedSim::with_kernel`]
/// without paying the topological-sort + instruction-selection cost
/// again. Cloning the wrapped instruction vectors is a flat memcpy.
///
/// The kernel remembers the node count of the netlist it was compiled
/// from; pairing it with any other netlist is a
/// [`NetlistError::KernelMismatch`].
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    pub(crate) program: Program,
}

impl CompiledKernel {
    /// Compiles `netlist` into a reusable instruction stream.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn compile(netlist: &Netlist) -> Result<Self, NetlistError> {
        Ok(CompiledKernel { program: Program::compile(netlist)? })
    }

    /// Node count of the netlist this kernel was compiled from.
    pub fn node_count(&self) -> usize {
        self.program.init_bits.len()
    }

    /// Number of gate-evaluation instructions in the stream.
    pub fn instr_count(&self) -> usize {
        self.program.instrs.len()
    }

    /// Approximate heap footprint in bytes (for cache byte budgets).
    pub fn approx_bytes(&self) -> usize {
        self.program.instrs.len() * std::mem::size_of::<Instr>()
            + self.program.pool.len() * std::mem::size_of::<u32>()
            + self.program.init_bits.len()
    }

    /// Checks that `netlist` is the netlist this kernel was compiled from
    /// (by node count — the only property the instruction slots index).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::KernelMismatch`] on disagreement.
    pub(crate) fn check_matches(&self, netlist: &Netlist) -> Result<(), NetlistError> {
        if self.node_count() != netlist.node_count() {
            return Err(NetlistError::KernelMismatch {
                expected: netlist.node_count(),
                got: self.node_count(),
            });
        }
        Ok(())
    }
}

/// Broadcasts a scalar bit across all 64 lanes.
#[inline]
pub(crate) fn broadcast(v: bool) -> u64 {
    if v {
        !0
    } else {
        0
    }
}

/// The 64-lane lane-parallel compiled simulator: the `u64` instantiation
/// of the width-generic [`WideSim`](crate::WideSim). See
/// the `simwide` module for the machinery and the wider 256/512-lane words.
pub type Sim64<'a> = WideSim<'a, u64>;

/// The time-parallel compiled simulator for combinational netlists: the
/// 64 bits of every word are 64 *consecutive cycles* of one stimulus
/// stream, so each [`eval_block`](BlockSim64::eval_block) retires up to
/// 64 cycles with a single network evaluation.
///
/// Toggles between cycle `t - 1` and `t` are recovered per node as
/// `w ^ ((w << 1) | carry_in)` where `carry_in` is the node's value in the
/// last cycle of the previous block; the first block seeds `carry_in` with
/// the node's own cycle-0 value so cycle 0 counts no toggles — the scalar
/// "first vector initializes" rule.
#[derive(Debug)]
pub struct BlockSim64<'a> {
    netlist: &'a Netlist,
    program: Program,
    /// Packed node values; bit `c` is cycle `block_base + c`.
    values: Vec<u64>,
    /// Per-node toggle word of the last evaluated block.
    diffs: Vec<u64>,
    /// Per-node value bit of the last valid cycle of the previous block.
    carry: Vec<u64>,
    started: bool,
    valid: usize,
}

impl<'a> BlockSim64<'a> {
    /// Compiles a purely combinational netlist for time-packed evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotCombinational`] if the netlist contains
    /// flip-flops (cycle `t` would depend on cycle `t - 1`, which a
    /// time-packed word cannot express), or
    /// [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        if !netlist.dffs().is_empty() {
            return Err(NetlistError::NotCombinational { dffs: netlist.dffs().len() });
        }
        let program = Program::compile(netlist)?;
        let values = program.init_words::<u64>();
        let n = netlist.node_count();
        Ok(BlockSim64 {
            netlist,
            program,
            values,
            diffs: vec![0; n],
            carry: vec![0; n],
            started: false,
            valid: 0,
        })
    }

    /// Evaluates one block of `valid` consecutive cycles (1..=64).
    /// `inputs[i]` packs primary input `i`, bit `c` = cycle `c` of this
    /// block; bits at and above `valid` are don't-cares.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a bad input count
    /// or [`NetlistError::EmptyStream`] if `valid` is 0 or exceeds 64.
    pub fn eval_block(&mut self, inputs: &[u64], valid: usize) -> Result<(), NetlistError> {
        if inputs.len() != self.netlist.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                got: inputs.len(),
                expected: self.netlist.input_count(),
            });
        }
        if valid == 0 || valid > LANES {
            return Err(NetlistError::EmptyStream);
        }
        obs::SIM64_BLOCKS.inc();
        obs::SIM64_GATE_EVALS.add(self.program.instrs.len() as u64);
        obs::SIM64_LANE_CYCLES.add(valid as u64);
        let valid_mask = if valid == LANES { !0 } else { (1u64 << valid) - 1 };
        for (i, &inp) in self.netlist.inputs().iter().enumerate() {
            self.values[inp.index()] = inputs[i];
        }
        for idx in 0..self.program.instrs.len() {
            let ins = self.program.instrs[idx];
            self.values[ins.out as usize] = self.program.eval(&self.values, &ins);
        }
        for node in 0..self.netlist.node_count() {
            let w = self.values[node];
            // First block: seed with the node's own cycle-0 bit so cycle 0
            // shows no transition.
            let carry_in = if self.started { self.carry[node] } else { w & 1 };
            self.diffs[node] = (w ^ ((w << 1) | carry_in)) & valid_mask;
            self.carry[node] = (w >> (valid - 1)) & 1;
        }
        self.started = true;
        self.valid = valid;
        Ok(())
    }

    /// Number of valid cycles in the last evaluated block.
    pub fn valid_cycles(&self) -> usize {
        self.valid
    }

    /// Toggle word of a node for the last block: bit `c` set means the
    /// node transitioned between cycle `c - 1` (previous block's last
    /// cycle for `c = 0`) and cycle `c`.
    pub fn diff_word(&self, node: NodeId) -> u64 {
        self.diffs[node.index()]
    }

    /// Toggle word by raw node index (hot-path form of
    /// [`diff_word`](Self::diff_word)).
    pub fn diff_word_at(&self, index: usize) -> u64 {
        self.diffs[index]
    }

    /// Packed value word of a node for the last block (bit `c` = cycle `c`).
    pub fn value_word(&self, node: NodeId) -> u64 {
        self.values[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::sim::{Activity, ZeroDelaySim};
    use crate::{gen, streams};
    use hlpower_rng::Rng;

    fn adder(bits: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", bits);
        let b = nl.input_bus("b", bits);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        nl
    }

    fn fir() -> Netlist {
        let mut nl = Netlist::new();
        let x = nl.input_bus("x", 6);
        let y = gen::fir_filter(&mut nl, &x, &[7, 13, 7], true);
        nl.output_bus("y", &y);
        nl
    }

    /// Packs per-lane bool vectors into input words.
    fn pack(vectors: &[Vec<bool>]) -> Vec<u64> {
        let width = vectors[0].len();
        let mut words = vec![0u64; width];
        for (lane, v) in vectors.iter().enumerate() {
            for (i, &b) in v.iter().enumerate() {
                words[i] |= (b as u64) << lane;
            }
        }
        words
    }

    #[test]
    fn lanes_match_scalar_streams_on_sequential_circuit() {
        let nl = fir();
        let w = nl.input_count();
        let root = Rng::seed_from_u64(42);
        let cycles = 150;
        let mut sim = Sim64::new(&nl).unwrap();
        let mut iters: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        for _ in 0..cycles {
            let vectors: Vec<Vec<bool>> = iters.iter_mut().map(|it| it.next().unwrap()).collect();
            sim.step(&pack(&vectors)).unwrap();
        }
        let lanes = sim.take_lane_activities();
        for l in [0usize, 1, 31, 63] {
            let mut scalar = ZeroDelaySim::new(&nl).unwrap();
            let act = scalar
                .run(streams::random_rng(root.split(l as u64), w).take(cycles))
                .expect("width matches");
            assert_eq!(lanes[l], act, "lane {l} diverged from its scalar stream");
        }
    }

    #[test]
    fn collapsed_activity_is_lane_merge() {
        let nl = adder(6);
        let w = nl.input_count();
        let root = Rng::seed_from_u64(9);
        let run = |cycles: usize| {
            let mut sim = Sim64::new(&nl).unwrap();
            let mut iters: Vec<_> =
                (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
            for _ in 0..cycles {
                let vectors: Vec<Vec<bool>> =
                    iters.iter_mut().map(|it| it.next().unwrap()).collect();
                sim.step(&pack(&vectors)).unwrap();
            }
            sim
        };
        let lanes = run(80).take_lane_activities();
        let collapsed = run(80).take_activity();
        let mut merged = Activity::zero(&nl);
        for lane in &lanes {
            merged.merge(lane).unwrap();
        }
        assert_eq!(collapsed, merged);
        assert_eq!(collapsed.cycles, 79 * LANES as u64);
    }

    #[test]
    fn masked_lanes_stop_where_scalar_streams_end() {
        let nl = adder(4);
        let w = nl.input_count();
        let root = Rng::seed_from_u64(17);
        // Lane l runs for 10 + l cycles.
        let len = |l: usize| 10 + l;
        let mut sim = Sim64::new(&nl).unwrap();
        let mut iters: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w).take(len(l))).collect();
        loop {
            let mut mask = 0u64;
            let mut vectors = vec![vec![false; w]; LANES];
            for (l, it) in iters.iter_mut().enumerate() {
                if let Some(v) = it.next() {
                    vectors[l] = v;
                    mask |= 1 << l;
                }
            }
            if mask == 0 {
                break;
            }
            sim.step_masked(&pack(&vectors), mask).unwrap();
        }
        let lanes = sim.take_lane_activities();
        for l in [0usize, 5, 63] {
            let mut scalar = ZeroDelaySim::new(&nl).unwrap();
            let act = scalar
                .run(streams::random_rng(root.split(l as u64), w).take(len(l)))
                .expect("width matches");
            assert_eq!(lanes[l], act, "masked lane {l} diverged");
        }
    }

    #[test]
    fn plane_flush_is_exact_across_many_cycles() {
        // A 1-bit inverter chain driven by an alternating input toggles
        // every node every cycle — the worst case for the plane counters.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut x = a;
        for _ in 0..3 {
            x = nl.not(x);
        }
        nl.set_output("y", x);
        let mut sim = Sim64::new(&nl).unwrap();
        let cycles = 300;
        for c in 0..cycles {
            sim.step(&[broadcast(c % 2 == 0)]).unwrap();
        }
        let lanes = sim.take_lane_activities();
        for lane in &lanes {
            assert_eq!(lane.cycles, cycles - 1);
            assert_eq!(lane.toggles[a.index()], cycles - 1);
        }
    }

    #[test]
    fn input_width_is_validated() {
        let nl = adder(4);
        let mut sim = Sim64::new(&nl).unwrap();
        assert!(matches!(
            sim.step(&[0u64; 3]),
            Err(NetlistError::InputWidthMismatch { got: 3, expected: 8 })
        ));
    }

    #[test]
    fn block_sim_matches_scalar_on_combinational_circuit() {
        let nl = adder(8);
        let w = nl.input_count();
        let vectors: Vec<Vec<bool>> = streams::random(23, w).take(200).collect();
        // Scalar reference.
        let mut scalar = ZeroDelaySim::new(&nl).unwrap();
        let mut ref_act = Activity::zero(&nl);
        for v in &vectors {
            scalar.step(v).unwrap();
        }
        ref_act.merge(&scalar.take_activity()).unwrap();
        // Time-packed run.
        let mut bs = BlockSim64::new(&nl).unwrap();
        let mut toggles = vec![0u64; nl.node_count()];
        for chunk in vectors.chunks(LANES) {
            let words = pack_cycles(chunk);
            bs.eval_block(&words, chunk.len()).unwrap();
            for id in nl.node_ids() {
                toggles[id.index()] += bs.diff_word(id).count_ones() as u64;
            }
        }
        assert_eq!(toggles, ref_act.toggles);
        // Output words reproduce the scalar outputs cycle by cycle.
        let mut scalar2 = ZeroDelaySim::new(&nl).unwrap();
        let mut bs2 = BlockSim64::new(&nl).unwrap();
        let chunk = &vectors[..50];
        bs2.eval_block(&pack_cycles(chunk), chunk.len()).unwrap();
        for (c, v) in chunk.iter().enumerate() {
            scalar2.step(v).unwrap();
            let outs: Vec<bool> =
                nl.outputs().iter().map(|&(_, n)| (bs2.value_word(n) >> c) & 1 == 1).collect();
            assert_eq!(outs, scalar2.output_values(), "cycle {c}");
        }
    }

    /// Packs consecutive cycles into time-packed input words.
    fn pack_cycles(vectors: &[Vec<bool>]) -> Vec<u64> {
        let width = vectors[0].len();
        let mut words = vec![0u64; width];
        for (c, v) in vectors.iter().enumerate() {
            for (i, &b) in v.iter().enumerate() {
                words[i] |= (b as u64) << c;
            }
        }
        words
    }

    #[test]
    fn block_sim_rejects_sequential_netlists() {
        let nl = fir();
        let err = BlockSim64::new(&nl);
        assert!(matches!(err, Err(NetlistError::NotCombinational { dffs }) if dffs > 0));
    }

    #[test]
    fn packed_power_matches_scalar_power() {
        // End-to-end: per-lane activity -> PowerReport must go through the
        // same f64 path as scalar, so powers agree bitwise.
        let nl = adder(8);
        let lib = Library::default();
        let w = nl.input_count();
        let root = Rng::seed_from_u64(1234);
        let cycles = 100;
        let mut sim = Sim64::new(&nl).unwrap();
        let mut iters: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        for _ in 0..cycles {
            let vectors: Vec<Vec<bool>> = iters.iter_mut().map(|it| it.next().unwrap()).collect();
            sim.step(&pack(&vectors)).unwrap();
        }
        let lanes = sim.take_lane_activities();
        for l in [0usize, 7, 63] {
            let mut scalar = ZeroDelaySim::new(&nl).unwrap();
            let act = scalar
                .run(streams::random_rng(root.split(l as u64), w).take(cycles))
                .expect("width matches");
            let packed_uw = lanes[l].power(&nl, &lib).total_power_uw();
            let scalar_uw = act.power(&nl, &lib).total_power_uw();
            assert_eq!(packed_uw.to_bits(), scalar_uw.to_bits(), "lane {l}");
        }
    }
}
