//! # hlpower-rng — deterministic runtime for the hlpower workspace
//!
//! This crate is the workspace's zero-dependency stand-in for `rand`,
//! `proptest`, and a thread-pool crate, so the default build is
//! offline-hermetic. It provides three things:
//!
//! * [`Rng`] — a seeded xoshiro256++ pseudo-random generator with cheap
//!   **stream splitting** ([`Rng::split`]): from one root seed, any number
//!   of statistically independent child streams can be derived *by index*.
//!   Because a child stream depends only on `(root seed, index)` — never on
//!   how many threads consume the streams — parallel estimators built on
//!   split streams are bit-identical at any thread count.
//! * [`check`] — a miniature property-based-testing harness (a `proptest`
//!   replacement) driven by the same deterministic generator.
//! * [`par`] — a scoped `std::thread` worker pool for sharding
//!   embarrassingly parallel estimation work (Monte-Carlo batches, sampler
//!   groups, macro-model training sweeps).
//!
//! ## Determinism contract
//!
//! Every generator in this crate is a pure function of its seed. The
//! workspace-wide rule is: **seed + any thread count ⇒ identical output**.
//! [`Rng::seed_from_u64`] expands a 64-bit seed through SplitMix64 (the
//! initializer recommended by the xoshiro authors), and [`Rng::split`]
//! derives child seeds through an independent SplitMix64 sequence, so
//! sibling streams never share correlated state.
//!
//! ```
//! use hlpower_rng::Rng;
//!
//! let root = Rng::seed_from_u64(42);
//! // Child streams are a function of (root, index) only:
//! let a: Vec<u64> = (0..4).map(|i| root.split(i).next_u64()).collect();
//! let b: Vec<u64> = (0..4).map(|i| root.split(i).next_u64()).collect();
//! assert_eq!(a, b);
//! // ...and differ from each other:
//! assert_ne!(a[0], a[1]);
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod par;

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 generator (Steele, Lea & Flood 2014).
///
/// Used for seed expansion and stream splitting; also usable directly as a
/// fast, small-state generator. Passes BigCrush when used as a 64-bit
/// generator, but its main role here is producing uncorrelated seed
/// material for [`Rng`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's standard pseudo-random generator: xoshiro256++
/// (Blackman & Vigna 2019) seeded through SplitMix64.
///
/// 256 bits of state, period 2^256 − 1, and no external dependencies.
/// Replaces `rand::rngs::SmallRng` throughout the workspace; the method
/// surface ([`gen_range`](Rng::gen_range), [`gen_bool`](Rng::gen_bool),
/// [`next_u64`](Rng::next_u64), [`next_f64`](Rng::next_f64)) mirrors the
/// subset of the `rand` API the workspace used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
    /// Seed material for [`split`](Rng::split): children are derived from
    /// this, not from the mutable output state, so splitting commutes with
    /// drawing numbers.
    split_key: u64,
}

impl Rng {
    /// Creates a generator by expanding `seed` through SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s, split_key: seed }
    }

    /// Derives the `index`-th child stream.
    ///
    /// The child depends only on this generator's *seed lineage* and
    /// `index` — not on how many values have been drawn — so
    /// `root.split(i)` is stable no matter when or where it is called.
    /// Child seeds are decorrelated from the parent and from each other by
    /// passing `(parent key, index)` through two rounds of SplitMix64.
    pub fn split(&self, index: u64) -> Rng {
        let mut sm = SplitMix64::new(self.split_key);
        let lane = sm.next_u64() ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut child = SplitMix64::new(lane);
        // Burn one output so index 0 is not the parent's seed expansion.
        let child_seed = child.next_u64();
        Rng::seed_from_u64(child_seed)
    }

    /// Returns the next 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniform sample from `range`.
    ///
    /// Accepts half-open (`a..b`) and inclusive (`a..=b`) ranges over the
    /// integer types used in the workspace, and half-open `f64` ranges.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` via Lemire's multiply-shift reduction.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A range that [`Rng::gen_range`] can draw a uniform `T` from.
///
/// The trait is parameterized over the output type (like `rand`'s
/// `SampleRange`) so an untyped range literal such as `1..16` takes its
/// integer type from the use site.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.bounded_u64(span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(rng.bounded_u64(span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_sample_int!(
    u64 => u64,
    i64 => i64,
    usize => u64,
    isize => i64,
    u32 => u64,
    i32 => i64,
    u16 => u64,
    u8 => u64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // First outputs for seed 0 and seed 1234567, cross-checked against
        // the published SplitMix64 reference implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 0x599E_D017_FB08_FC85);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(100);
        assert_ne!(Rng::seed_from_u64(99).next_u64(), c.next_u64());
    }

    #[test]
    fn split_is_stable_and_independent_of_draws() {
        let root = Rng::seed_from_u64(7);
        let before = root.split(3).next_u64();
        let mut consumed = root.clone();
        for _ in 0..50 {
            consumed.next_u64();
        }
        // Splitting keys off seed lineage, not the output state.
        assert_eq!(consumed.split(3).next_u64(), before);
        // Distinct indices give distinct streams.
        assert_ne!(root.split(0).next_u64(), root.split(1).next_u64());
    }

    #[test]
    fn split_streams_are_uncorrelated() {
        let root = Rng::seed_from_u64(1);
        let mut a = root.split(0);
        let mut b = root.split(1);
        let n = 4096;
        let matches = (0..n).filter(|_| (a.next_u64() & 1) == (b.next_u64() & 1)).count();
        let frac = matches as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "bit agreement {frac}");
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(0..10usize);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1000.0).abs() < 150.0, "counts {counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Rng::seed_from_u64(8);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
