//! A scoped `std::thread` worker pool for embarrassingly parallel
//! estimation work.
//!
//! The pool is deliberately minimal: no queues, no channels, no global
//! state. Each call to [`map`] (or [`map_with_threads`]) spawns scoped
//! workers that pull item indices from a shared atomic counter, then
//! reassembles results **in item order**. Because work items must be
//! independent and results are merged positionally, the output is
//! identical for any worker count — the scheduling order never leaks into
//! the result. Combined with [`Rng::split`](crate::Rng::split) streams
//! keyed by item index, this gives the workspace's determinism contract:
//! seed + any thread count ⇒ bit-identical output.
//!
//! ```
//! use hlpower_rng::par;
//!
//! let squares = par::map_with_threads(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! // Same result at any worker count:
//! assert_eq!(squares, par::map_with_threads(1, &[1, 2, 3, 4, 5], |_, &x| x * x));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use hlpower_obs::metrics as obs;
use hlpower_obs::{ctx, trace};

/// The `HLPOWER_THREADS` environment variable holds a value that does not
/// parse as a positive integer.
///
/// Returned by [`num_threads_checked`]; callers that must not silently
/// fall back (e.g. the Monte-Carlo entry points) surface this to the user
/// instead of clamping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadConfigError {
    /// The offending raw value of `HLPOWER_THREADS`.
    pub value: String,
}

impl std::fmt::Display for ThreadConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HLPOWER_THREADS={:?} is not a positive integer", self.value)
    }
}

impl std::error::Error for ThreadConfigError {}

/// Worker count resolution that rejects invalid `HLPOWER_THREADS` values.
///
/// * unset (or non-unicode) → `Ok(available_parallelism)` (1 if unknown)
/// * set to a positive integer `n` → `Ok(n)`
/// * set to `0` or anything unparseable → `Err(ThreadConfigError)`
pub fn num_threads_checked() -> Result<usize, ThreadConfigError> {
    match std::env::var("HLPOWER_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(ThreadConfigError { value: v }),
        },
        Err(_) => Ok(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)),
    }
}

/// Default worker count: the `HLPOWER_THREADS` environment variable if set
/// to a positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 if unavailable). Invalid values fall back to the default; use
/// [`num_threads_checked`] to surface them as errors instead.
pub fn num_threads() -> usize {
    num_threads_checked()
        .unwrap_or_else(|_| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Maps `f` over `items` on the default worker count ([`num_threads`]).
///
/// `f` receives `(index, &item)` and results are returned in item order.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with_threads(num_threads(), items, f)
}

/// Maps `f` over `items` on exactly `threads` workers.
///
/// Workers claim indices from a shared counter (dynamic load balancing —
/// estimation batches can have very uneven costs), and results are
/// reassembled by index, so the output never depends on `threads`.
///
/// # Panics
///
/// Propagates the first worker panic (by index order) after all workers
/// have stopped.
pub fn map_with_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    obs::POOL_TASKS.add(items.len() as u64);
    if threads == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    obs::POOL_JOBS.inc();
    obs::POOL_WORKERS_SPAWNED.add(threads as u64);
    let _wall = obs::POOL_WALL.span();
    let _job_span = trace::span_dyn("pool", || format!("pool.job:{}x{}", items.len(), threads));
    // The caller's request context (if any) crosses into the scoped
    // workers so their spans stay correlated with the request. Telemetry
    // only — no result depends on it.
    let request_id = ctx::current_request_id();
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let (mut buckets, busy_ns): (Vec<Vec<(usize, R)>>, u64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let _ctx_guard = request_id.map(ctx::enter);
                    let _worker_span = trace::span_dyn("pool", || format!("pool.worker:{w}"));
                    let begin = Instant::now();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    (local, begin.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        let joined: Vec<(Vec<(usize, R)>, u64)> =
            handles.into_iter().map(|h| h.join()).collect::<Result<_, _>>().unwrap_or_else(|e| {
                std::panic::resume_unwind(e);
            });
        let busy = joined.iter().map(|(_, ns)| *ns).sum();
        (joined.into_iter().map(|(local, _)| local).collect(), busy)
    });
    let wall_ns = started.elapsed().as_nanos() as u64;
    obs::POOL_BUSY_NS.add(busy_ns);
    obs::POOL_IDLE_NS.add((wall_ns * threads as u64).saturating_sub(busy_ns));
    let mut merged: Vec<(usize, R)> = buckets.drain(..).flatten().collect();
    merged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(merged.len(), items.len());
    merged.into_iter().map(|(_, r)| r).collect()
}

/// Splits `items` into at most `threads * chunks_per_thread` contiguous
/// slices, maps `f` over the slices in parallel, and concatenates the
/// per-slice outputs in order.
///
/// This is the low-overhead shape for long vectors of cheap work (e.g.
/// evaluating a macro-model over every cycle record): per-item dispatch
/// would cost more than the work itself. The result equals
/// `items.iter().map(per_item).collect()` whenever `f` maps a slice
/// independently of its position, so determinism is preserved for any
/// thread count.
pub fn map_slices<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() < 2 {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads * 4).max(1);
    let slices: Vec<&[T]> = items.chunks(chunk).collect();
    let per_slice = map_with_threads(threads, &slices, |_, s| f(s));
    per_slice.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(31)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = map_with_threads(threads, &items, |_, &x| x.wrapping_mul(31));
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with_threads(4, &empty, |_, &x| x).is_empty());
        assert_eq!(map_with_threads(4, &[9], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn split_streams_through_pool_are_thread_count_invariant() {
        // The determinism contract end-to-end: per-item RNG streams keyed
        // by index produce identical output at any worker count.
        let root = Rng::seed_from_u64(2024);
        let idx: Vec<usize> = (0..40).collect();
        let run = |threads| {
            map_with_threads(threads, &idx, |i, _| {
                let mut rng = root.split(i as u64);
                (0..100).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
            })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn map_slices_equals_serial_map() {
        let items: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        let serial: Vec<f64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7] {
            let got = map_slices(threads, &items, |s| s.iter().map(|x| x * x).collect());
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn request_context_crosses_into_workers() {
        let _g = ctx::enter(123);
        let items: Vec<usize> = (0..32).collect();
        let seen = map_with_threads(4, &items, |_, _| ctx::current_request_id());
        assert!(seen.iter().all(|&id| id == Some(123)), "{seen:?}");
        drop(_g);
        let seen = map_with_threads(4, &items, |_, _| ctx::current_request_id());
        assert!(seen.iter().all(|&id| id.is_none()), "{seen:?}");
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        let r = std::panic::catch_unwind(|| {
            map_with_threads(4, &items, |i, _| {
                if i == 7 {
                    panic!("worker failure");
                }
                i
            })
        });
        assert!(r.is_err());
    }
}
