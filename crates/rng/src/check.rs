//! A miniature property-based-testing harness (the workspace's in-tree
//! `proptest` replacement).
//!
//! A property is a closure over a seeded [`Rng`]; the harness runs it for a
//! deterministic sequence of cases and, on failure, reports the case index
//! and seed so the exact failing input can be replayed in isolation.
//!
//! ```
//! use hlpower_rng::check::Check;
//!
//! Check::new("addition_commutes").cases(64).run(|rng| {
//!     let a = rng.gen_range(0u64..1000);
//!     let b = rng.gen_range(0u64..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Case counts scale two ways:
//!
//! * the `proptest` cargo feature multiplies every requested count by 16
//!   (the "thorough CI" mode that replaces the old external dependency);
//! * the `HLPOWER_CHECK_CASES` environment variable, when set, overrides
//!   the count outright.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::{Rng, SplitMix64};

/// Default number of cases when [`Check::cases`] is not called.
pub const DEFAULT_CASES: usize = 64;

/// A configured property check. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Check {
    name: &'static str,
    cases: usize,
    seed: u64,
}

impl Check {
    /// Starts a check named `name` (the name seeds the case sequence, so
    /// different properties in one test binary explore different inputs).
    pub fn new(name: &'static str) -> Self {
        let mut h = SplitMix64::new(0x4845_434B); // "HECK"
        let mut seed = h.next_u64();
        for b in name.bytes() {
            seed = SplitMix64::new(seed ^ b as u64).next_u64();
        }
        Check { name, cases: DEFAULT_CASES, seed }
    }

    /// Sets the base case count (default [`DEFAULT_CASES`]).
    pub fn cases(mut self, n: usize) -> Self {
        self.cases = n;
        self
    }

    /// Overrides the derived base seed (rarely needed; replaying a failure
    /// is easier with [`Check::only_case`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The number of cases this check will actually run after applying the
    /// `proptest` feature multiplier and `HLPOWER_CHECK_CASES` override.
    pub fn effective_cases(&self) -> usize {
        if let Ok(v) = std::env::var("HLPOWER_CHECK_CASES") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        if cfg!(feature = "proptest") {
            self.cases * 16
        } else {
            self.cases
        }
    }

    /// Runs `property` once per case with a per-case deterministic [`Rng`].
    ///
    /// # Panics
    ///
    /// Re-raises the property's panic after printing the failing case
    /// index, so standard `#[test]` reporting still works.
    pub fn run<F: FnMut(&mut Rng)>(self, mut property: F) {
        let root = Rng::seed_from_u64(self.seed);
        for case in 0..self.effective_cases() {
            let mut rng = root.split(case as u64);
            let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
            if let Err(panic) = outcome {
                eprintln!(
                    "property `{}` failed at case {case}; replay with \
                     Check::new(\"{}\").only_case({case})",
                    self.name, self.name
                );
                resume_unwind(panic);
            }
        }
    }

    /// Replays exactly one case (for debugging a reported failure).
    pub fn only_case<F: FnMut(&mut Rng)>(self, case: usize, mut property: F) {
        let root = Rng::seed_from_u64(self.seed);
        let mut rng = root.split(case as u64);
        property(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let expected = Check::new("counts_cases").cases(10).effective_cases();
        let mut count = 0;
        Check::new("counts_cases").cases(10).run(|_| count += 1);
        assert_eq!(count, expected);
    }

    #[test]
    fn cases_see_distinct_inputs() {
        let mut seen = Vec::new();
        Check::new("distinct_inputs").cases(32).run(|rng| seen.push(rng.next_u64()));
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seen.len(), dedup.len(), "all case inputs should differ");
    }

    #[test]
    fn failing_property_panics_with_case() {
        let result = catch_unwind(|| {
            Check::new("fails_eventually").cases(8).run(|rng| {
                let v = rng.gen_range(0u64..4);
                assert!(v != 2, "boom");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn replay_is_consistent_with_run() {
        let mut from_run = Vec::new();
        Check::new("replayable").cases(4).run(|rng| from_run.push(rng.next_u64()));
        let mut replayed = 0;
        Check::new("replayable").only_case(2, |rng| replayed = rng.next_u64());
        assert_eq!(replayed, from_run[2]);
    }

    #[test]
    fn different_names_explore_different_inputs() {
        let mut a = 0;
        let mut b = 0;
        Check::new("name_a").cases(1).run(|rng| a = rng.next_u64());
        Check::new("name_b").cases(1).run(|rng| b = rng.next_u64());
        assert_ne!(a, b);
    }
}
