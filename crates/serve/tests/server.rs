//! End-to-end server test: a daemon on an ephemeral port, concurrent
//! clients posting both example netlists (structural Verilog and EDIF),
//! and every response checked **bit-identical** to the offline engine —
//! the determinism contract of `docs/SERVER.md`.

use std::sync::Arc;

use hlpower_netlist::{
    ingest_auto, monte_carlo_power_seeded_threads_kernel, streams, Library, McKernel,
    MonteCarloOptions, MonteCarloResult, PowerModel,
};
use hlpower_obs::json::{self, Value};
use hlpower_serve::{client, Server, ServerConfig};

/// The offline `repro --ingest` reference options.
const OPTS: MonteCarloOptions =
    MonteCarloOptions { batch_cycles: 60, max_batches: 60, target_relative_error: 0.01, z: 1.96 };
const SEED: u64 = 0x1997;

fn example(name: &str) -> String {
    let path = format!("{}/../../examples/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn offline_reference(src: &str) -> MonteCarloResult {
    let (_, nl) = ingest_auto(None, src).expect("ingest");
    let lib = Library::default();
    let w = nl.input_count();
    monte_carlo_power_seeded_threads_kernel(
        &nl,
        &lib,
        |rng| streams::random_rng(rng, w),
        SEED,
        &OPTS,
        1,
        McKernel::Packed64,
    )
    .expect("offline run")
}

fn estimate_body(src: &str) -> String {
    format!(
        "{{\"netlist\": {}, \"seed\": {SEED}, \"options\": {{\"batch_cycles\": 60, \
         \"max_batches\": 60, \"target_relative_error\": 0.01, \"z\": 1.96}}}}",
        json::escaped(src)
    )
}

fn assert_matches_offline(body: &str, want: &MonteCarloResult, what: &str) {
    let v = json::parse(body).unwrap_or_else(|e| panic!("{what}: unparseable `{body}`: {e}"));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{what}: {body}");
    let power = v.get("power_uw").and_then(Value::as_f64).expect("power_uw");
    let hw = v.get("half_width_uw").and_then(Value::as_f64).expect("half_width_uw");
    // Bit-identical, not approximately equal: the JSON layer emits f64s
    // via shortest-round-trip `{:?}`, so the parse gives back the bits.
    assert_eq!(power.to_bits(), want.power_uw.to_bits(), "{what}: power mismatch");
    assert_eq!(hw.to_bits(), want.half_width_uw.to_bits(), "{what}: half-width mismatch");
    assert_eq!(v.get("batches").and_then(Value::as_u64), Some(want.batches as u64), "{what}");
    assert_eq!(v.get("cycles").and_then(Value::as_u64), Some(want.cycles), "{what}");
}

#[test]
fn concurrent_clients_get_offline_identical_answers() {
    let verilog = Arc::new(example("gray_counter4.v"));
    let edif = Arc::new(example("majority.edf"));
    let want_verilog = offline_reference(&verilog);
    let want_edif = offline_reference(&edif);

    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr().to_string();

    // Several clients per netlist, all in flight at once, so the batcher
    // actually packs tenants from different requests into shared words.
    let mut handles = Vec::new();
    for i in 0..6 {
        let addr = addr.clone();
        let src = if i % 2 == 0 { Arc::clone(&verilog) } else { Arc::clone(&edif) };
        handles.push(std::thread::spawn(move || {
            let resp = client::request(&addr, "POST", "/estimate", Some(&estimate_body(&src)))
                .expect("request");
            (i, resp)
        }));
    }
    for h in handles {
        let (i, resp) = h.join().expect("client thread");
        assert_eq!(resp.status, 200, "client {i}: {}", resp.body);
        let want = if i % 2 == 0 { &want_verilog } else { &want_edif };
        assert_matches_offline(&resp.body, want, &format!("client {i}"));
    }

    // /metrics: parseable hlpower-obs/2 snapshot with a live serve section.
    let metrics = client::request(&addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(metrics.status, 200);
    let snap = json::parse(&metrics.body).expect("metrics parse");
    assert_eq!(snap.get("schema").and_then(Value::as_str), Some("hlpower-obs/2"));
    let serve = snap.get("serve").expect("serve section");
    let count = |key: &str| {
        serve
            .get(key)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("serve counter {key} missing: {}", metrics.body))
    };
    assert!(count("requests") >= 7, "requests: {}", count("requests"));
    assert!(count("jobs") >= 6);
    assert!(count("packed_words") >= 1);
    assert!(count("packed_lanes") >= count("packed_words"));
    assert!(count("cache_hits") >= 1, "repeat circuits must hit the kernel cache");
    assert!(count("cache_misses") >= 2);

    // Healthz and structured 404.
    let ok = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(ok.status, 200);
    let missing = client::request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(missing.status, 404);
    assert!(json::parse(&missing.body).is_ok());

    server.stop();
}

#[test]
fn streamed_responses_converge_to_the_offline_result() {
    let verilog = example("gray_counter4.v");
    let want = offline_reference(&verilog);
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr().to_string();
    let body = format!(
        "{{\"netlist\": {}, \"seed\": {SEED}, \"stream\": true, \"options\": {{\"batch_cycles\": 60, \
         \"max_batches\": 60, \"target_relative_error\": 0.01, \"z\": 1.96}}}}",
        json::escaped(&verilog)
    );
    let resp = client::request(&addr, "POST", "/estimate", Some(&body)).expect("request");
    assert_eq!(resp.status, 200);
    let lines: Vec<&str> = resp.body.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty());
    // Interim lines carry a running CI; batches must be non-decreasing.
    let mut last_batches = 0u64;
    for line in &lines[..lines.len() - 1] {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad interim `{line}`: {e}"));
        let interim = v.get("interim").expect("interim object");
        let batches = interim.get("batches").and_then(Value::as_u64).expect("batches");
        assert!(batches >= last_batches);
        last_batches = batches;
        assert!(interim.get("mean_uw").and_then(Value::as_f64).unwrap() > 0.0);
    }
    assert_matches_offline(lines[lines.len() - 1], &want, "final stream line");
    server.stop();
}

#[test]
fn parse_errors_come_back_located_and_structured() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr().to_string();
    let bad_verilog =
        "module m (a, y);\n  input a;\n  output y;\n  frobnicate f (y, a);\nendmodule\n";
    let body = format!("{{\"netlist\": {}}}", json::escaped(bad_verilog));
    let resp = client::request(&addr, "POST", "/estimate", Some(&body)).expect("request");
    assert_eq!(resp.status, 400, "{}", resp.body);
    let v = json::parse(&resp.body).expect("structured error");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    let err = v.get("error").expect("error object");
    assert_eq!(err.get("kind").and_then(Value::as_str), Some("parse_unknown_cell"));
    assert_eq!(err.get("format").and_then(Value::as_str), Some("verilog"));
    assert_eq!(err.get("line").and_then(Value::as_u64), Some(4));
    assert!(err.get("snippet").and_then(Value::as_str).unwrap().contains("frobnicate"));

    // Bad JSON is located too.
    let resp = client::request(&addr, "POST", "/estimate", Some("{\"netlist\": ")).unwrap();
    assert_eq!(resp.status, 400);
    let v = json::parse(&resp.body).unwrap();
    assert_eq!(v.get("error").and_then(|e| e.get("kind")).and_then(Value::as_str), Some("json"));
    assert!(v.get("error").and_then(|e| e.get("line")).is_some());

    // Bad field values are rejected, not defaulted.
    let resp = client::request(
        &addr,
        "POST",
        "/estimate",
        Some("{\"netlist\": \"x\", \"options\": {\"max_batches\": 0}}"),
    )
    .unwrap();
    assert_eq!(resp.status, 400);

    server.stop();
}

#[test]
fn lane_packed_results_equal_unpacked_results() {
    // The same job answered solo (no co-tenants possible) and answered
    // while five other tenants share its words must be byte-identical.
    let verilog = example("gray_counter4.v");
    let solo_server = Server::start(ServerConfig::default()).expect("start server");
    let solo_addr = solo_server.addr().to_string();
    let solo = client::request(&solo_addr, "POST", "/estimate", Some(&estimate_body(&verilog)))
        .expect("solo request");
    solo_server.stop();

    let busy_server = Server::start(ServerConfig::default()).expect("start server");
    let busy_addr = busy_server.addr().to_string();
    let mut handles = Vec::new();
    for seed in [1u64, 2, 3, 4, 5] {
        let addr = busy_addr.clone();
        let src = verilog.clone();
        handles.push(std::thread::spawn(move || {
            let body = format!(
                "{{\"netlist\": {}, \"seed\": {seed}, \"options\": {{\"batch_cycles\": 15, \
                 \"max_batches\": 40, \"target_relative_error\": 0.0, \"z\": 1.96}}}}",
                json::escaped(&src)
            );
            client::request(&addr, "POST", "/estimate", Some(&body)).expect("tenant")
        }));
    }
    let packed = client::request(&busy_addr, "POST", "/estimate", Some(&estimate_body(&verilog)))
        .expect("packed request");
    for h in handles {
        assert_eq!(h.join().unwrap().status, 200);
    }
    busy_server.stop();

    assert_eq!(solo.status, 200);
    assert_eq!(packed.status, 200);
    let strip_cache = |s: &str| s.replace("\"cache\": \"hit\"", "\"cache\": \"miss\"");
    assert_eq!(
        strip_cache(&solo.body),
        strip_cache(&packed.body),
        "packing next to other tenants changed a response"
    );
}

#[test]
fn offline_model_reference_agrees_with_server_pipeline() {
    // Belt and braces: the reference MonteCarloResult used above really
    // is the documented PowerModel path (guards against the offline
    // reference itself drifting).
    let (_, nl) = ingest_auto(None, &example("gray_counter4.v")).unwrap();
    let lib = Library::default();
    let model = PowerModel::new(&nl, &lib);
    let want = offline_reference(&example("gray_counter4.v"));
    assert!(want.power_uw > 0.0);
    assert!(
        model.total_power_uw(&{
            let mut sim = hlpower_netlist::ZeroDelaySim::new(&nl).unwrap();
            sim.run(streams::random(1, nl.input_count()).take(100)).unwrap()
        }) > 0.0
    );
    assert_eq!(want.batches, 60);
}
