//! End-to-end server test: a daemon on an ephemeral port, concurrent
//! clients posting both example netlists (structural Verilog and EDIF),
//! and every response checked **bit-identical** to the offline engine —
//! the determinism contract of `docs/SERVER.md`.

use std::sync::Arc;

use hlpower_netlist::{
    ingest_auto, monte_carlo_power_seeded_threads_kernel, streams, Library, McKernel,
    MonteCarloOptions, MonteCarloResult, PowerModel,
};
use hlpower_obs::json::{self, Value};
use hlpower_serve::{client, Server, ServerConfig};

/// The offline `repro --ingest` reference options.
const OPTS: MonteCarloOptions =
    MonteCarloOptions { batch_cycles: 60, max_batches: 60, target_relative_error: 0.01, z: 1.96 };
const SEED: u64 = 0x1997;

fn example(name: &str) -> String {
    let path = format!("{}/../../examples/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn offline_reference(src: &str) -> MonteCarloResult {
    let (_, nl) = ingest_auto(None, src).expect("ingest");
    let lib = Library::default();
    let w = nl.input_count();
    monte_carlo_power_seeded_threads_kernel(
        &nl,
        &lib,
        |rng| streams::random_rng(rng, w),
        SEED,
        &OPTS,
        1,
        McKernel::Packed64,
    )
    .expect("offline run")
}

fn estimate_body(src: &str) -> String {
    format!(
        "{{\"netlist\": {}, \"seed\": {SEED}, \"options\": {{\"batch_cycles\": 60, \
         \"max_batches\": 60, \"target_relative_error\": 0.01, \"z\": 1.96}}}}",
        json::escaped(src)
    )
}

fn assert_matches_offline(body: &str, want: &MonteCarloResult, what: &str) {
    let v = json::parse(body).unwrap_or_else(|e| panic!("{what}: unparseable `{body}`: {e}"));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{what}: {body}");
    let power = v.get("power_uw").and_then(Value::as_f64).expect("power_uw");
    let hw = v.get("half_width_uw").and_then(Value::as_f64).expect("half_width_uw");
    // Bit-identical, not approximately equal: the JSON layer emits f64s
    // via shortest-round-trip `{:?}`, so the parse gives back the bits.
    assert_eq!(power.to_bits(), want.power_uw.to_bits(), "{what}: power mismatch");
    assert_eq!(hw.to_bits(), want.half_width_uw.to_bits(), "{what}: half-width mismatch");
    assert_eq!(v.get("batches").and_then(Value::as_u64), Some(want.batches as u64), "{what}");
    assert_eq!(v.get("cycles").and_then(Value::as_u64), Some(want.cycles), "{what}");
}

#[test]
fn concurrent_clients_get_offline_identical_answers() {
    let verilog = Arc::new(example("gray_counter4.v"));
    let edif = Arc::new(example("majority.edf"));
    let want_verilog = offline_reference(&verilog);
    let want_edif = offline_reference(&edif);

    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr().to_string();

    // Several clients per netlist, all in flight at once, so the batcher
    // actually packs tenants from different requests into shared words.
    let mut handles = Vec::new();
    for i in 0..6 {
        let addr = addr.clone();
        let src = if i % 2 == 0 { Arc::clone(&verilog) } else { Arc::clone(&edif) };
        handles.push(std::thread::spawn(move || {
            let resp = client::request(&addr, "POST", "/estimate", Some(&estimate_body(&src)))
                .expect("request");
            (i, resp)
        }));
    }
    for h in handles {
        let (i, resp) = h.join().expect("client thread");
        assert_eq!(resp.status, 200, "client {i}: {}", resp.body);
        let want = if i % 2 == 0 { &want_verilog } else { &want_edif };
        assert_matches_offline(&resp.body, want, &format!("client {i}"));
    }

    // /metrics: parseable hlpower-obs/2 snapshot with a live serve section.
    let metrics = client::request(&addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(metrics.status, 200);
    let snap = json::parse(&metrics.body).expect("metrics parse");
    assert_eq!(snap.get("schema").and_then(Value::as_str), Some("hlpower-obs/2"));
    let serve = snap.get("serve").expect("serve section");
    let count = |key: &str| {
        serve
            .get(key)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("serve counter {key} missing: {}", metrics.body))
    };
    assert!(count("requests") >= 7, "requests: {}", count("requests"));
    assert!(count("jobs") >= 6);
    assert!(count("packed_words") >= 1);
    assert!(count("packed_lanes") >= count("packed_words"));
    assert!(count("cache_hits") >= 1, "repeat circuits must hit the kernel cache");
    assert!(count("cache_misses") >= 2);

    // Healthz and structured 404.
    let ok = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(ok.status, 200);
    let missing = client::request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(missing.status, 404);
    assert!(json::parse(&missing.body).is_ok());

    server.stop();
}

#[test]
fn streamed_responses_converge_to_the_offline_result() {
    let verilog = example("gray_counter4.v");
    let want = offline_reference(&verilog);
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr().to_string();
    let body = format!(
        "{{\"netlist\": {}, \"seed\": {SEED}, \"stream\": true, \"options\": {{\"batch_cycles\": 60, \
         \"max_batches\": 60, \"target_relative_error\": 0.01, \"z\": 1.96}}}}",
        json::escaped(&verilog)
    );
    let resp = client::request(&addr, "POST", "/estimate", Some(&body)).expect("request");
    assert_eq!(resp.status, 200);
    let lines: Vec<&str> = resp.body.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty());
    // Interim lines carry a running CI; batches must be non-decreasing.
    let mut last_batches = 0u64;
    for line in &lines[..lines.len() - 1] {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad interim `{line}`: {e}"));
        let interim = v.get("interim").expect("interim object");
        let batches = interim.get("batches").and_then(Value::as_u64).expect("batches");
        assert!(batches >= last_batches);
        last_batches = batches;
        assert!(interim.get("mean_uw").and_then(Value::as_f64).unwrap() > 0.0);
    }
    assert_matches_offline(lines[lines.len() - 1], &want, "final stream line");
    server.stop();
}

#[test]
fn parse_errors_come_back_located_and_structured() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr().to_string();
    let bad_verilog =
        "module m (a, y);\n  input a;\n  output y;\n  frobnicate f (y, a);\nendmodule\n";
    let body = format!("{{\"netlist\": {}}}", json::escaped(bad_verilog));
    let resp = client::request(&addr, "POST", "/estimate", Some(&body)).expect("request");
    assert_eq!(resp.status, 400, "{}", resp.body);
    let v = json::parse(&resp.body).expect("structured error");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    let err = v.get("error").expect("error object");
    assert_eq!(err.get("kind").and_then(Value::as_str), Some("parse_unknown_cell"));
    assert_eq!(err.get("format").and_then(Value::as_str), Some("verilog"));
    assert_eq!(err.get("line").and_then(Value::as_u64), Some(4));
    assert!(err.get("snippet").and_then(Value::as_str).unwrap().contains("frobnicate"));

    // Bad JSON is located too.
    let resp = client::request(&addr, "POST", "/estimate", Some("{\"netlist\": ")).unwrap();
    assert_eq!(resp.status, 400);
    let v = json::parse(&resp.body).unwrap();
    assert_eq!(v.get("error").and_then(|e| e.get("kind")).and_then(Value::as_str), Some("json"));
    assert!(v.get("error").and_then(|e| e.get("line")).is_some());

    // Bad field values are rejected, not defaulted.
    let resp = client::request(
        &addr,
        "POST",
        "/estimate",
        Some("{\"netlist\": \"x\", \"options\": {\"max_batches\": 0}}"),
    )
    .unwrap();
    assert_eq!(resp.status, 400);

    server.stop();
}

#[test]
fn lane_packed_results_equal_unpacked_results() {
    // The same job answered solo (no co-tenants possible) and answered
    // while five other tenants share its words must be byte-identical.
    let verilog = example("gray_counter4.v");
    let solo_server = Server::start(ServerConfig::default()).expect("start server");
    let solo_addr = solo_server.addr().to_string();
    let solo = client::request(&solo_addr, "POST", "/estimate", Some(&estimate_body(&verilog)))
        .expect("solo request");
    solo_server.stop();

    let busy_server = Server::start(ServerConfig::default()).expect("start server");
    let busy_addr = busy_server.addr().to_string();
    let mut handles = Vec::new();
    for seed in [1u64, 2, 3, 4, 5] {
        let addr = busy_addr.clone();
        let src = verilog.clone();
        handles.push(std::thread::spawn(move || {
            let body = format!(
                "{{\"netlist\": {}, \"seed\": {seed}, \"options\": {{\"batch_cycles\": 15, \
                 \"max_batches\": 40, \"target_relative_error\": 0.0, \"z\": 1.96}}}}",
                json::escaped(&src)
            );
            client::request(&addr, "POST", "/estimate", Some(&body)).expect("tenant")
        }));
    }
    let packed = client::request(&busy_addr, "POST", "/estimate", Some(&estimate_body(&verilog)))
        .expect("packed request");
    for h in handles {
        assert_eq!(h.join().unwrap().status, 200);
    }
    busy_server.stop();

    assert_eq!(solo.status, 200);
    assert_eq!(packed.status, 200);
    // Everything except the per-request fields (request id, cache state)
    // must be identical — including the f64 bits, which round-trip
    // exactly through the JSON layer.
    let result_fields = |body: &str| {
        let Value::Obj(fields) = json::parse(body).expect("result object") else {
            panic!("non-object result: {body}")
        };
        fields.into_iter().filter(|(k, _)| k != "request_id" && k != "cache").collect::<Vec<_>>()
    };
    assert_eq!(
        result_fields(&solo.body),
        result_fields(&packed.body),
        "packing next to other tenants changed a response"
    );
}

/// A scratch path in the system temp dir, unique per test.
fn temp_path(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("hlpower-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path.to_str().expect("utf-8 temp path").to_string()
}

#[test]
fn access_log_lines_round_trip_with_correlated_ids_and_stage_times() {
    let verilog = example("gray_counter4.v");
    let log_path = temp_path("access.jsonl");
    let config = ServerConfig {
        access_log: Some(log_path.clone()),
        slow_ms: None,
        ..ServerConfig::default()
    };
    let server = Server::start(config).expect("start server");
    let addr = server.addr().to_string();

    let anon = client::request(&addr, "POST", "/estimate", Some(&estimate_body(&verilog)))
        .expect("anonymous estimate");
    assert_eq!(anon.status, 200);
    let named = client::request_with(
        &addr,
        "POST",
        "/estimate",
        Some(&estimate_body(&verilog)),
        &[("X-Request-Id", "smoke-42")],
    )
    .expect("named estimate");
    assert_eq!(named.status, 200);
    assert_eq!(named.header("x-request-id"), Some("smoke-42"), "client id echoed verbatim");
    let miss = client::request(&addr, "GET", "/nope", None).expect("404");
    assert_eq!(miss.status, 404);
    server.stop();

    let text = std::fs::read_to_string(&log_path).expect("read access log");
    let lines: Vec<Value> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("unparseable line `{l}`: {e}")))
        .collect();
    // One line per request: two estimates and the 404 (`Server::stop`
    // signals shutdown in-process, so no /shutdown request is served).
    assert_eq!(lines.len(), 3, "{text}");
    let estimates: Vec<&Value> = lines
        .iter()
        .filter(|v| v.get("route").and_then(Value::as_str) == Some("/estimate"))
        .collect();
    assert_eq!(estimates.len(), 2);
    for line in &estimates {
        assert_eq!(line.get("status").and_then(Value::as_u64), Some(200));
        assert_eq!(line.get("cache").and_then(Value::as_str).is_some(), true);
        assert!(line.get("netlist_hash").and_then(Value::as_str).is_some());
        assert_eq!(line.get("width").and_then(Value::as_u64), Some(64));
        assert!(line.get("lanes").and_then(Value::as_u64).unwrap() >= 1);
        assert!(line.get("bytes_in").and_then(Value::as_u64).unwrap() > 0);
        assert!(line.get("bytes_out").and_then(Value::as_u64).unwrap() > 0);
        // Stage windows are disjoint sub-intervals of the wall time.
        let wall = line.get("wall_ns").and_then(Value::as_u64).expect("wall_ns");
        let stages = line.get("stages").expect("stages");
        let sum: u64 = ["parse_ns", "cache_ns", "queue_ns", "pack_ns", "sim_ns", "finalize_ns"]
            .iter()
            .map(|k| stages.get(k).and_then(Value::as_u64).expect("stage field"))
            .sum();
        assert!(sum > 0, "some stage time must be recorded: {text}");
        assert!(sum <= wall + 1_000_000, "stage sum {sum} exceeds wall {wall}");
    }
    // The log's ids match what the responses reported.
    let echo_of = |line: &Value| match line.get("client_id").and_then(Value::as_str) {
        Some(c) => c.to_string(),
        None => line.get("id").and_then(Value::as_u64).expect("id").to_string(),
    };
    let logged: Vec<String> = estimates.iter().map(|l| echo_of(l)).collect();
    assert!(logged.contains(&"smoke-42".to_string()), "{logged:?}");
    let anon_id = json::parse(&anon.body)
        .unwrap()
        .get("request_id")
        .and_then(Value::as_str)
        .expect("request_id in body")
        .to_string();
    assert!(logged.contains(&anon_id), "{logged:?} missing {anon_id}");
}

#[test]
fn metrics_negotiates_prometheus_text_exposition() {
    let verilog = example("gray_counter4.v");
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr().to_string();
    let est = client::request(&addr, "POST", "/estimate", Some(&estimate_body(&verilog)))
        .expect("estimate");
    assert_eq!(est.status, 200);

    let json_resp = client::request(&addr, "GET", "/metrics", None).expect("json metrics");
    assert_eq!(json_resp.status, 200);
    assert_eq!(json_resp.header("content-type"), Some("application/json"));
    let snap = json::parse(&json_resp.body).expect("json snapshot");

    let prom_resp =
        client::request_with(&addr, "GET", "/metrics", None, &[("Accept", "text/plain")])
            .expect("prom metrics");
    assert_eq!(prom_resp.status, 200);
    assert_eq!(prom_resp.header("content-type"), Some("text/plain; version=0.0.4"));
    let exposition =
        hlpower_obs::report::parse_prometheus(&prom_resp.body).expect("valid exposition");
    // The two scrapes bracket each other: every counter present in the
    // JSON snapshot exists in the exposition, and monotone counters can
    // only have grown between the scrapes.
    let json_requests = snap
        .get("serve")
        .and_then(|s| s.get("requests"))
        .and_then(Value::as_u64)
        .expect("serve.requests");
    let prom_requests =
        exposition.value("hlpower_serve_requests_total").expect("requests_total sample");
    assert!(prom_requests >= json_requests as f64, "{prom_requests} < {json_requests}");
    assert_eq!(exposition.type_of("hlpower_serve_requests_total"), Some("counter"));
    assert_eq!(exposition.type_of("hlpower_serve_stage_sim_ns"), Some("histogram"));
    assert!(exposition.value("hlpower_serve_stage_sim_ns_count").unwrap_or(0.0) >= 1.0);
    assert_eq!(exposition.type_of("hlpower_serve_stage_in_flight"), Some("gauge"));
    server.stop();
}

#[test]
fn concurrent_clients_get_unique_echoed_request_ids() {
    let verilog = Arc::new(example("gray_counter4.v"));
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.addr().to_string();
    let mut handles = Vec::new();
    for i in 0..8 {
        let addr = addr.clone();
        let src = Arc::clone(&verilog);
        handles.push(std::thread::spawn(move || {
            let resp = client::request(&addr, "POST", "/estimate", Some(&estimate_body(&src)))
                .expect("request");
            (i, resp)
        }));
    }
    let mut seen = std::collections::HashSet::new();
    for h in handles {
        let (i, resp) = h.join().expect("client thread");
        assert_eq!(resp.status, 200, "client {i}: {}", resp.body);
        let body_id = json::parse(&resp.body)
            .unwrap()
            .get("request_id")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("client {i}: no request_id in {}", resp.body))
            .to_string();
        assert_eq!(
            Some(body_id.as_str()),
            resp.header("x-request-id"),
            "client {i}: body and header ids must agree"
        );
        assert!(seen.insert(body_id.clone()), "client {i}: duplicate request id {body_id}");
    }
    server.stop();
}

#[test]
fn bit_identity_survives_logging_and_tracing() {
    // The acceptance gate: turning on every telemetry feature at once —
    // span tracing, the access log, request contexts — must not perturb
    // a single bit of the estimate.
    let verilog = example("gray_counter4.v");
    let want = offline_reference(&verilog);
    let log_path = temp_path("bit-identity-access.jsonl");
    hlpower_obs::trace::set_enabled(true);
    let config = ServerConfig {
        access_log: Some(log_path.clone()),
        slow_ms: Some(0),
        ..ServerConfig::default()
    };
    let server = Server::start(config).expect("start server");
    let addr = server.addr().to_string();
    let resp = client::request_with(
        &addr,
        "POST",
        "/estimate",
        Some(&estimate_body(&verilog)),
        &[("X-Request-Id", "bit-identity")],
    )
    .expect("request");
    server.stop();
    hlpower_obs::trace::set_enabled(false);
    assert_eq!(resp.status, 200);
    assert_matches_offline(&resp.body, &want, "telemetry-on estimate");
    // slow_ms = 0 classifies the request as slow, so the log carries
    // both its access line and a spans line.
    let text = std::fs::read_to_string(&log_path).expect("read access log");
    assert!(text.lines().any(|l| l.contains("\"slow\": true") || l.contains("\"slow\":true")));
}

#[test]
fn offline_model_reference_agrees_with_server_pipeline() {
    // Belt and braces: the reference MonteCarloResult used above really
    // is the documented PowerModel path (guards against the offline
    // reference itself drifting).
    let (_, nl) = ingest_auto(None, &example("gray_counter4.v")).unwrap();
    let lib = Library::default();
    let model = PowerModel::new(&nl, &lib);
    let want = offline_reference(&example("gray_counter4.v"));
    assert!(want.power_uw > 0.0);
    assert!(
        model.total_power_uw(&{
            let mut sim = hlpower_netlist::ZeroDelaySim::new(&nl).unwrap();
            sim.run(streams::random(1, nl.input_count()).take(100)).unwrap()
        }) > 0.0
    );
    assert_eq!(want.batches, 60);
}
