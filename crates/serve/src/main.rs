//! `hlpower-serve` — the estimation server daemon and its CLI client.
//!
//! ```text
//! hlpower-serve serve [--addr 127.0.0.1:0] [--addr-file PATH]
//!                     [--threads N] [--cache-mb N]
//! hlpower-serve post    ADDR FILE [--seed N] [--batch-cycles N]
//!                       [--max-batches N] [--tre X] [--z X]
//!                       [--mode zero_delay|glitch] [--width 64|256|512]
//!                       [--stream] [--request-id ID]
//! hlpower-serve metrics ADDR [--format json|prometheus]
//! hlpower-serve top     ADDR [--interval-ms N] [--iters N]
//! hlpower-serve audit   --access PATH [--trace PATH] [--prom PATH]
//!                       [--responses PATH]
//! hlpower-serve stop    ADDR
//! ```
//!
//! `serve` blocks until a `POST /shutdown` arrives (from `stop`), then
//! drains in-flight jobs and exits. `--addr-file` writes the bound
//! address (useful with an ephemeral `:0` port — the CI smoke reads it
//! back). Setting `HLPOWER_TRACE=<path>` records spans for the whole
//! server lifetime and writes (and validates) a Chrome trace on exit;
//! `HLPOWER_ACCESS_LOG=<path>` appends one JSONL line per request (see
//! `docs/OBSERVABILITY.md`).
//!
//! The client subcommands exist so the hermetic CI can drive the server
//! without any external HTTP tooling: `top` polls `/metrics` and renders
//! live per-stage rates and latencies; `audit` cross-checks the
//! telemetry artifacts a smoke run produced (access log ↔ trace ↔
//! response bodies ↔ Prometheus exposition).

use std::process::ExitCode;

use hlpower_obs::json::{self, escaped, Value};
use hlpower_obs::{report, trace};
use hlpower_serve::{client, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("post") => cmd_post(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("stop") => cmd_stop(&args[1..]),
        _ => {
            eprintln!(
                "usage: hlpower-serve serve [--addr A] [--addr-file F] [--threads N] [--cache-mb N]\n\
                 \x20      hlpower-serve post ADDR FILE [--seed N] [--batch-cycles N] [--max-batches N]\n\
                 \x20                                   [--tre X] [--z X] [--mode M] [--width W] [--stream]\n\
                 \x20                                   [--request-id ID]\n\
                 \x20      hlpower-serve metrics ADDR [--format json|prometheus]\n\
                 \x20      hlpower-serve top ADDR [--interval-ms N] [--iters N]\n\
                 \x20      hlpower-serve audit --access PATH [--trace PATH] [--prom PATH] [--responses PATH]\n\
                 \x20      hlpower-serve stop ADDR"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v.parse::<T>().map(Some).map_err(|_| format!("bad value for {flag}: `{v}`")),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let trace_path = trace::env_path();
    if trace_path.is_some() {
        trace::set_enabled(true);
    }
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(threads) = parse_flag::<usize>(args, "--threads")? {
        config.threads = threads;
    }
    if let Some(mb) = parse_flag::<usize>(args, "--cache-mb")? {
        config.cache_bytes = mb * 1024 * 1024;
    }
    let server = Server::start(config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    println!("hlpower-serve listening on {addr}");
    if let Some(path) = flag_value(args, "--addr-file") {
        std::fs::write(path, addr.to_string())
            .map_err(|e| format!("could not write --addr-file {path}: {e}"))?;
    }
    server.join();
    println!("hlpower-serve stopped");
    // Export the span trace after the drain so every connection's and
    // worker's spans are in it; validate the round-trip and fail loudly
    // on any drop — a silently truncated trace would masquerade as a
    // quiet run.
    if let Some(path) = trace_path {
        let n = trace::write_chrome_json(&path)
            .map_err(|e| format!("could not write trace to {path}: {e}"))?;
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        let parsed = trace::parse_chrome_trace(&text)
            .map_err(|e| format!("exported trace is not valid Chrome JSON: {e}"))?;
        if parsed.len() != n {
            return Err(format!("trace round-trip mismatch: wrote {n}, parsed {}", parsed.len()));
        }
        println!("trace: {n} span(s) written to {path}");
        let dropped = trace::dropped();
        if dropped > 0 {
            return Err(format!("{dropped} trace event(s) dropped (ring/sink overflow)"));
        }
    }
    Ok(())
}

fn cmd_post(args: &[String]) -> Result<(), String> {
    let (addr, file) = match (args.first(), args.get(1)) {
        (Some(a), Some(f)) if !a.starts_with("--") && !f.starts_with("--") => (a, f),
        _ => return Err("post needs ADDR and FILE".into()),
    };
    let source =
        std::fs::read_to_string(file).map_err(|e| format!("could not read {file}: {e}"))?;
    let mut body = format!("{{\"netlist\": {}", escaped(&source));
    if let Some(seed) = parse_flag::<u64>(args, "--seed")? {
        body.push_str(&format!(", \"seed\": {seed}"));
    }
    let mut opts = Vec::new();
    if let Some(v) = parse_flag::<u64>(args, "--batch-cycles")? {
        opts.push(format!("\"batch_cycles\": {v}"));
    }
    if let Some(v) = parse_flag::<u64>(args, "--max-batches")? {
        opts.push(format!("\"max_batches\": {v}"));
    }
    if let Some(v) = parse_flag::<f64>(args, "--tre")? {
        opts.push(format!("\"target_relative_error\": {v}"));
    }
    if let Some(v) = parse_flag::<f64>(args, "--z")? {
        opts.push(format!("\"z\": {v}"));
    }
    if !opts.is_empty() {
        body.push_str(&format!(", \"options\": {{{}}}", opts.join(", ")));
    }
    if let Some(mode) = flag_value(args, "--mode") {
        body.push_str(&format!(", \"mode\": {}", escaped(mode)));
    }
    if let Some(width) = parse_flag::<u64>(args, "--width")? {
        body.push_str(&format!(", \"width\": {width}"));
    }
    if args.iter().any(|a| a == "--stream") {
        body.push_str(", \"stream\": true");
    }
    body.push('}');
    let extra: Vec<(&str, &str)> = match flag_value(args, "--request-id") {
        Some(id) => vec![("X-Request-Id", id)],
        None => Vec::new(),
    };
    let resp = client::request_with(addr, "POST", "/estimate", Some(&body), &extra)
        .map_err(|e| format!("request failed: {e}"))?;
    print!("{}", resp.body);
    if !resp.body.ends_with('\n') {
        println!();
    }
    if resp.status >= 400 {
        return Err(format!("server answered {}", resp.status));
    }
    // Guard the smoke path: the response must be a parseable success
    // that echoes a request id matching the response header. Blocking
    // responses are one pretty-printed object; streamed responses are
    // compact JSON lines whose last line is the result.
    let last = resp.body.lines().rev().find(|l| !l.trim().is_empty()).unwrap_or("");
    let parsed = json::parse(&resp.body)
        .or_else(|_| json::parse(last))
        .map_err(|e| format!("unparseable response: {e}"))?;
    if parsed.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err("response did not report ok=true".into());
    }
    let body_id = parsed.get("request_id").and_then(Value::as_str);
    if body_id.is_none() {
        return Err("response carried no request_id".into());
    }
    if body_id != resp.header("x-request-id") {
        return Err(format!(
            "request id mismatch: body {:?} vs header {:?}",
            body_id,
            resp.header("x-request-id")
        ));
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("metrics needs ADDR")?;
    let format = flag_value(args, "--format").unwrap_or("json");
    let accept = match format {
        "json" => "application/json",
        "prometheus" => "text/plain",
        other => return Err(format!("bad value for --format: `{other}`")),
    };
    let resp = client::request_with(addr, "GET", "/metrics", None, &[("Accept", accept)])
        .map_err(|e| format!("request failed: {e}"))?;
    print!("{}", resp.body);
    if !resp.body.ends_with('\n') {
        println!();
    }
    if resp.status >= 400 {
        return Err(format!("server answered {}", resp.status));
    }
    Ok(())
}

fn cmd_stop(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("stop needs ADDR")?;
    let resp = client::request(addr, "POST", "/shutdown", None)
        .map_err(|e| format!("request failed: {e}"))?;
    println!("{}", resp.body.trim_end());
    if resp.status >= 400 {
        return Err(format!("server answered {}", resp.status));
    }
    Ok(())
}

/// One `/metrics` poll, reduced to what `top` renders.
struct TopSample {
    requests: u64,
    ok: u64,
    err: u64,
    queue_depth: u64,
    in_flight: u64,
    lanes_busy: u64,
    connections: u64,
    /// Per stage: `(name, count, sum_ns, cumulative p90_ns)`.
    stages: Vec<(String, u64, u64, u64)>,
}

const TOP_STAGES: [&str; 6] = ["parse", "cache", "queue", "pack", "sim", "finalize"];

fn fetch_top_sample(addr: &str) -> Result<TopSample, String> {
    let resp = client::request(addr, "GET", "/metrics", None)
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status >= 400 {
        return Err(format!("server answered {}", resp.status));
    }
    let root = json::parse(&resp.body).map_err(|e| format!("unparseable metrics: {e}"))?;
    let count = |section: &str, name: &str| {
        root.get(section).and_then(|s| s.get(name)).and_then(Value::as_u64).unwrap_or(0)
    };
    let stages = TOP_STAGES
        .iter()
        .map(|stage| {
            let hist = root.get("serve_stage").and_then(|s| s.get(&format!("{stage}_ns")));
            let field = |f: &str| hist.and_then(|h| h.get(f)).and_then(Value::as_u64).unwrap_or(0);
            (stage.to_string(), field("count"), field("sum"), field("p90"))
        })
        .collect();
    Ok(TopSample {
        requests: count("serve", "requests"),
        ok: count("serve", "requests_ok"),
        err: count("serve", "requests_err"),
        queue_depth: count("serve_stage", "queue_depth"),
        in_flight: count("serve_stage", "in_flight"),
        lanes_busy: count("serve_stage", "lanes_busy"),
        connections: count("serve", "connections"),
        stages,
    })
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("top needs ADDR")?;
    let interval_ms = parse_flag::<u64>(args, "--interval-ms")?.unwrap_or(1000).max(10);
    let iters = parse_flag::<u64>(args, "--iters")?.unwrap_or(0);
    let secs = interval_ms as f64 / 1000.0;
    println!("hlpower-serve top — {addr} (interval {interval_ms} ms)");
    let mut prev = fetch_top_sample(addr)?;
    let mut done = 0u64;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        let cur = fetch_top_sample(addr)?;
        let rate = |now: u64, before: u64| now.saturating_sub(before) as f64 / secs;
        println!(
            "req {:.1}/s  ok {:.1}/s  err {:.1}/s  conns {:.1}/s | in_flight {}  queue {}  lanes_busy {}",
            rate(cur.requests, prev.requests),
            rate(cur.ok, prev.ok),
            rate(cur.err, prev.err),
            rate(cur.connections, prev.connections),
            cur.in_flight,
            cur.queue_depth,
            cur.lanes_busy,
        );
        println!("  {:<10} {:>10} {:>12} {:>12}", "stage", "req/s", "mean_ms", "p90_ms*");
        for ((name, count, sum, p90), (_, pcount, psum, _)) in
            cur.stages.iter().zip(prev.stages.iter())
        {
            let dcount = count.saturating_sub(*pcount);
            let dsum = sum.saturating_sub(*psum);
            let mean_ms = if dcount > 0 { dsum as f64 / dcount as f64 / 1e6 } else { 0.0 };
            println!(
                "  {:<10} {:>10.1} {:>12.3} {:>12.3}",
                name,
                dcount as f64 / secs,
                mean_ms,
                *p90 as f64 / 1e6,
            );
        }
        println!("  (* p90 is cumulative since server start)");
        prev = cur;
        done += 1;
        if iters > 0 && done >= iters {
            return Ok(());
        }
    }
}

/// Cross-checks the telemetry artifacts of a smoke run: the access log
/// parses and its per-stage durations fit inside each request's wall
/// time; response bodies' request ids appear in the access log; access
/// ids appear in the trace; the Prometheus exposition parses.
fn cmd_audit(args: &[String]) -> Result<(), String> {
    let access_path = flag_value(args, "--access").ok_or("audit needs --access PATH")?;
    let text = std::fs::read_to_string(access_path)
        .map_err(|e| format!("could not read {access_path}: {e}"))?;
    let mut access_echoes: Vec<String> = Vec::new();
    let mut access_ids: Vec<u64> = Vec::new();
    let mut estimates = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e| format!("{access_path}:{}: unparseable line: {e}", lineno + 1))?;
        if v.get("slow").and_then(Value::as_bool) == Some(true) {
            continue;
        }
        let id = v
            .get("id")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{access_path}:{}: missing id", lineno + 1))?;
        access_ids.push(id);
        access_echoes.push(match v.get("client_id").and_then(Value::as_str) {
            Some(client) => client.to_string(),
            None => id.to_string(),
        });
        let route = v.get("route").and_then(Value::as_str).unwrap_or("");
        let status = v.get("status").and_then(Value::as_u64).unwrap_or(0);
        if route == "/estimate" && status == 200 {
            estimates += 1;
            let wall_ns = v.get("wall_ns").and_then(Value::as_u64).unwrap_or(0);
            let stages = v
                .get("stages")
                .ok_or_else(|| format!("{access_path}:{}: missing stages", lineno + 1))?;
            let sum: u64 = TOP_STAGES
                .iter()
                .map(|s| stages.get(&format!("{s}_ns")).and_then(Value::as_u64).unwrap_or(0))
                .sum();
            // Stage windows are disjoint sub-intervals of the request's
            // wall time; allow 1 ms of clock noise.
            if sum > wall_ns + 1_000_000 {
                return Err(format!(
                    "{access_path}:{}: stage sum {sum} ns exceeds wall {wall_ns} ns",
                    lineno + 1
                ));
            }
        }
    }
    if estimates == 0 {
        return Err(format!("{access_path}: no successful /estimate lines to audit"));
    }
    println!(
        "audit: {} access line(s), {estimates} estimate(s), stage sums within wall",
        access_ids.len()
    );
    if let Some(responses_path) = flag_value(args, "--responses") {
        let text = std::fs::read_to_string(responses_path)
            .map_err(|e| format!("could not read {responses_path}: {e}"))?;
        let mut checked = 0usize;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Ok(v) = json::parse(line) else { continue };
            let Some(rid) = v.get("request_id").and_then(Value::as_str) else { continue };
            if !access_echoes.iter().any(|e| e == rid) {
                return Err(format!(
                    "{responses_path}: response request_id {rid} not in access log"
                ));
            }
            checked += 1;
        }
        if checked == 0 {
            return Err(format!("{responses_path}: no response request_ids to audit"));
        }
        println!("audit: {checked} response id(s) all present in access log");
    }
    if let Some(trace_path) = flag_value(args, "--trace") {
        let text = std::fs::read_to_string(trace_path)
            .map_err(|e| format!("could not read {trace_path}: {e}"))?;
        let events = trace::parse_chrome_trace(&text)
            .map_err(|e| format!("{trace_path}: invalid Chrome trace: {e}"))?;
        let traced: std::collections::HashSet<u64> =
            events.iter().filter_map(|e| e.request_id).collect();
        for &id in &access_ids {
            if !traced.contains(&id) {
                return Err(format!("{trace_path}: access-log request {id} has no trace span"));
            }
        }
        println!(
            "audit: all {} access id(s) appear among {} traced request id(s)",
            access_ids.len(),
            traced.len()
        );
    }
    if let Some(prom_path) = flag_value(args, "--prom") {
        let text = std::fs::read_to_string(prom_path)
            .map_err(|e| format!("could not read {prom_path}: {e}"))?;
        let exposition = report::parse_prometheus(&text)
            .map_err(|e| format!("{prom_path}: invalid exposition: {e}"))?;
        let served = exposition
            .value("hlpower_serve_requests_total")
            .ok_or_else(|| format!("{prom_path}: missing hlpower_serve_requests_total"))?;
        // The exposition is a point-in-time scrape: requests after it
        // (e.g. the final /shutdown) appear in the access log but not in
        // the counter, so compare against the estimate traffic — which
        // any sane smoke finishes before scraping — not the line total.
        if (served as usize) < estimates {
            return Err(format!(
                "{prom_path}: hlpower_serve_requests_total {served} < {estimates} estimate(s)"
            ));
        }
        println!("audit: prometheus exposition parses ({} sample(s))", exposition.samples.len());
    }
    Ok(())
}
