//! `hlpower-serve` — the estimation server daemon and its CLI client.
//!
//! ```text
//! hlpower-serve serve [--addr 127.0.0.1:0] [--addr-file PATH]
//!                     [--threads N] [--cache-mb N]
//! hlpower-serve post    ADDR FILE [--seed N] [--batch-cycles N]
//!                       [--max-batches N] [--tre X] [--z X]
//!                       [--mode zero_delay|glitch] [--width 64|256|512]
//!                       [--stream]
//! hlpower-serve metrics ADDR
//! hlpower-serve stop    ADDR
//! ```
//!
//! `serve` blocks until a `POST /shutdown` arrives (from `stop`), then
//! drains in-flight jobs and exits. `--addr-file` writes the bound
//! address (useful with an ephemeral `:0` port — the CI smoke reads it
//! back). The client subcommands exist so the hermetic CI can drive the
//! server without any external HTTP tooling.

use std::process::ExitCode;

use hlpower_obs::json::{escaped, Value};
use hlpower_serve::{client, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("post") => cmd_post(&args[1..]),
        Some("metrics") => cmd_get(&args[1..], "metrics"),
        Some("stop") => cmd_stop(&args[1..]),
        _ => {
            eprintln!(
                "usage: hlpower-serve serve [--addr A] [--addr-file F] [--threads N] [--cache-mb N]\n\
                 \x20      hlpower-serve post ADDR FILE [--seed N] [--batch-cycles N] [--max-batches N]\n\
                 \x20                                   [--tre X] [--z X] [--mode M] [--width W] [--stream]\n\
                 \x20      hlpower-serve metrics ADDR\n\
                 \x20      hlpower-serve stop ADDR"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v.parse::<T>().map(Some).map_err(|_| format!("bad value for {flag}: `{v}`")),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(threads) = parse_flag::<usize>(args, "--threads")? {
        config.threads = threads;
    }
    if let Some(mb) = parse_flag::<usize>(args, "--cache-mb")? {
        config.cache_bytes = mb * 1024 * 1024;
    }
    let server = Server::start(config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    println!("hlpower-serve listening on {addr}");
    if let Some(path) = flag_value(args, "--addr-file") {
        std::fs::write(path, addr.to_string())
            .map_err(|e| format!("could not write --addr-file {path}: {e}"))?;
    }
    server.join();
    println!("hlpower-serve stopped");
    Ok(())
}

fn cmd_post(args: &[String]) -> Result<(), String> {
    let (addr, file) = match (args.first(), args.get(1)) {
        (Some(a), Some(f)) if !a.starts_with("--") && !f.starts_with("--") => (a, f),
        _ => return Err("post needs ADDR and FILE".into()),
    };
    let source =
        std::fs::read_to_string(file).map_err(|e| format!("could not read {file}: {e}"))?;
    let mut body = format!("{{\"netlist\": {}", escaped(&source));
    if let Some(seed) = parse_flag::<u64>(args, "--seed")? {
        body.push_str(&format!(", \"seed\": {seed}"));
    }
    let mut opts = Vec::new();
    if let Some(v) = parse_flag::<u64>(args, "--batch-cycles")? {
        opts.push(format!("\"batch_cycles\": {v}"));
    }
    if let Some(v) = parse_flag::<u64>(args, "--max-batches")? {
        opts.push(format!("\"max_batches\": {v}"));
    }
    if let Some(v) = parse_flag::<f64>(args, "--tre")? {
        opts.push(format!("\"target_relative_error\": {v}"));
    }
    if let Some(v) = parse_flag::<f64>(args, "--z")? {
        opts.push(format!("\"z\": {v}"));
    }
    if !opts.is_empty() {
        body.push_str(&format!(", \"options\": {{{}}}", opts.join(", ")));
    }
    if let Some(mode) = flag_value(args, "--mode") {
        body.push_str(&format!(", \"mode\": {}", escaped(mode)));
    }
    if let Some(width) = parse_flag::<u64>(args, "--width")? {
        body.push_str(&format!(", \"width\": {width}"));
    }
    if args.iter().any(|a| a == "--stream") {
        body.push_str(", \"stream\": true");
    }
    body.push('}');
    let resp = client::request(addr, "POST", "/estimate", Some(&body))
        .map_err(|e| format!("request failed: {e}"))?;
    print!("{}", resp.body);
    if !resp.body.ends_with('\n') {
        println!();
    }
    if resp.status >= 400 {
        return Err(format!("server answered {}", resp.status));
    }
    // Guard the smoke path: the response must be a parseable success.
    // Blocking responses are one pretty-printed object; streamed
    // responses are compact JSON lines whose last line is the result.
    let last = resp.body.lines().rev().find(|l| !l.trim().is_empty()).unwrap_or("");
    let parsed = hlpower_obs::json::parse(&resp.body)
        .or_else(|_| hlpower_obs::json::parse(last))
        .map_err(|e| format!("unparseable response: {e}"))?;
    if parsed.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err("response did not report ok=true".into());
    }
    Ok(())
}

fn cmd_get(args: &[String], what: &str) -> Result<(), String> {
    let addr = args.first().ok_or_else(|| format!("{what} needs ADDR"))?;
    let resp = client::request(addr, "GET", &format!("/{what}"), None)
        .map_err(|e| format!("request failed: {e}"))?;
    print!("{}", resp.body);
    if !resp.body.ends_with('\n') {
        println!();
    }
    if resp.status >= 400 {
        return Err(format!("server answered {}", resp.status));
    }
    Ok(())
}

fn cmd_stop(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("stop needs ADDR")?;
    let resp = client::request(addr, "POST", "/shutdown", None)
        .map_err(|e| format!("request failed: {e}"))?;
    println!("{}", resp.body.trim_end());
    if resp.status >= 400 {
        return Err(format!("server answered {}", resp.status));
    }
    Ok(())
}
