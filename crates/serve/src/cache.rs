//! The compiled-kernel cache: one compile per distinct circuit.
//!
//! Estimation requests are keyed by an FNV-1a hash of their netlist
//! source text. A hit reuses the ingested [`Netlist`], its precomputed
//! [`PowerModel`], and the width-generic [`CompiledKernel`] — the
//! dominant per-request setup costs — so a circuit that streams many
//! requests compiles exactly once. The cache is LRU under a byte budget:
//! inserting over budget evicts least-recently-used entries (never the
//! entry being inserted, so a single oversized circuit still runs).

use std::collections::HashMap;
use std::sync::Arc;

use hlpower_netlist::{CompiledKernel, Library, Netlist, PowerModel, SourceFormat};
use hlpower_obs::metrics as obs;

/// FNV-1a 64-bit hash of the netlist source — the cache key.
pub fn hash_source(src: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in src.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Everything reusable across requests for one circuit.
#[derive(Debug)]
pub struct CachedCircuit {
    /// The ingested netlist.
    pub netlist: Netlist,
    /// The technology library powering the model (the default library,
    /// matching the offline `repro --ingest` reference runs).
    pub lib: Library,
    /// Per-node switched-capacitance power model, precomputed once.
    pub model: PowerModel,
    /// The width-generic compiled simulation kernel.
    pub kernel: CompiledKernel,
    /// The front-end that parsed the source.
    pub format: SourceFormat,
    /// Approximate resident bytes, charged against the cache budget.
    pub bytes: usize,
}

impl CachedCircuit {
    /// Ingest + model + kernel compile for one source text.
    ///
    /// # Errors
    ///
    /// Any ingestion or compilation [`hlpower_netlist::NetlistError`].
    pub fn build(src: &str) -> Result<Self, hlpower_netlist::NetlistError> {
        let (format, netlist) = hlpower_netlist::ingest_auto(None, src)?;
        let lib = Library::default();
        let model = PowerModel::new(&netlist, &lib);
        let kernel = CompiledKernel::compile(&netlist)?;
        // Kernel + per-node model/netlist payload dominate; the source
        // text itself is not retained.
        let bytes = kernel.approx_bytes() + netlist.node_count() * 64;
        Ok(CachedCircuit { netlist, lib, model, kernel, format, bytes })
    }
}

struct Entry {
    circuit: Arc<CachedCircuit>,
    last_used: u64,
}

/// LRU cache of [`CachedCircuit`]s under a byte budget.
pub struct KernelCache {
    budget: usize,
    tick: u64,
    entries: HashMap<u64, Entry>,
}

impl KernelCache {
    /// An empty cache that evicts down to `budget_bytes`.
    pub fn new(budget_bytes: usize) -> Self {
        KernelCache { budget: budget_bytes, tick: 0, entries: HashMap::new() }
    }

    /// Looks up `hash`, refreshing its recency. Records a cache hit or
    /// miss in the `serve` metrics section.
    pub fn get(&mut self, hash: u64) -> Option<Arc<CachedCircuit>> {
        self.tick += 1;
        match self.entries.get_mut(&hash) {
            Some(e) => {
                e.last_used = self.tick;
                obs::SERVE_CACHE_HITS.inc();
                Some(Arc::clone(&e.circuit))
            }
            None => {
                obs::SERVE_CACHE_MISSES.inc();
                None
            }
        }
    }

    /// Inserts a freshly built circuit, then evicts least-recently-used
    /// entries (never this one) until the budget holds.
    pub fn insert(&mut self, hash: u64, circuit: Arc<CachedCircuit>) {
        self.tick += 1;
        self.entries.insert(hash, Entry { circuit, last_used: self.tick });
        while self.bytes() > self.budget && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != hash)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    obs::SERVE_CACHE_EVICTIONS.inc();
                }
                None => break,
            }
        }
    }

    /// Cached circuits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes charged by resident entries.
    pub fn bytes(&self) -> usize {
        self.entries.values().map(|e| e.circuit.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit(nodes: usize) -> Arc<CachedCircuit> {
        // A chain of buffers: node count (and therefore charged bytes)
        // scales with `nodes`.
        let mut src = String::from("module m (a, y);\n  input a;\n  output y;\n");
        let mut prev = "a".to_string();
        for i in 0..nodes {
            src.push_str(&format!("  wire w{i};\n  buf b{i} (w{i}, {prev});\n"));
            prev = format!("w{i}");
        }
        src.push_str(&format!("  buf bo (y, {prev});\nendmodule\n"));
        Arc::new(CachedCircuit::build(&src).unwrap())
    }

    #[test]
    fn source_hash_is_stable_and_discriminating() {
        assert_eq!(hash_source("abc"), hash_source("abc"));
        assert_ne!(hash_source("abc"), hash_source("abd"));
        assert_ne!(hash_source(""), hash_source("a"));
    }

    #[test]
    fn lru_evicts_under_byte_budget() {
        let a = circuit(10);
        let b = circuit(20);
        let c = circuit(30);
        let budget = a.bytes + b.bytes + c.bytes - 1;
        let mut cache = KernelCache::new(budget);
        cache.insert(1, Arc::clone(&a));
        cache.insert(2, Arc::clone(&b));
        // Touch 1 so 2 is the LRU victim when 3 overflows the budget.
        assert!(cache.get(1).is_some());
        cache.insert(3, Arc::clone(&c));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.bytes() <= budget);
    }

    #[test]
    fn an_oversized_entry_still_resides() {
        let a = circuit(10);
        let mut cache = KernelCache::new(1);
        cache.insert(1, Arc::clone(&a));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(1).is_some());
    }

    #[test]
    fn build_reuses_the_offline_ingest_path() {
        let c = circuit(4);
        assert_eq!(c.format, SourceFormat::Verilog);
        assert_eq!(c.kernel.node_count(), c.netlist.node_count());
        assert!(c.bytes > 0);
    }
}
