//! Estimation-as-a-service: a zero-dependency power-estimation server.
//!
//! `hlpower-serve` turns the workspace's Monte-Carlo power engine into a
//! long-running daemon on a plain [`std::net::TcpListener`] with a
//! hand-rolled HTTP/1.1 layer ([`http`]). Clients `POST /estimate`
//! netlists in any ingestible format (native `.nl`, structural Verilog,
//! or EDIF — sniffed by `hlpower_netlist::ingest`) plus a stimulus seed
//! and estimation options, and receive JSON power estimates that are
//! **bit-identical** to the offline `repro` runs.
//!
//! Two mechanisms make the service cheap under multi-tenant load:
//!
//! * a **compiled-kernel cache** ([`cache`]) keyed by a hash of the
//!   netlist source — a circuit that streams many requests ingests and
//!   compiles once, under an LRU byte budget; and
//! * a **multi-tenant lane packer** ([`engine`]) that packs batches of
//!   *independent* concurrent requests into spare lanes of one
//!   64/256/512-lane SIMD word, demuxes the per-lane power samples back
//!   to their jobs, and replays each job's samples through the engine's
//!   own serial stopping rule ([`hlpower_netlist::StoppingReplay`]) — so
//!   packing is a pure throughput optimization with no observable effect
//!   on any result.
//!
//! The wire protocol and determinism contract are documented in
//! `docs/SERVER.md`; request-scoped telemetry (request ids, per-stage
//! timings, JSONL access logs — see [`accesslog`]) in
//! `docs/OBSERVABILITY.md`. Live counters are exported at `GET /metrics`
//! as an `hlpower-obs/2` snapshot (`serve` + `serve_stage` sections) or
//! as Prometheus text exposition via content negotiation.

#![warn(missing_docs)]

pub mod accesslog;
pub mod cache;
pub mod client;
pub mod engine;
pub mod http;
pub mod server;

pub use cache::{hash_source, CachedCircuit, KernelCache};
pub use engine::{Engine, JobSpec, JobUpdate, Mode, PackWidth};
pub use server::{Server, ServerConfig};
