//! The multi-tenant estimation engine: a batcher thread that packs
//! independent Monte-Carlo jobs into shared SIMD words.
//!
//! Every `/estimate` request becomes a job ([`JobSpec`]): a root seed, stopping
//! options, and a per-job [`StoppingReplay`]. Each scheduling round the
//! batcher takes the next batch indices of every live job, groups jobs by
//! (circuit, mode, width), and packs their [`LaneRequest`]s into
//! 64/256/512-lane words — so ten small concurrent requests for the same
//! circuit ride in one simulation pass instead of ten. Words are sharded
//! across the deterministic worker pool, and each job's samples are
//! pushed through its replay **in batch order**.
//!
//! Because lane `l` of a packed word consumes exactly the stream batch
//! `l` of an offline run consumes (see
//! [`hlpower_netlist::simulate_packed_lanes`]), and the replay is the
//! engine's own stopping rule, every job's result is **bit-identical** to
//! [`hlpower_netlist::monte_carlo_power_seeded_threads_kernel`] run
//! offline with the same seed and options — regardless of which tenants
//! shared its words, the word width, or the thread count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hlpower_netlist::{
    simulate_packed_glitch_lanes, simulate_packed_lanes, streams, LaneRequest, MonteCarloOptions,
    MonteCarloResult, NetlistError, StoppingReplay, W256, W512,
};
use hlpower_obs::ctx::{self, RequestCtx, Stage};
use hlpower_obs::metrics as obs;
use hlpower_obs::trace;
use hlpower_rng::{par, Rng};

use crate::cache::CachedCircuit;

/// Which simulation semantics a job runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Functional (zero-delay) switching power.
    ZeroDelay,
    /// Real-delay, glitch-capturing power.
    Glitch,
}

/// The packed-word width a job's batches are simulated at. All widths
/// produce bit-identical samples; wider words amortize more tenants per
/// pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackWidth {
    /// One 64-lane `u64` word per netlist input.
    W64,
    /// 256 lanes.
    W256,
    /// 512 lanes.
    W512,
}

impl PackWidth {
    /// Lanes per word.
    pub fn lanes(self) -> usize {
        match self {
            PackWidth::W64 => 64,
            PackWidth::W256 => 256,
            PackWidth::W512 => 512,
        }
    }
}

/// Everything a request specifies about its Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Root seed: batch `b` consumes `Rng::seed_from_u64(seed).split(b)`.
    pub seed: u64,
    /// Stopping-rule options (batch cycles, budget, CI target).
    pub opts: MonteCarloOptions,
    /// Zero-delay or glitch-aware simulation.
    pub mode: Mode,
    /// Packed-word width.
    pub width: PackWidth,
    /// Whether the client wants streamed interim CI updates.
    pub stream: bool,
}

/// A progress or completion message for one job.
#[derive(Debug)]
pub enum JobUpdate {
    /// A confidence-interval snapshot after a scheduling round.
    Interim {
        /// Running mean power, µW.
        mean_uw: f64,
        /// CI half-width, µW (infinite before the second batch).
        half_width_uw: f64,
        /// Batches consumed so far.
        batches: usize,
    },
    /// The job finished (stop rule fired, budget exhausted, or error).
    Done(Result<MonteCarloResult, NetlistError>),
}

struct Job {
    circuit: Arc<CachedCircuit>,
    spec: JobSpec,
    replay: StoppingReplay,
    next_batch: u64,
    exhausted: bool,
    tx: Sender<JobUpdate>,
    /// The submitting request's telemetry context, if the job came from
    /// the HTTP server (write-only: nothing in the engine reads it).
    ctx: Option<Arc<RequestCtx>>,
    submitted: Instant,
    queue_recorded: bool,
}

impl Job {
    /// Group key: jobs pack together only when they share the circuit,
    /// the simulation semantics, and the word width.
    fn group(&self) -> (usize, Mode, PackWidth) {
        (Arc::as_ptr(&self.circuit) as usize, self.spec.mode, self.spec.width)
    }
}

struct Shared {
    incoming: Mutex<Vec<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    threads: usize,
    gather: Duration,
}

/// The engine handle: submit jobs, then [`Engine::shutdown`] to drain.
pub struct Engine {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
}

impl Engine {
    /// Starts the batcher thread. `threads` shards packed words across
    /// the worker pool; `gather` is the window the batcher waits after
    /// the first submission of a round so concurrent requests co-pack.
    pub fn start(threads: usize, gather: Duration) -> Self {
        let shared = Arc::new(Shared {
            incoming: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads: threads.max(1),
            gather,
        });
        let worker = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("hlpower-serve-batcher".into())
            .spawn(move || batcher_loop(&worker))
            .expect("spawn batcher");
        Engine { shared, batcher: Some(batcher) }
    }

    /// Enqueues one job; updates arrive on the returned channel.
    pub fn submit(&self, circuit: Arc<CachedCircuit>, spec: JobSpec) -> Receiver<JobUpdate> {
        self.submit_ctx(circuit, spec, None)
    }

    /// [`Engine::submit`] with a request telemetry context: queue wait,
    /// pack/sim attribution, and lane counts are recorded into `ctx`,
    /// and worker spans carry its request id.
    pub fn submit_ctx(
        &self,
        circuit: Arc<CachedCircuit>,
        spec: JobSpec,
        ctx: Option<Arc<RequestCtx>>,
    ) -> Receiver<JobUpdate> {
        let (tx, rx) = channel();
        let job = Job {
            circuit,
            spec,
            replay: StoppingReplay::new(&spec.opts),
            next_batch: 0,
            exhausted: false,
            tx,
            ctx,
            submitted: Instant::now(),
            queue_recorded: false,
        };
        obs::SERVE_QUEUE_DEPTH.inc();
        self.shared.incoming.lock().expect("engine queue poisoned").push(job);
        self.shared.cv.notify_one();
        rx
    }

    /// Signals shutdown and blocks until in-flight jobs drain.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

fn batcher_loop(shared: &Shared) {
    let mut active: Vec<Job> = Vec::new();
    loop {
        let was_idle = active.is_empty();
        {
            let mut q = shared.incoming.lock().expect("engine queue poisoned");
            if active.is_empty() {
                while q.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                    let (guard, _) =
                        shared.cv.wait_timeout(q, Duration::from_millis(50)).expect("wait");
                    q = guard;
                }
            }
            active.append(&mut q);
        }
        if active.is_empty() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        }
        // Gather window: let requests that arrived "together" share words.
        if was_idle && !shared.gather.is_zero() && !shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(shared.gather);
            let mut q = shared.incoming.lock().expect("engine queue poisoned");
            active.append(&mut q);
        }
        round(&mut active, shared.threads);
    }
}

/// One word of the round's plan: `lanes[i]` belongs to `active[jobs[i]]`.
struct WordPlan {
    jobs: Vec<usize>,
    lanes: Vec<LaneRequest>,
    /// Request id of the word's first context-carrying tenant (0 = none);
    /// installed on the simulating worker so its spans correlate.
    rid: u64,
}

/// One scheduling round: plan → simulate → demux → report.
fn round(active: &mut Vec<Job>, threads: usize) {
    // Queue wait ends at the job's first planning round.
    for job in active.iter_mut() {
        if !job.queue_recorded {
            job.queue_recorded = true;
            if let Some(ctx) = &job.ctx {
                ctx.add_stage_ns(Stage::Queue, job.submitted.elapsed().as_nanos() as u64);
            }
        }
    }
    // Group job indices by (circuit, mode, width). Insertion-ordered so
    // rounds are deterministic for a given arrival order.
    let mut groups: Vec<((usize, Mode, PackWidth), Vec<usize>)> = Vec::new();
    for (i, job) in active.iter().enumerate() {
        let key = job.group();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    let mut finished: Vec<usize> = Vec::new();
    for (_, members) in &groups {
        let circuit = Arc::clone(&active[members[0]].circuit);
        let (mode, width) = (active[members[0]].spec.mode, active[members[0]].spec.width);
        // Plan: each member contributes its next batches (at most one
        // word's worth per round, so streamed updates keep flowing and
        // co-tenants interleave fairly), chained then chunked into words.
        let pack_started = Instant::now();
        let cap = width.lanes();
        let mut flat: Vec<(usize, LaneRequest)> = Vec::new();
        for &i in members {
            let job = &mut active[i];
            let remaining = (job.spec.opts.max_batches as u64).saturating_sub(job.next_batch);
            let quota = remaining.min(cap as u64);
            for k in 0..quota {
                flat.push((
                    i,
                    LaneRequest {
                        seed: job.spec.seed,
                        batch: job.next_batch + k,
                        cycles: job.spec.opts.batch_cycles,
                    },
                ));
            }
            job.next_batch += quota;
            if let Some(ctx) = &job.ctx {
                ctx.add_lanes(quota);
                ctx.add_cycles(quota * job.spec.opts.batch_cycles as u64);
            }
        }
        let words: Vec<WordPlan> = flat
            .chunks(cap)
            .map(|chunk| WordPlan {
                jobs: chunk.iter().map(|(i, _)| *i).collect(),
                lanes: chunk.iter().map(|(_, r)| *r).collect(),
                rid: chunk
                    .iter()
                    .find_map(|(i, _)| active[*i].ctx.as_ref().map(|c| c.id()))
                    .unwrap_or(0),
            })
            .collect();
        for w in &words {
            obs::SERVE_PACKED_WORDS.inc();
            obs::SERVE_PACKED_LANES.add(w.lanes.len() as u64);
            let tenants: std::collections::HashSet<_> = w.jobs.iter().collect();
            obs::SERVE_LANE_OCCUPANCY.record(tenants.len() as u64);
            if tenants.len() > 1 {
                // Lanes riding in words shared with other tenants.
                for &i in &tenants {
                    if let Some(ctx) = &active[*i].ctx {
                        ctx.add_lanes_shared(w.jobs.iter().filter(|j| *j == i).count() as u64);
                    }
                }
            }
        }
        // The whole group shares one planning pass; attribute its wall
        // time to every member (the per-request cost of being packed).
        let pack_ns = pack_started.elapsed().as_nanos() as u64;
        for &i in members {
            if let Some(ctx) = &active[i].ctx {
                ctx.add_stage_ns(Stage::Pack, pack_ns);
            }
        }
        // Simulate the words across the deterministic pool. Word order is
        // preserved, so each job's samples demux in batch order.
        let round_lanes: u64 = words.iter().map(|w| w.lanes.len() as u64).sum();
        obs::SERVE_LANES_BUSY.add(round_lanes);
        let sim_started = Instant::now();
        let results = par::map_with_threads(threads, &words, |_, w| {
            let _ctx_guard = (w.rid != 0).then(|| ctx::enter(w.rid));
            let _span = trace::span("serve", "serve.word");
            simulate_word(&circuit, mode, width, &w.lanes)
        });
        let sim_ns = sim_started.elapsed().as_nanos() as u64;
        obs::SERVE_LANES_BUSY.sub(round_lanes);
        for &i in members {
            if let Some(ctx) = &active[i].ctx {
                ctx.add_stage_ns(Stage::Sim, sim_ns);
            }
        }
        for (w, result) in words.iter().zip(results) {
            match result {
                Ok(samples) => {
                    for (slot, &i) in w.jobs.iter().enumerate() {
                        // Like the offline engine, consumption stops at
                        // the first end-of-stream batch: later samples of
                        // an exhausted job are discarded speculation.
                        if active[i].exhausted {
                            continue;
                        }
                        match samples[slot] {
                            Some((power, cycles)) => {
                                active[i].replay.push(power, cycles);
                            }
                            // A lane whose stream produced nothing: the
                            // job's stream is exhausted, like the offline
                            // engine's end-of-stream signal.
                            None => active[i].exhausted = true,
                        }
                    }
                }
                Err(e) => {
                    for &i in &w.jobs {
                        if !finished.contains(&i) {
                            let _ = active[i].tx.send(JobUpdate::Done(Err(e.clone())));
                            finished.push(i);
                        }
                    }
                }
            }
        }
        // Report: done jobs finish; live streaming jobs get an interim CI.
        for &i in members {
            if finished.contains(&i) {
                continue;
            }
            let job = &mut active[i];
            let budget_spent = job.next_batch >= job.spec.opts.max_batches as u64;
            if job.replay.is_done() || job.exhausted || budget_spent {
                let replay =
                    std::mem::replace(&mut job.replay, StoppingReplay::new(&job.spec.opts));
                obs::SERVE_JOBS.inc();
                let _ = job.tx.send(JobUpdate::Done(replay.finish()));
                finished.push(i);
            } else if job.spec.stream {
                if let Some((mean_uw, half_width_uw)) = job.replay.interim() {
                    obs::SERVE_STREAMED_UPDATES.inc();
                    let _ = job.tx.send(JobUpdate::Interim {
                        mean_uw,
                        half_width_uw,
                        batches: job.replay.batches(),
                    });
                }
            }
        }
    }
    // Drop finished jobs, preserving the order of the rest.
    finished.sort_unstable();
    for &i in finished.iter().rev() {
        obs::SERVE_QUEUE_DEPTH.dec();
        active.remove(i);
    }
}

fn simulate_word(
    circuit: &CachedCircuit,
    mode: Mode,
    width: PackWidth,
    lanes: &[LaneRequest],
) -> Result<Vec<Option<(f64, u64)>>, NetlistError> {
    let w = circuit.netlist.input_count();
    let stream_fn = |rng: Rng| streams::random_rng(rng, w);
    let (nl, model, kernel) = (&circuit.netlist, &circuit.model, Some(&circuit.kernel));
    match (mode, width) {
        (Mode::ZeroDelay, PackWidth::W64) => {
            simulate_packed_lanes::<u64, _, _>(nl, model, kernel, &stream_fn, lanes)
        }
        (Mode::ZeroDelay, PackWidth::W256) => {
            simulate_packed_lanes::<W256, _, _>(nl, model, kernel, &stream_fn, lanes)
        }
        (Mode::ZeroDelay, PackWidth::W512) => {
            simulate_packed_lanes::<W512, _, _>(nl, model, kernel, &stream_fn, lanes)
        }
        (Mode::Glitch, PackWidth::W64) => simulate_packed_glitch_lanes::<u64, _, _>(
            nl,
            &circuit.lib,
            model,
            kernel,
            &stream_fn,
            lanes,
        ),
        (Mode::Glitch, PackWidth::W256) => simulate_packed_glitch_lanes::<W256, _, _>(
            nl,
            &circuit.lib,
            model,
            kernel,
            &stream_fn,
            lanes,
        ),
        (Mode::Glitch, PackWidth::W512) => simulate_packed_glitch_lanes::<W512, _, _>(
            nl,
            &circuit.lib,
            model,
            kernel,
            &stream_fn,
            lanes,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::{monte_carlo_power_seeded_threads_kernel, McKernel};

    fn gray_counter_src() -> String {
        std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/gray_counter4.v"
        ))
        .expect("read example")
    }

    fn offline(circuit: &CachedCircuit, seed: u64, opts: &MonteCarloOptions) -> MonteCarloResult {
        let w = circuit.netlist.input_count();
        monte_carlo_power_seeded_threads_kernel(
            &circuit.netlist,
            &circuit.lib,
            |rng| streams::random_rng(rng, w),
            seed,
            opts,
            1,
            McKernel::Packed64,
        )
        .unwrap()
    }

    #[test]
    fn packed_tenants_match_offline_results_exactly() {
        let circuit = Arc::new(CachedCircuit::build(&gray_counter_src()).unwrap());
        let opts = MonteCarloOptions {
            batch_cycles: 60,
            max_batches: 60,
            target_relative_error: 0.01,
            z: 1.96,
        };
        let engine = Engine::start(2, Duration::from_millis(1));
        // Three concurrent tenants with different seeds share words.
        let specs: Vec<JobSpec> = [0x1997u64, 7, 99]
            .iter()
            .map(|&seed| JobSpec {
                seed,
                opts,
                mode: Mode::ZeroDelay,
                width: PackWidth::W64,
                stream: false,
            })
            .collect();
        let rxs: Vec<_> = specs.iter().map(|s| engine.submit(Arc::clone(&circuit), *s)).collect();
        for (spec, rx) in specs.iter().zip(rxs) {
            let done = rx.recv().expect("job completes");
            let JobUpdate::Done(result) = done else { panic!("expected Done, got {done:?}") };
            let got = result.unwrap();
            let want = offline(&circuit, spec.seed, &opts);
            assert_eq!(got, want, "seed {}", spec.seed);
            assert_eq!(got.power_uw.to_bits(), want.power_uw.to_bits());
        }
        engine.shutdown();
    }

    #[test]
    fn streamed_jobs_emit_interims_then_the_same_result() {
        let circuit = Arc::new(CachedCircuit::build(&gray_counter_src()).unwrap());
        let opts = MonteCarloOptions {
            batch_cycles: 30,
            max_batches: 200,
            target_relative_error: 0.0,
            z: 1.96,
        };
        let engine = Engine::start(1, Duration::ZERO);
        let spec =
            JobSpec { seed: 42, opts, mode: Mode::ZeroDelay, width: PackWidth::W64, stream: true };
        let rx = engine.submit(Arc::clone(&circuit), spec);
        let mut interims = 0;
        let mut last_batches = 0;
        let result = loop {
            match rx.recv().expect("update") {
                JobUpdate::Interim { batches, half_width_uw, .. } => {
                    interims += 1;
                    assert!(batches > last_batches, "interim batches advance");
                    assert!(half_width_uw.is_finite() || batches < 2);
                    last_batches = batches;
                }
                JobUpdate::Done(r) => break r.unwrap(),
            }
        };
        // 200 batches at 64 lanes/round = at least two rounds => >= 1 interim.
        assert!(interims >= 1, "expected interim updates, got none");
        assert_eq!(result, offline(&circuit, 42, &opts));
        assert_eq!(result.batches, 200);
        engine.shutdown();
    }

    #[test]
    fn glitch_mode_and_wide_words_match_offline_too() {
        let circuit = Arc::new(CachedCircuit::build(&gray_counter_src()).unwrap());
        let opts = MonteCarloOptions {
            batch_cycles: 20,
            max_batches: 30,
            target_relative_error: 0.0,
            z: 1.96,
        };
        let engine = Engine::start(2, Duration::ZERO);
        let zd = engine.submit(
            Arc::clone(&circuit),
            JobSpec { seed: 5, opts, mode: Mode::ZeroDelay, width: PackWidth::W256, stream: false },
        );
        let gl = engine.submit(
            Arc::clone(&circuit),
            JobSpec { seed: 5, opts, mode: Mode::Glitch, width: PackWidth::W64, stream: false },
        );
        let JobUpdate::Done(zd) = zd.recv().unwrap() else { panic!() };
        let JobUpdate::Done(gl) = gl.recv().unwrap() else { panic!() };
        assert_eq!(zd.unwrap(), offline(&circuit, 5, &opts));
        let w = circuit.netlist.input_count();
        let want_glitch = hlpower_netlist::monte_carlo_glitch_power_seeded_threads_kernel(
            &circuit.netlist,
            &circuit.lib,
            |rng| streams::random_rng(rng, w),
            5,
            &opts,
            1,
            hlpower_netlist::TimedKernel::Packed64,
        )
        .unwrap();
        assert_eq!(gl.unwrap(), want_glitch);
        engine.shutdown();
    }
}
