//! Structured JSONL access logs.
//!
//! When the server is started with an access-log path (the `hlpower-serve`
//! binary wires this to `HLPOWER_ACCESS_LOG`), every served request
//! appends exactly one compact JSON object: request/client ids, peer,
//! route, status, byte counts, the netlist hash and cache outcome for
//! estimates, lane/cycle totals, per-stage durations, and wall time.
//! Requests slower than the configured threshold (`HLPOWER_SLOW_MS`)
//! additionally append a `{"slow": true, ...}` line carrying the
//! request's trace spans (when tracing is enabled), so a slow outlier can
//! be explained from the log alone.
//!
//! The format is line-delimited JSON on purpose: it appends atomically
//! under one mutex, tails cleanly, and round-trips through the
//! workspace's own [`hlpower_obs::json`] parser (`hlpower-serve audit`
//! does exactly that).

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::sync::Mutex;

use hlpower_obs::ctx::{RequestCtx, Stage};
use hlpower_obs::json::Value;
use hlpower_obs::trace;

/// A JSONL access-log sink shared by all connection threads.
pub struct AccessLog {
    file: Mutex<File>,
    slow_ns: Option<u64>,
}

/// Everything one access-log line records beyond the request context.
pub struct AccessRecord<'a> {
    /// The request's telemetry context (ids, stage times, counts).
    pub ctx: &'a RequestCtx,
    /// Peer address (`ip:port`), or `"unknown"` when unavailable.
    pub peer: &'a str,
    /// Request method, as received.
    pub method: &'a str,
    /// Request path with any query string stripped.
    pub route: &'a str,
    /// Response status code.
    pub status: u16,
    /// Kernel-cache key of the submitted netlist (estimates only).
    pub netlist_hash: Option<u64>,
    /// `"hit"` or `"miss"` (estimates only).
    pub cache: Option<&'static str>,
    /// Packed-word width in lanes (estimates only).
    pub width: Option<u64>,
    /// Request wall time in nanoseconds.
    pub wall_ns: u64,
}

impl AccessLog {
    /// Opens `path` for appending. `slow_ms`, when set, is the wall-time
    /// threshold above which a request also logs its trace spans.
    ///
    /// # Errors
    ///
    /// Propagates the open/create failure.
    pub fn open(path: &str, slow_ms: Option<u64>) -> io::Result<AccessLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog {
            file: Mutex::new(file),
            slow_ns: slow_ms.map(|ms| ms.saturating_mul(1_000_000)),
        })
    }

    /// Appends the record's JSONL line — plus, for slow requests, a
    /// second line with the request's trace spans. Write failures are
    /// swallowed: logging must never take down a response.
    pub fn log(&self, rec: &AccessRecord<'_>) {
        let mut out = line_value(rec).compact();
        out.push('\n');
        if let Some(slow_ns) = self.slow_ns {
            if rec.wall_ns >= slow_ns {
                out.push_str(&slow_value(rec).compact());
                out.push('\n');
            }
        }
        let mut file = self.file.lock().expect("access log poisoned");
        let _ = file.write_all(out.as_bytes());
        let _ = file.flush();
    }
}

fn opt_str(v: Option<&str>) -> Value {
    v.map(|s| Value::Str(s.to_string())).unwrap_or(Value::Null)
}

fn opt_int(v: Option<u64>) -> Value {
    v.map(|n| Value::Int(i128::from(n))).unwrap_or(Value::Null)
}

fn line_value(rec: &AccessRecord<'_>) -> Value {
    let ctx = rec.ctx;
    let stages = Value::Obj(
        Stage::ALL
            .iter()
            .map(|&s| (format!("{}_ns", s.name()), Value::Int(i128::from(ctx.stage_ns(s)))))
            .collect(),
    );
    Value::Obj(vec![
        ("id".to_string(), Value::Int(i128::from(ctx.id()))),
        ("client_id".to_string(), opt_str(ctx.client_id())),
        ("peer".to_string(), Value::Str(rec.peer.to_string())),
        ("method".to_string(), Value::Str(rec.method.to_string())),
        ("route".to_string(), Value::Str(rec.route.to_string())),
        ("status".to_string(), Value::Int(i128::from(rec.status))),
        ("bytes_in".to_string(), Value::Int(i128::from(ctx.bytes_in()))),
        ("bytes_out".to_string(), Value::Int(i128::from(ctx.bytes_out()))),
        (
            "netlist_hash".to_string(),
            rec.netlist_hash.map(|h| Value::Str(format!("{h:016x}"))).unwrap_or(Value::Null),
        ),
        ("cache".to_string(), opt_str(rec.cache)),
        ("width".to_string(), opt_int(rec.width)),
        ("lanes".to_string(), Value::Int(i128::from(ctx.lanes()))),
        ("lanes_shared".to_string(), Value::Int(i128::from(ctx.lanes_shared()))),
        ("cycles".to_string(), Value::Int(i128::from(ctx.cycles()))),
        ("stages".to_string(), stages),
        ("wall_ns".to_string(), Value::Int(i128::from(rec.wall_ns))),
    ])
}

/// The slow-request companion line: the spans recorded for this request
/// (empty when tracing is disabled — the line still marks the outlier).
fn slow_value(rec: &AccessRecord<'_>) -> Value {
    let spans = trace::events_for_request(rec.ctx.id())
        .into_iter()
        .map(|e| {
            Value::Obj(vec![
                ("cat".to_string(), Value::Str(e.cat.to_string())),
                ("name".to_string(), Value::Str(e.name.into_owned())),
                ("ts_ns".to_string(), Value::Int(i128::from(e.ts_ns))),
                ("dur_ns".to_string(), Value::Int(i128::from(e.dur_ns))),
                ("tid".to_string(), Value::Int(i128::from(e.tid))),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("slow".to_string(), Value::Bool(true)),
        ("id".to_string(), Value::Int(i128::from(rec.ctx.id()))),
        ("wall_ns".to_string(), Value::Int(i128::from(rec.wall_ns))),
        ("spans".to_string(), Value::Arr(spans)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_obs::json;

    #[test]
    fn lines_are_parseable_json_with_every_field() {
        let dir = std::env::temp_dir().join(format!("hlpower-accesslog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);

        let log = AccessLog::open(path_str, Some(0)).unwrap();
        let ctx = RequestCtx::new(Some("client-7"));
        ctx.add_bytes_in(100);
        ctx.add_bytes_out(250);
        ctx.add_stage_ns(Stage::Parse, 1_000);
        ctx.add_stage_ns(Stage::Sim, 9_000);
        ctx.add_lanes(64);
        ctx.add_lanes_shared(3);
        ctx.add_cycles(3840);
        log.log(&AccessRecord {
            ctx: &ctx,
            peer: "127.0.0.1:5",
            method: "POST",
            route: "/estimate",
            status: 200,
            netlist_hash: Some(0xabcd),
            cache: Some("miss"),
            width: Some(64),
            wall_ns: 12_345_678,
        });

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // slow_ms = 0 ⇒ the access line plus a slow line.
        assert_eq!(lines.len(), 2, "{text}");
        let line = json::parse(lines[0]).unwrap();
        assert_eq!(line.get("client_id").and_then(Value::as_str), Some("client-7"));
        assert_eq!(line.get("status").and_then(Value::as_u64), Some(200));
        assert_eq!(line.get("bytes_out").and_then(Value::as_u64), Some(250));
        assert_eq!(line.get("netlist_hash").and_then(Value::as_str), Some("000000000000abcd"));
        assert_eq!(line.get("cache").and_then(Value::as_str), Some("miss"));
        assert_eq!(line.get("lanes_shared").and_then(Value::as_u64), Some(3));
        let stages = line.get("stages").expect("stages object");
        assert_eq!(stages.get("parse_ns").and_then(Value::as_u64), Some(1_000));
        assert_eq!(stages.get("sim_ns").and_then(Value::as_u64), Some(9_000));
        assert_eq!(stages.get("queue_ns").and_then(Value::as_u64), Some(0));
        let slow = json::parse(lines[1]).unwrap();
        assert_eq!(slow.get("slow"), Some(&Value::Bool(true)));
        assert_eq!(slow.get("id"), line.get("id"));
        let _ = std::fs::remove_file(&path);
    }
}
