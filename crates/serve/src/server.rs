//! The estimation server: accept loop, request routing, and the JSON
//! request/response schema (documented normatively in `docs/SERVER.md`).
//!
//! Endpoints:
//!
//! * `POST /estimate` — body is a JSON object with the netlist source
//!   (native `.nl`, structural Verilog, or EDIF — sniffed), a root seed,
//!   stopping options, simulation mode, and word width. Returns the
//!   Monte-Carlo power estimate, bit-identical to the offline engine.
//!   With `"stream": true` the response is chunked: one JSON line per
//!   scheduling round with the running confidence interval, then the
//!   final result line.
//! * `GET /metrics` — the live `hlpower-obs/2` metrics snapshot.
//! * `GET /healthz` — liveness probe.
//! * `POST /shutdown` — graceful shutdown: stop accepting, drain
//!   in-flight jobs, exit.
//!
//! Malformed HTTP, oversized payloads, bad JSON, and netlist parse
//! errors are all structured 4xx responses (`{"ok":false,"error":{...}}`
//! with the parser's located line/column/snippet where available) —
//! never a dropped connection mid-request, never a panic.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hlpower_netlist::{MonteCarloOptions, NetlistError};
use hlpower_obs::json::{self, Value};
use hlpower_obs::metrics as obs;

use crate::cache::{hash_source, CachedCircuit, KernelCache};
use crate::engine::{Engine, JobSpec, JobUpdate, Mode, PackWidth};
use crate::http::{self, ChunkedWriter, HttpError, Limits, Request};

/// Server configuration; `Default` binds an ephemeral localhost port.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub addr: String,
    /// Worker threads for packed-word sharding (0 = the pool's
    /// `HLPOWER_THREADS`-aware default).
    pub threads: usize,
    /// Kernel-cache byte budget.
    pub cache_bytes: usize,
    /// Per-read socket timeout while parsing a request.
    pub read_timeout: Duration,
    /// Batcher gather window (lets near-simultaneous requests co-pack).
    pub gather: Duration,
    /// HTTP parsing limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            cache_bytes: 64 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            gather: Duration::from_millis(2),
            limits: Limits::default(),
        }
    }
}

struct Shared {
    engine: Engine,
    cache: Mutex<KernelCache>,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    limits: Limits,
    read_timeout: Duration,
    addr: SocketAddr,
}

/// A running server; dropping it (or calling [`Server::shutdown`] then
/// [`Server::join`]) stops it cleanly.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let threads = if config.threads == 0 {
            hlpower_rng::par::num_threads_checked().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("thread config: {e:?}"))
            })?
        } else {
            config.threads
        };
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: Engine::start(threads, config.gather),
            cache: Mutex::new(KernelCache::new(config.cache_bytes)),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            limits: config.limits,
            read_timeout: config.read_timeout,
            addr,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("hlpower-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server { addr, shared, accept: Some(accept) })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals graceful shutdown (idempotent): stop accepting, finish
    /// in-flight requests, drain the engine.
    pub fn shutdown(&self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Blocks until the accept loop (and its in-flight requests) exit.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// [`Server::shutdown`] then [`Server::join`].
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let conn_shared = Arc::clone(shared);
        conn_shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let spawned =
            std::thread::Builder::new().name("hlpower-serve-conn".into()).spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(stream, &conn_shared);
                }));
                if result.is_err() {
                    // The 500 was (if possible) already written by the
                    // handler's own catch; this catch is the last line of
                    // defense so a panic never kills the server.
                    obs::SERVE_REQUESTS_ERR.inc();
                }
                conn_shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
    // Drain request threads (bounded wait), then the engine via Drop.
    for _ in 0..500 {
        if shared.in_flight.load(Ordering::SeqCst) == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _t = obs::SERVE_REQUEST_NS.time();
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let req = match http::read_request(&mut reader, &shared.limits) {
        Ok(req) => req,
        Err(HttpError::Closed) => return,
        Err(e) => {
            obs::SERVE_REQUESTS.inc();
            obs::SERVE_REQUESTS_ERR.inc();
            let status = if is_timeout(&e) { 408 } else { e.status() };
            let body = error_body("http", &e.to_string(), Vec::new());
            let _ = http::write_response(&mut writer, status, "application/json", body.as_bytes());
            return;
        }
    };
    obs::SERVE_REQUESTS.inc();
    let outcome = catch_unwind(AssertUnwindSafe(|| route(&req, &mut writer, shared)));
    match outcome {
        Ok(status) => {
            if status < 400 {
                obs::SERVE_REQUESTS_OK.inc();
            } else {
                obs::SERVE_REQUESTS_ERR.inc();
            }
        }
        Err(_) => {
            obs::SERVE_REQUESTS_ERR.inc();
            let body = error_body("internal", "request handler panicked", Vec::new());
            let _ = http::write_response(&mut writer, 500, "application/json", body.as_bytes());
        }
    }
}

fn is_timeout(e: &HttpError) -> bool {
    matches!(e, HttpError::Io(io) if matches!(io.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut))
}

/// Routes one request; returns the response status (for metrics).
fn route<W: Write>(req: &Request, w: &mut W, shared: &Arc<Shared>) -> u16 {
    match (req.method.as_str(), req.target.split('?').next().unwrap_or("")) {
        ("POST", "/estimate") => estimate(req, w, shared),
        ("GET", "/metrics") => {
            let body = obs::snapshot().to_json_pretty();
            respond(w, 200, body.as_bytes())
        }
        ("GET", "/healthz") => respond(w, 200, b"{\"ok\": true}"),
        ("POST", "/shutdown") => {
            let status = respond(w, 200, b"{\"ok\": true, \"stopping\": true}");
            if !shared.shutdown.swap(true, Ordering::SeqCst) {
                // Wake the blocking accept so the loop observes the flag.
                let _ = TcpStream::connect(shared.addr);
            }
            status
        }
        ("GET" | "POST", _) => {
            let body =
                error_body("not_found", &format!("no such endpoint: {}", req.target), vec![]);
            respond(w, 404, body.as_bytes())
        }
        (m, _) => {
            let body =
                error_body("method_not_allowed", &format!("method {m} not supported"), vec![]);
            respond(w, 405, body.as_bytes())
        }
    }
}

fn respond<W: Write>(w: &mut W, status: u16, body: &[u8]) -> u16 {
    let _ = http::write_response(w, status, "application/json", body);
    status
}

/// Builds `{"ok": false, "error": {"kind": ..., "message": ..., ...}}`.
fn error_body(kind: &str, message: &str, extra: Vec<(String, Value)>) -> String {
    let mut error = vec![
        ("kind".to_string(), Value::Str(kind.to_string())),
        ("message".to_string(), Value::Str(message.to_string())),
    ];
    error.extend(extra);
    Value::Obj(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Obj(error)),
    ])
    .pretty()
}

/// The located payload for a netlist front-end rejection.
fn netlist_error_extra(e: &NetlistError) -> Vec<(String, Value)> {
    let (format, at) = match e {
        NetlistError::ParseSyntax { format, at, .. }
        | NetlistError::ParseUnknownName { format, at, .. }
        | NetlistError::ParseUnknownCell { format, at, .. }
        | NetlistError::ParseUnsupported { format, at, .. }
        | NetlistError::ParseMultipleDrivers { format, at, .. }
        | NetlistError::ParseUndriven { format, at, .. } => (format, at),
        _ => return Vec::new(),
    };
    vec![
        ("format".to_string(), Value::Str(format.name().to_string())),
        ("line".to_string(), Value::Int(at.line as i128)),
        ("col".to_string(), Value::Int(at.col as i128)),
        ("snippet".to_string(), Value::Str(at.snippet.clone())),
    ]
}

fn netlist_error_kind(e: &NetlistError) -> &'static str {
    match e {
        NetlistError::ParseSyntax { .. } => "parse_syntax",
        NetlistError::ParseUnknownName { .. } => "parse_unknown_name",
        NetlistError::ParseUnknownCell { .. } => "parse_unknown_cell",
        NetlistError::ParseUnsupported { .. } => "parse_unsupported",
        NetlistError::ParseMultipleDrivers { .. } => "parse_multiple_drivers",
        NetlistError::ParseUndriven { .. } => "parse_undriven",
        NetlistError::EmptyStream => "empty_stream",
        _ => "netlist",
    }
}

struct EstimateRequest {
    source: String,
    spec: JobSpec,
}

/// Parses and validates the `/estimate` body. `Err` is a ready-to-send
/// 400 body.
fn parse_estimate(body: &[u8]) -> Result<EstimateRequest, String> {
    let text = std::str::from_utf8(body)
        .map_err(|_| error_body("json", "request body is not UTF-8", vec![]))?;
    let root = json::parse(text).map_err(|e| {
        error_body(
            "json",
            &e.msg,
            vec![
                ("line".to_string(), Value::Int(e.line as i128)),
                ("col".to_string(), Value::Int(e.col as i128)),
                ("pos".to_string(), Value::Int(e.pos as i128)),
            ],
        )
    })?;
    let field_err = |msg: &str| error_body("request", msg, vec![]);
    let source = root
        .get("netlist")
        .and_then(Value::as_str)
        .ok_or_else(|| field_err("missing required string field `netlist`"))?
        .to_string();
    let seed = match root.get("seed") {
        None => 0x1997,
        Some(v) => v.as_u64().ok_or_else(|| field_err("`seed` must be a u64"))?,
    };
    // Defaults match the offline `repro --ingest` reference battery.
    let mut opts = MonteCarloOptions {
        batch_cycles: 60,
        max_batches: 60,
        target_relative_error: 0.01,
        z: 1.96,
    };
    if let Some(o) = root.get("options") {
        if let Some(v) = o.get("batch_cycles") {
            opts.batch_cycles =
                v.as_u64().ok_or_else(|| field_err("`options.batch_cycles` must be a u64"))?
                    as usize;
        }
        if let Some(v) = o.get("max_batches") {
            opts.max_batches =
                v.as_u64().ok_or_else(|| field_err("`options.max_batches` must be a u64"))?
                    as usize;
        }
        if let Some(v) = o.get("target_relative_error") {
            opts.target_relative_error = v
                .as_f64()
                .ok_or_else(|| field_err("`options.target_relative_error` must be a number"))?;
        }
        if let Some(v) = o.get("z") {
            opts.z = v.as_f64().ok_or_else(|| field_err("`options.z` must be a number"))?;
        }
    }
    if opts.batch_cycles == 0 || opts.max_batches == 0 {
        return Err(field_err("`options.batch_cycles` and `options.max_batches` must be >= 1"));
    }
    if !opts.target_relative_error.is_finite() || opts.target_relative_error < 0.0 {
        return Err(field_err("`options.target_relative_error` must be a finite number >= 0"));
    }
    if !opts.z.is_finite() || opts.z <= 0.0 {
        return Err(field_err("`options.z` must be a finite number > 0"));
    }
    let mode = match root.get("mode").and_then(Value::as_str) {
        None | Some("zero_delay") => Mode::ZeroDelay,
        Some("glitch") => Mode::Glitch,
        Some(other) => {
            return Err(field_err(&format!(
                "`mode` must be `zero_delay` or `glitch`, got `{other}`"
            )))
        }
    };
    let width = match root.get("width").and_then(Value::as_u64) {
        None | Some(64) => PackWidth::W64,
        Some(256) => PackWidth::W256,
        Some(512) => PackWidth::W512,
        Some(other) => {
            return Err(field_err(&format!("`width` must be 64, 256, or 512, got {other}")))
        }
    };
    let stream = match root.get("stream") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| field_err("`stream` must be a boolean"))?,
    };
    Ok(EstimateRequest { source, spec: JobSpec { seed, opts, mode, width, stream } })
}

fn estimate<W: Write>(req: &Request, w: &mut W, shared: &Arc<Shared>) -> u16 {
    let parsed = match parse_estimate(&req.body) {
        Ok(p) => p,
        Err(body) => return respond(w, 400, body.as_bytes()),
    };
    // Kernel-cache lookup; a miss ingests and compiles outside the lock.
    let hash = hash_source(&parsed.source);
    let cached = shared.cache.lock().expect("cache poisoned").get(hash);
    let cache_state = if cached.is_some() { "hit" } else { "miss" };
    let circuit = match cached {
        Some(c) => c,
        None => match CachedCircuit::build(&parsed.source) {
            Ok(c) => {
                let c = Arc::new(c);
                shared.cache.lock().expect("cache poisoned").insert(hash, Arc::clone(&c));
                c
            }
            Err(e) => {
                let body =
                    error_body(netlist_error_kind(&e), &e.to_string(), netlist_error_extra(&e));
                return respond(w, 400, body.as_bytes());
            }
        },
    };
    let spec = parsed.spec;
    let rx = shared.engine.submit(Arc::clone(&circuit), spec);
    if spec.stream {
        let Ok(mut cw) = ChunkedWriter::begin(&mut *w, 200, "application/json") else {
            return 200;
        };
        loop {
            match rx.recv() {
                Ok(JobUpdate::Interim { mean_uw, half_width_uw, batches }) => {
                    let line = Value::Obj(vec![(
                        "interim".to_string(),
                        Value::Obj(vec![
                            ("mean_uw".to_string(), Value::Num(mean_uw)),
                            ("half_width_uw".to_string(), Value::Num(half_width_uw)),
                            ("batches".to_string(), Value::Int(batches as i128)),
                        ]),
                    )]);
                    if cw.chunk(format!("{}\n", line.compact()).as_bytes()).is_err() {
                        return 200;
                    }
                }
                Ok(JobUpdate::Done(result)) => {
                    let line = match result {
                        Ok(r) => result_value(&r, &circuit, &spec, cache_state).compact(),
                        Err(e) => error_body(netlist_error_kind(&e), &e.to_string(), vec![]),
                    };
                    let _ = cw.chunk(format!("{line}\n").as_bytes());
                    let _ = cw.finish();
                    return 200;
                }
                Err(_) => {
                    let _ = cw.finish();
                    return 200;
                }
            }
        }
    }
    loop {
        match rx.recv() {
            Ok(JobUpdate::Interim { .. }) => continue,
            Ok(JobUpdate::Done(Ok(r))) => {
                let body = result_value(&r, &circuit, &spec, cache_state).pretty();
                return respond(w, 200, body.as_bytes());
            }
            Ok(JobUpdate::Done(Err(e))) => {
                let body =
                    error_body(netlist_error_kind(&e), &e.to_string(), netlist_error_extra(&e));
                return respond(w, 400, body.as_bytes());
            }
            Err(_) => {
                let body = error_body("internal", "engine dropped the job", vec![]);
                return respond(w, 500, body.as_bytes());
            }
        }
    }
}

fn result_value(
    r: &hlpower_netlist::MonteCarloResult,
    circuit: &CachedCircuit,
    spec: &JobSpec,
    cache_state: &str,
) -> Value {
    Value::Obj(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("power_uw".to_string(), Value::Num(r.power_uw)),
        ("half_width_uw".to_string(), Value::Num(r.half_width_uw)),
        ("relative_error".to_string(), Value::Num(r.relative_error())),
        ("batches".to_string(), Value::Int(r.batches as i128)),
        ("cycles".to_string(), Value::Int(i128::from(r.cycles))),
        ("seed".to_string(), Value::Int(i128::from(spec.seed))),
        (
            "mode".to_string(),
            Value::Str(
                match spec.mode {
                    Mode::ZeroDelay => "zero_delay",
                    Mode::Glitch => "glitch",
                }
                .to_string(),
            ),
        ),
        ("width".to_string(), Value::Int(spec.width.lanes() as i128)),
        ("format".to_string(), Value::Str(circuit.format.name().to_string())),
        ("nodes".to_string(), Value::Int(circuit.netlist.node_count() as i128)),
        ("inputs".to_string(), Value::Int(circuit.netlist.input_count() as i128)),
        ("cache".to_string(), Value::Str(cache_state.to_string())),
    ])
}
