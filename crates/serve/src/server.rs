//! The estimation server: accept loop, request routing, and the JSON
//! request/response schema (documented normatively in `docs/SERVER.md`).
//!
//! Endpoints:
//!
//! * `POST /estimate` — body is a JSON object with the netlist source
//!   (native `.nl`, structural Verilog, or EDIF — sniffed), a root seed,
//!   stopping options, simulation mode, and word width. Returns the
//!   Monte-Carlo power estimate, bit-identical to the offline engine.
//!   With `"stream": true` the response is chunked: one JSON line per
//!   scheduling round with the running confidence interval, then the
//!   final result line.
//! * `GET /metrics` — the live `hlpower-obs/2` metrics snapshot: JSON by
//!   default, Prometheus text exposition (version 0.0.4) when the
//!   `Accept` header asks for `text/plain`.
//! * `GET /healthz` — liveness probe.
//! * `POST /shutdown` — graceful shutdown: stop accepting, drain
//!   in-flight jobs, exit.
//!
//! Connections are HTTP/1.1 keep-alive: a client may pipeline up to
//! [`MAX_KEEPALIVE_REQUESTS`] sequential requests per connection before
//! the server closes it (HTTP/1.0 defaults to close; errors always
//! close).
//!
//! Every request gets a [`RequestCtx`]: a process-unique id (echoed back
//! in the `x-request-id` header and the `request_id` response field,
//! honoring a client-supplied `X-Request-Id` verbatim), per-stage
//! timings, and byte/lane/cycle counts. The context rides with the job
//! through the batcher and across worker threads, so trace spans
//! correlate, and it feeds the JSONL access log when one is configured
//! (see [`crate::accesslog`]).
//!
//! Malformed HTTP, oversized payloads, bad JSON, and netlist parse
//! errors are all structured 4xx responses (`{"ok":false,"error":{...}}`
//! with the parser's located line/column/snippet where available) —
//! never a dropped connection mid-request, never a panic.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hlpower_netlist::{MonteCarloOptions, NetlistError};
use hlpower_obs::ctx::{self, RequestCtx, Stage};
use hlpower_obs::json::{self, Value};
use hlpower_obs::metrics as obs;
use hlpower_obs::trace;

use crate::accesslog::{AccessLog, AccessRecord};
use crate::cache::{hash_source, CachedCircuit, KernelCache};
use crate::engine::{Engine, JobSpec, JobUpdate, Mode, PackWidth};
use crate::http::{self, ChunkedWriter, HttpError, Limits, Request};

/// Requests served per connection before the server closes it (bounds
/// how long one client can monopolize a connection thread).
pub const MAX_KEEPALIVE_REQUESTS: usize = 128;

/// Server configuration; `Default` binds an ephemeral localhost port and
/// picks up `HLPOWER_ACCESS_LOG` / `HLPOWER_SLOW_MS` from the
/// environment.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub addr: String,
    /// Worker threads for packed-word sharding (0 = the pool's
    /// `HLPOWER_THREADS`-aware default).
    pub threads: usize,
    /// Kernel-cache byte budget.
    pub cache_bytes: usize,
    /// Per-read socket timeout while parsing a request (doubles as the
    /// keep-alive idle timeout between requests).
    pub read_timeout: Duration,
    /// Batcher gather window (lets near-simultaneous requests co-pack).
    pub gather: Duration,
    /// HTTP parsing limits.
    pub limits: Limits,
    /// JSONL access-log path (`None` disables logging).
    pub access_log: Option<String>,
    /// Wall-time threshold, in milliseconds, above which a request also
    /// logs its trace spans (`None` disables the slow dump).
    pub slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            cache_bytes: 64 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            gather: Duration::from_millis(2),
            limits: Limits::default(),
            access_log: std::env::var("HLPOWER_ACCESS_LOG").ok(),
            slow_ms: std::env::var("HLPOWER_SLOW_MS").ok().and_then(|v| v.parse().ok()),
        }
    }
}

struct Shared {
    engine: Engine,
    cache: Mutex<KernelCache>,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    limits: Limits,
    read_timeout: Duration,
    addr: SocketAddr,
    log: Option<AccessLog>,
}

/// A running server; dropping it (or calling [`Server::shutdown`] then
/// [`Server::join`]) stops it cleanly.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (and the access-log open failure, so
    /// a misconfigured log path is loud, not silent).
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let threads = if config.threads == 0 {
            hlpower_rng::par::num_threads_checked().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("thread config: {e:?}"))
            })?
        } else {
            config.threads
        };
        let log = match &config.access_log {
            Some(path) => Some(AccessLog::open(path, config.slow_ms)?),
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: Engine::start(threads, config.gather),
            cache: Mutex::new(KernelCache::new(config.cache_bytes)),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            limits: config.limits,
            read_timeout: config.read_timeout,
            addr,
            log,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("hlpower-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server { addr, shared, accept: Some(accept) })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals graceful shutdown (idempotent): stop accepting, finish
    /// in-flight requests, drain the engine.
    pub fn shutdown(&self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Blocks until the accept loop (and its in-flight requests) exit.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// [`Server::shutdown`] then [`Server::join`].
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let conn_shared = Arc::clone(shared);
        conn_shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let spawned =
            std::thread::Builder::new().name("hlpower-serve-conn".into()).spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(stream, &conn_shared);
                }));
                if result.is_err() {
                    // The 500 was (if possible) already written by the
                    // handler's own catch; this catch is the last line of
                    // defense so a panic never kills the server.
                    obs::SERVE_REQUESTS_ERR.inc();
                }
                conn_shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
    // Drain request threads (bounded wait), then the engine via Drop.
    for _ in 0..500 {
        if shared.in_flight.load(Ordering::SeqCst) == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Serves one connection: a keep-alive loop of parse → handle, closing
/// on error, on `Connection: close`, after [`MAX_KEEPALIVE_REQUESTS`],
/// or when shutdown begins.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    obs::SERVE_CONNECTIONS.inc();
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "unknown".into());
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut served = 0usize;
    loop {
        let req = match http::read_request(&mut reader, &shared.limits) {
            Ok(req) => req,
            Err(HttpError::Closed) => return,
            Err(e) => {
                // On a reused connection, going quiet is just the client
                // holding the connection open — close silently.
                if served > 0 && is_timeout(&e) {
                    return;
                }
                obs::SERVE_REQUESTS.inc();
                obs::SERVE_REQUESTS_ERR.inc();
                let status = if is_timeout(&e) { 408 } else { e.status() };
                let body = error_body("http", &e.to_string(), Vec::new(), None);
                let _ = http::write_response(
                    &mut writer,
                    status,
                    "application/json",
                    body.as_bytes(),
                    false,
                    &[],
                );
                return;
            }
        };
        if served == 1 {
            obs::SERVE_CONNECTIONS_REUSED.inc();
        }
        served += 1;
        let keep = served < MAX_KEEPALIVE_REQUESTS
            && req.keep_alive()
            && !shared.shutdown.load(Ordering::SeqCst);
        if !handle_request(&req, &mut writer, shared, &peer, keep) {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn is_timeout(e: &HttpError) -> bool {
    matches!(e, HttpError::Io(io) if matches!(io.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut))
}

/// What routing learned about a request, for metrics and the access log.
#[derive(Default)]
struct RouteMeta {
    /// Kernel-cache key of the netlist (estimates that parsed far enough).
    netlist_hash: Option<u64>,
    /// `"hit"` / `"miss"` for estimates that reached the cache.
    cache: Option<&'static str>,
    /// Packed-word width in lanes, for estimates.
    width: Option<u64>,
    /// Whether this was an `/estimate` that ran the serving pipeline
    /// (gates the per-stage latency histograms).
    estimate: bool,
}

/// Serves one parsed request: creates its [`RequestCtx`], routes it,
/// records metrics and the access-log line. Returns whether the
/// connection may serve another request.
fn handle_request<W: Write>(
    req: &Request,
    w: &mut W,
    shared: &Arc<Shared>,
    peer: &str,
    keep: bool,
) -> bool {
    let started = Instant::now();
    obs::SERVE_REQUESTS.inc();
    obs::SERVE_IN_FLIGHT.inc();
    let _timer = obs::SERVE_REQUEST_NS.time();
    let req_ctx = Arc::new(RequestCtx::new(req.header("x-request-id")));
    req_ctx.add_bytes_in(req.body.len() as u64);
    let _guard = ctx::enter(req_ctx.id());
    let route_path = req.target.split('?').next().unwrap_or("").to_string();
    let span = trace::span_dyn("serve", || format!("serve.request:{route_path}"));
    let outcome = catch_unwind(AssertUnwindSafe(|| route(req, w, shared, &req_ctx, keep)));
    // End the request span before logging so a slow-request dump sees it.
    drop(span);
    let (status, meta, panicked) = match outcome {
        Ok((status, meta)) => {
            if status < 400 {
                obs::SERVE_REQUESTS_OK.inc();
            } else {
                obs::SERVE_REQUESTS_ERR.inc();
            }
            (status, meta, false)
        }
        Err(_) => {
            obs::SERVE_REQUESTS_ERR.inc();
            let body =
                error_body("internal", "request handler panicked", Vec::new(), Some(&req_ctx));
            let echo = req_ctx.echo();
            let _ = http::write_response(
                w,
                500,
                "application/json",
                body.as_bytes(),
                false,
                &[("x-request-id", &echo)],
            );
            (500, RouteMeta::default(), true)
        }
    };
    obs::SERVE_IN_FLIGHT.dec();
    if meta.estimate {
        for stage in Stage::ALL {
            obs::stage_hist(stage).record(req_ctx.stage_ns(stage));
        }
    }
    if let Some(log) = &shared.log {
        log.log(&AccessRecord {
            ctx: &req_ctx,
            peer,
            method: &req.method,
            route: &route_path,
            status,
            netlist_hash: meta.netlist_hash,
            cache: meta.cache,
            width: meta.width,
            wall_ns: started.elapsed().as_nanos() as u64,
        });
    }
    keep && !panicked
}

/// Routes one request; returns the response status and routing metadata.
fn route<W: Write>(
    req: &Request,
    w: &mut W,
    shared: &Arc<Shared>,
    ctx: &Arc<RequestCtx>,
    keep: bool,
) -> (u16, RouteMeta) {
    match (req.method.as_str(), req.target.split('?').next().unwrap_or("")) {
        ("POST", "/estimate") => estimate(req, w, shared, ctx, keep),
        ("GET", "/metrics") => {
            // Content negotiation: Prometheus text exposition when the
            // client asks for text/plain, JSON otherwise.
            let snapshot = obs::snapshot();
            let wants_text = req.header("accept").is_some_and(|a| a.contains("text/plain"));
            let status = if wants_text {
                respond_with_type(
                    w,
                    200,
                    "text/plain; version=0.0.4",
                    snapshot.to_prometheus().as_bytes(),
                    keep,
                    ctx,
                )
            } else {
                respond(w, 200, snapshot.to_json_pretty().as_bytes(), keep, ctx)
            };
            (status, RouteMeta::default())
        }
        ("GET", "/healthz") => {
            (respond(w, 200, b"{\"ok\": true}", keep, ctx), RouteMeta::default())
        }
        ("POST", "/shutdown") => {
            // The shutdown response always closes: the connection loop
            // is about to stop anyway.
            let status = respond(w, 200, b"{\"ok\": true, \"stopping\": true}", false, ctx);
            if !shared.shutdown.swap(true, Ordering::SeqCst) {
                // Wake the blocking accept so the loop observes the flag.
                let _ = TcpStream::connect(shared.addr);
            }
            (status, RouteMeta::default())
        }
        ("GET" | "POST", _) => {
            let body = error_body(
                "not_found",
                &format!("no such endpoint: {}", req.target),
                vec![],
                Some(ctx),
            );
            (respond(w, 404, body.as_bytes(), keep, ctx), RouteMeta::default())
        }
        (m, _) => {
            let body = error_body(
                "method_not_allowed",
                &format!("method {m} not supported"),
                vec![],
                Some(ctx),
            );
            (respond(w, 405, body.as_bytes(), keep, ctx), RouteMeta::default())
        }
    }
}

fn respond<W: Write>(w: &mut W, status: u16, body: &[u8], keep: bool, ctx: &RequestCtx) -> u16 {
    respond_with_type(w, status, "application/json", body, keep, ctx)
}

fn respond_with_type<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep: bool,
    ctx: &RequestCtx,
) -> u16 {
    ctx.add_bytes_out(body.len() as u64);
    let echo = ctx.echo();
    let _ = http::write_response(w, status, content_type, body, keep, &[("x-request-id", &echo)]);
    status
}

/// Builds `{"ok": false, "error": {"kind": ..., "message": ..., ...}}`,
/// tagged with the request id when a context exists.
fn error_body(
    kind: &str,
    message: &str,
    extra: Vec<(String, Value)>,
    ctx: Option<&RequestCtx>,
) -> String {
    let mut error = vec![
        ("kind".to_string(), Value::Str(kind.to_string())),
        ("message".to_string(), Value::Str(message.to_string())),
    ];
    error.extend(extra);
    let mut fields =
        vec![("ok".to_string(), Value::Bool(false)), ("error".to_string(), Value::Obj(error))];
    if let Some(ctx) = ctx {
        fields.push(("request_id".to_string(), Value::Str(ctx.echo())));
    }
    Value::Obj(fields).pretty()
}

/// The located payload for a netlist front-end rejection.
fn netlist_error_extra(e: &NetlistError) -> Vec<(String, Value)> {
    let (format, at) = match e {
        NetlistError::ParseSyntax { format, at, .. }
        | NetlistError::ParseUnknownName { format, at, .. }
        | NetlistError::ParseUnknownCell { format, at, .. }
        | NetlistError::ParseUnsupported { format, at, .. }
        | NetlistError::ParseMultipleDrivers { format, at, .. }
        | NetlistError::ParseUndriven { format, at, .. } => (format, at),
        _ => return Vec::new(),
    };
    vec![
        ("format".to_string(), Value::Str(format.name().to_string())),
        ("line".to_string(), Value::Int(at.line as i128)),
        ("col".to_string(), Value::Int(at.col as i128)),
        ("snippet".to_string(), Value::Str(at.snippet.clone())),
    ]
}

fn netlist_error_kind(e: &NetlistError) -> &'static str {
    match e {
        NetlistError::ParseSyntax { .. } => "parse_syntax",
        NetlistError::ParseUnknownName { .. } => "parse_unknown_name",
        NetlistError::ParseUnknownCell { .. } => "parse_unknown_cell",
        NetlistError::ParseUnsupported { .. } => "parse_unsupported",
        NetlistError::ParseMultipleDrivers { .. } => "parse_multiple_drivers",
        NetlistError::ParseUndriven { .. } => "parse_undriven",
        NetlistError::EmptyStream => "empty_stream",
        _ => "netlist",
    }
}

struct EstimateRequest {
    source: String,
    spec: JobSpec,
}

/// Parses and validates the `/estimate` body. `Err` is a ready-to-send
/// 400 body.
fn parse_estimate(body: &[u8], ctx: &RequestCtx) -> Result<EstimateRequest, String> {
    let text = std::str::from_utf8(body)
        .map_err(|_| error_body("json", "request body is not UTF-8", vec![], Some(ctx)))?;
    let root = json::parse(text).map_err(|e| {
        error_body(
            "json",
            &e.msg,
            vec![
                ("line".to_string(), Value::Int(e.line as i128)),
                ("col".to_string(), Value::Int(e.col as i128)),
                ("pos".to_string(), Value::Int(e.pos as i128)),
            ],
            Some(ctx),
        )
    })?;
    let field_err = |msg: &str| error_body("request", msg, vec![], Some(ctx));
    let source = root
        .get("netlist")
        .and_then(Value::as_str)
        .ok_or_else(|| field_err("missing required string field `netlist`"))?
        .to_string();
    let seed = match root.get("seed") {
        None => 0x1997,
        Some(v) => v.as_u64().ok_or_else(|| field_err("`seed` must be a u64"))?,
    };
    // Defaults match the offline `repro --ingest` reference battery.
    let mut opts = MonteCarloOptions {
        batch_cycles: 60,
        max_batches: 60,
        target_relative_error: 0.01,
        z: 1.96,
    };
    if let Some(o) = root.get("options") {
        if let Some(v) = o.get("batch_cycles") {
            opts.batch_cycles =
                v.as_u64().ok_or_else(|| field_err("`options.batch_cycles` must be a u64"))?
                    as usize;
        }
        if let Some(v) = o.get("max_batches") {
            opts.max_batches =
                v.as_u64().ok_or_else(|| field_err("`options.max_batches` must be a u64"))?
                    as usize;
        }
        if let Some(v) = o.get("target_relative_error") {
            opts.target_relative_error = v
                .as_f64()
                .ok_or_else(|| field_err("`options.target_relative_error` must be a number"))?;
        }
        if let Some(v) = o.get("z") {
            opts.z = v.as_f64().ok_or_else(|| field_err("`options.z` must be a number"))?;
        }
    }
    if opts.batch_cycles == 0 || opts.max_batches == 0 {
        return Err(field_err("`options.batch_cycles` and `options.max_batches` must be >= 1"));
    }
    if !opts.target_relative_error.is_finite() || opts.target_relative_error < 0.0 {
        return Err(field_err("`options.target_relative_error` must be a finite number >= 0"));
    }
    if !opts.z.is_finite() || opts.z <= 0.0 {
        return Err(field_err("`options.z` must be a finite number > 0"));
    }
    let mode = match root.get("mode").and_then(Value::as_str) {
        None | Some("zero_delay") => Mode::ZeroDelay,
        Some("glitch") => Mode::Glitch,
        Some(other) => {
            return Err(field_err(&format!(
                "`mode` must be `zero_delay` or `glitch`, got `{other}`"
            )))
        }
    };
    let width = match root.get("width").and_then(Value::as_u64) {
        None | Some(64) => PackWidth::W64,
        Some(256) => PackWidth::W256,
        Some(512) => PackWidth::W512,
        Some(other) => {
            return Err(field_err(&format!("`width` must be 64, 256, or 512, got {other}")))
        }
    };
    let stream = match root.get("stream") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| field_err("`stream` must be a boolean"))?,
    };
    Ok(EstimateRequest { source, spec: JobSpec { seed, opts, mode, width, stream } })
}

fn estimate<W: Write>(
    req: &Request,
    w: &mut W,
    shared: &Arc<Shared>,
    ctx: &Arc<RequestCtx>,
    keep: bool,
) -> (u16, RouteMeta) {
    let mut meta = RouteMeta { estimate: true, ..RouteMeta::default() };
    let parsed = {
        let _t = ctx.time_stage(Stage::Parse);
        match parse_estimate(&req.body, ctx) {
            Ok(p) => p,
            Err(body) => return (respond(w, 400, body.as_bytes(), keep, ctx), meta),
        }
    };
    meta.width = Some(parsed.spec.width.lanes() as u64);
    // Kernel-cache lookup; a miss ingests and compiles outside the lock.
    let hash = hash_source(&parsed.source);
    meta.netlist_hash = Some(hash);
    let cached = {
        let _t = ctx.time_stage(Stage::Cache);
        shared.cache.lock().expect("cache poisoned").get(hash)
    };
    meta.cache = Some(if cached.is_some() { "hit" } else { "miss" });
    let cache_state = meta.cache.unwrap_or("miss");
    let circuit = match cached {
        Some(c) => c,
        None => {
            let built = {
                let _t = ctx.time_stage(Stage::Parse);
                CachedCircuit::build(&parsed.source)
            };
            match built {
                Ok(c) => {
                    let c = Arc::new(c);
                    let _t = ctx.time_stage(Stage::Cache);
                    shared.cache.lock().expect("cache poisoned").insert(hash, Arc::clone(&c));
                    c
                }
                Err(e) => {
                    let body = error_body(
                        netlist_error_kind(&e),
                        &e.to_string(),
                        netlist_error_extra(&e),
                        Some(ctx),
                    );
                    return (respond(w, 400, body.as_bytes(), keep, ctx), meta);
                }
            }
        }
    };
    let spec = parsed.spec;
    let rx = shared.engine.submit_ctx(Arc::clone(&circuit), spec, Some(Arc::clone(ctx)));
    let echo = ctx.echo();
    if spec.stream {
        let Ok(mut cw) = ChunkedWriter::begin(
            &mut *w,
            200,
            "application/json",
            keep,
            &[("x-request-id", &echo)],
        ) else {
            return (200, meta);
        };
        loop {
            match rx.recv() {
                Ok(JobUpdate::Interim { mean_uw, half_width_uw, batches }) => {
                    let line = Value::Obj(vec![
                        (
                            "interim".to_string(),
                            Value::Obj(vec![
                                ("mean_uw".to_string(), Value::Num(mean_uw)),
                                ("half_width_uw".to_string(), Value::Num(half_width_uw)),
                                ("batches".to_string(), Value::Int(batches as i128)),
                            ]),
                        ),
                        ("request_id".to_string(), Value::Str(echo.clone())),
                    ]);
                    let payload = format!("{}\n", line.compact());
                    ctx.add_bytes_out(payload.len() as u64);
                    if cw.chunk(payload.as_bytes()).is_err() {
                        return (200, meta);
                    }
                }
                Ok(JobUpdate::Done(result)) => {
                    let _t = ctx.time_stage(Stage::Finalize);
                    let line = match result {
                        Ok(r) => result_value(&r, &circuit, &spec, cache_state, &echo).compact(),
                        Err(e) => {
                            error_body(netlist_error_kind(&e), &e.to_string(), vec![], Some(ctx))
                        }
                    };
                    let payload = format!("{line}\n");
                    ctx.add_bytes_out(payload.len() as u64);
                    let _ = cw.chunk(payload.as_bytes());
                    let _ = cw.finish();
                    return (200, meta);
                }
                Err(_) => {
                    let _ = cw.finish();
                    return (200, meta);
                }
            }
        }
    }
    loop {
        match rx.recv() {
            Ok(JobUpdate::Interim { .. }) => continue,
            Ok(JobUpdate::Done(Ok(r))) => {
                let _t = ctx.time_stage(Stage::Finalize);
                let body = result_value(&r, &circuit, &spec, cache_state, &echo).pretty();
                return (respond(w, 200, body.as_bytes(), keep, ctx), meta);
            }
            Ok(JobUpdate::Done(Err(e))) => {
                let body = error_body(
                    netlist_error_kind(&e),
                    &e.to_string(),
                    netlist_error_extra(&e),
                    Some(ctx),
                );
                return (respond(w, 400, body.as_bytes(), keep, ctx), meta);
            }
            Err(_) => {
                let body = error_body("internal", "engine dropped the job", vec![], Some(ctx));
                return (respond(w, 500, body.as_bytes(), keep, ctx), meta);
            }
        }
    }
}

fn result_value(
    r: &hlpower_netlist::MonteCarloResult,
    circuit: &CachedCircuit,
    spec: &JobSpec,
    cache_state: &str,
    request_id: &str,
) -> Value {
    Value::Obj(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("power_uw".to_string(), Value::Num(r.power_uw)),
        ("half_width_uw".to_string(), Value::Num(r.half_width_uw)),
        ("relative_error".to_string(), Value::Num(r.relative_error())),
        ("batches".to_string(), Value::Int(r.batches as i128)),
        ("cycles".to_string(), Value::Int(i128::from(r.cycles))),
        ("seed".to_string(), Value::Int(i128::from(spec.seed))),
        (
            "mode".to_string(),
            Value::Str(
                match spec.mode {
                    Mode::ZeroDelay => "zero_delay",
                    Mode::Glitch => "glitch",
                }
                .to_string(),
            ),
        ),
        ("width".to_string(), Value::Int(spec.width.lanes() as i128)),
        ("format".to_string(), Value::Str(circuit.format.name().to_string())),
        ("nodes".to_string(), Value::Int(circuit.netlist.node_count() as i128)),
        ("inputs".to_string(), Value::Int(circuit.netlist.input_count() as i128)),
        ("cache".to_string(), Value::Str(cache_state.to_string())),
        ("request_id".to_string(), Value::Str(request_id.to_string())),
    ])
}
