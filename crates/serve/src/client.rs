//! A minimal blocking HTTP client for the server's own CLI and tests.
//!
//! The CI smoke drives the server entirely in-tree with this client
//! (`hlpower-serve post/metrics/top/stop`), so no external `curl` is
//! needed. Responses are read to completion: fixed `content-length`
//! bodies are taken exactly, `chunked` bodies are de-chunked (streamed
//! interim lines simply accumulate into the returned body). Response
//! headers are kept (lowercased) so callers can read the server's
//! `x-request-id` echo.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One response: status code, headers, and the (de-chunked) body text.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body (UTF-8; lossy for any invalid bytes).
    pub body: String,
}

impl Response {
    /// First value of header `name` (ASCII case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Connection, write, or malformed-response failures.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
    request_with(addr, method, path, body, &[])
}

/// [`request`] with extra request headers (e.g. `X-Request-Id`,
/// `Accept`).
///
/// # Errors
///
/// Connection, write, or malformed-response failures.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(&str, &str)],
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_nodelay(true)?;
    let body_bytes = body.unwrap_or("").as_bytes();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        body_bytes.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body_bytes)?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

fn read_line<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parses a status line + headers + body from `r`.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on malformed responses.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Response> {
    let status_line = read_line(r)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(format!("bad status line `{status_line}`")))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else { continue };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
        if name == "content-length" {
            content_length = value.parse().ok();
        } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
        headers.push((name, value.to_string()));
    }
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(r)?;
            let size = usize::from_str_radix(size_line.split(';').next().unwrap_or("").trim(), 16)
                .map_err(|_| bad(format!("bad chunk size `{size_line}`")))?;
            if size == 0 {
                // Trailers until the blank line (or EOF).
                while !read_line(r)?.is_empty() {}
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            r.read_exact(&mut body[start..])?;
            read_line(r)?;
        }
    } else if let Some(len) = content_length {
        body.resize(len, 0);
        r.read_exact(&mut body)?;
    } else {
        r.read_to_end(&mut body)?;
    }
    Ok(Response { status, headers, body: String::from_utf8_lossy(&body).into_owned() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fixed_and_chunked_responses() {
        let fixed = b"HTTP/1.1 200 OK\r\ncontent-length: 4\r\nx-request-id: 9\r\n\r\nbody";
        let resp = read_response(&mut BufReader::new(&fixed[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "body");
        assert_eq!(resp.header("X-Request-Id"), Some("9"));

        let chunked =
            b"HTTP/1.1 404 Not Found\r\ntransfer-encoding: chunked\r\n\r\n3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n";
        let resp = read_response(&mut BufReader::new(&chunked[..])).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body, "abcde");
    }
}
