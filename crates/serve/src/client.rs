//! A minimal blocking HTTP client for the server's own CLI and tests.
//!
//! The CI smoke drives the server entirely in-tree with this client
//! (`hlpower-serve post/metrics/stop`), so no external `curl` is needed.
//! Responses are read to completion: fixed `content-length` bodies are
//! taken exactly, `chunked` bodies are de-chunked (streamed interim
//! lines simply accumulate into the returned body).

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One response: status code and the (de-chunked) body text.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (UTF-8; lossy for any invalid bytes).
    pub body: String,
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Connection, write, or malformed-response failures.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_nodelay(true)?;
    let body_bytes = body.unwrap_or("").as_bytes();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body_bytes.len()
    )?;
    stream.write_all(body_bytes)?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

fn read_line<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parses a status line + headers + body from `r`.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on malformed responses.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Response> {
    let status_line = read_line(r)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(format!("bad status line `{status_line}`")))?;
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else { continue };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
        if name == "content-length" {
            content_length = value.parse().ok();
        } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
    }
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(r)?;
            let size = usize::from_str_radix(size_line.split(';').next().unwrap_or("").trim(), 16)
                .map_err(|_| bad(format!("bad chunk size `{size_line}`")))?;
            if size == 0 {
                // Trailers until the blank line (or EOF).
                while !read_line(r)?.is_empty() {}
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            r.read_exact(&mut body[start..])?;
            read_line(r)?;
        }
    } else if let Some(len) = content_length {
        body.resize(len, 0);
        r.read_exact(&mut body)?;
    } else {
        r.read_to_end(&mut body)?;
    }
    Ok(Response { status, body: String::from_utf8_lossy(&body).into_owned() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fixed_and_chunked_responses() {
        let fixed = b"HTTP/1.1 200 OK\r\ncontent-length: 4\r\n\r\nbody";
        let resp = read_response(&mut BufReader::new(&fixed[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "body");

        let chunked =
            b"HTTP/1.1 404 Not Found\r\ntransfer-encoding: chunked\r\n\r\n3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n";
        let resp = read_response(&mut BufReader::new(&chunked[..])).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body, "abcde");
    }
}
