//! A minimal, defensive HTTP/1.1 layer over `std::io` streams.
//!
//! Only what the estimation server needs: request parsing with hard size
//! limits (request line, header block, header count, body), both
//! `Content-Length` and `chunked` request bodies, and response writers
//! for fixed and chunked payloads. Every limit violation and every
//! malformed byte is a typed [`HttpError`] — the connection handler maps
//! them to structured 4xx responses; nothing in this module panics on
//! wire input.

use std::io::{self, BufRead, Read, Write};

/// Hard limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes in the request line (`GET /path HTTP/1.1`).
    pub request_line: usize,
    /// Maximum bytes across all header lines.
    pub header_bytes: usize,
    /// Maximum number of headers.
    pub header_count: usize,
    /// Maximum body bytes (after de-chunking).
    pub body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            request_line: 8 * 1024,
            header_bytes: 32 * 1024,
            header_count: 64,
            body_bytes: 16 * 1024 * 1024,
        }
    }
}

/// A failure while reading or parsing a request.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before a full request arrived
    /// (an empty read on a fresh connection is a clean close, not an
    /// error worth answering).
    Closed,
    /// A read timed out or failed at the socket level.
    Io(io::Error),
    /// A size limit was exceeded. `what` names the limit.
    TooLarge {
        /// Which limit (e.g. `"request line"`, `"body"`).
        what: &'static str,
        /// The configured maximum, in bytes or entries.
        limit: usize,
    },
    /// The bytes did not parse as HTTP. `what` says what was expected.
    Malformed {
        /// What was being parsed when it failed.
        what: String,
    },
    /// Syntactically valid HTTP the server does not speak (e.g. an
    /// unknown `Transfer-Encoding`).
    Unsupported {
        /// The unsupported construct.
        what: String,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed before a full request"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::TooLarge { what, limit } => write!(f, "{what} exceeds limit of {limit}"),
            HttpError::Malformed { what } => write!(f, "malformed request: {what}"),
            HttpError::Unsupported { what } => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl HttpError {
    /// The HTTP status this error should be answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed | HttpError::Io(_) => 400,
            HttpError::TooLarge { .. } => 413,
            HttpError::Malformed { .. } => 400,
            HttpError::Unsupported { .. } => 501,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as received.
    pub method: String,
    /// The request target (path plus optional query), as received.
    pub target: String,
    /// Protocol version as received (`HTTP/1.1` or `HTTP/1.0`).
    pub version: String,
    /// Header `(name, value)` pairs in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (de-chunked when the request was chunked).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (ASCII case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the connection may serve another request after this one,
    /// per HTTP/1.x semantics: HTTP/1.1 defaults to keep-alive unless
    /// the client sent `Connection: close`; HTTP/1.0 defaults to close
    /// unless the client asked for `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// Reads one line terminated by `\n`, rejecting lines longer than `max`.
/// The returned line has `\r\n` / `\n` stripped.
fn read_line<R: BufRead>(r: &mut R, max: usize, what: &'static str) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    // Cap the read at max + 1 so an oversized line is detected without
    // buffering an attacker-controlled amount of memory.
    let mut limited = r.take((max + 1) as u64);
    limited.read_until(b'\n', &mut buf).map_err(HttpError::Io)?;
    if buf.is_empty() {
        return Err(HttpError::Closed);
    }
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > max {
            HttpError::TooLarge { what, limit: max }
        } else {
            HttpError::Closed
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed { what: format!("{what}: not UTF-8") })
}

/// Reads and parses one request from `r`, enforcing `limits`.
///
/// # Errors
///
/// [`HttpError::Closed`] when the peer hangs up before any byte,
/// otherwise the specific limit/parse failure.
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Request, HttpError> {
    let line = read_line(r, limits.request_line, "request line")?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed {
                what: format!("request line `{}`", truncate(&line, 120)),
            })
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Unsupported { what: format!("protocol version `{version}`") });
    }
    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = read_line(r, limits.header_bytes, "header line")?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > limits.header_bytes {
            return Err(HttpError::TooLarge { what: "header block", limit: limits.header_bytes });
        }
        if headers.len() >= limits.header_count {
            return Err(HttpError::TooLarge { what: "header count", limit: limits.header_count });
        }
        let (name, value) = line.split_once(':').ok_or_else(|| HttpError::Malformed {
            what: format!("header line `{}`", truncate(&line, 120)),
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let req = Request {
        method: method.to_string(),
        target: target.to_string(),
        version: version.to_string(),
        headers,
        body: Vec::new(),
    };
    let body = read_body(r, &req, limits)?;
    Ok(Request { body, ..req })
}

fn read_body<R: BufRead>(r: &mut R, req: &Request, limits: &Limits) -> Result<Vec<u8>, HttpError> {
    if let Some(te) = req.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("chunked") {
            return Err(HttpError::Unsupported { what: format!("transfer-encoding `{te}`") });
        }
        return read_chunked(r, limits);
    }
    let len = match req.header("content-length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed { what: format!("content-length `{v}`") })?,
    };
    if len > limits.body_bytes {
        return Err(HttpError::TooLarge { what: "body", limit: limits.body_bytes });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::Malformed { what: format!("body shorter than content-length {len}") }
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(body)
}

/// Decodes a `chunked` body: hex-size lines, data, terminating `0` chunk,
/// then (ignored) trailers up to the final blank line.
fn read_chunked<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        let line = read_line(r, 1024, "chunk size")?;
        // Chunk extensions (`;ext=val`) are allowed and ignored.
        let size_hex = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16).map_err(|_| HttpError::Malformed {
            what: format!("chunk size `{}`", truncate(&line, 40)),
        })?;
        if size == 0 {
            // Trailers until the blank line.
            loop {
                if read_line(r, limits.header_bytes, "trailer")?.is_empty() {
                    break;
                }
            }
            return Ok(body);
        }
        if body.len() + size > limits.body_bytes {
            return Err(HttpError::TooLarge { what: "body", limit: limits.body_bytes });
        }
        let start = body.len();
        body.resize(start + size, 0);
        r.read_exact(&mut body[start..]).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Malformed { what: "chunk shorter than its size".into() }
            } else {
                HttpError::Io(e)
            }
        })?;
        let crlf = read_line(r, 8, "chunk terminator")?;
        if !crlf.is_empty() {
            return Err(HttpError::Malformed { what: "missing CRLF after chunk".into() });
        }
    }
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        _ => "Unknown",
    }
}

fn write_extra_headers<W: Write>(w: &mut W, extra_headers: &[(&str, &str)]) -> io::Result<()> {
    for (name, value) in extra_headers {
        // Strip CR/LF so a hostile echoed value (e.g. X-Request-Id)
        // cannot split the response into injected headers.
        let clean: String = value.chars().filter(|c| *c != '\r' && *c != '\n').collect();
        write!(w, "{name}: {clean}\r\n")?;
    }
    Ok(())
}

/// Writes a complete fixed-length response and flushes it.
///
/// `keep_alive` selects the `connection:` header; `extra_headers` are
/// emitted verbatim after the standard ones (values are sanitized of
/// CR/LF).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    write_extra_headers(w, extra_headers)?;
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A `Transfer-Encoding: chunked` response in progress; used for streamed
/// confidence-interval updates. Call [`ChunkedWriter::chunk`] per payload
/// and [`ChunkedWriter::finish`] to terminate the stream.
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the status line and headers and enters chunked mode.
    /// `keep_alive` and `extra_headers` behave as in [`write_response`].
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn begin(
        mut w: W,
        status: u16,
        content_type: &str,
        keep_alive: bool,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: {}\r\n",
            reason(status),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        write_extra_headers(&mut w, extra_headers)?;
        w.write_all(b"\r\n")?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Writes one non-empty chunk and flushes (each update must reach the
    /// client promptly, not sit in a buffer until the run ends).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Writes the terminating zero chunk.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_simple_post() {
        let req =
            parse(b"POST /estimate HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/estimate");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn keep_alive_follows_http1x_defaults() {
        let k = |bytes: &[u8]| parse(bytes).unwrap().keep_alive();
        assert!(k(b"GET / HTTP/1.1\r\n\r\n"), "1.1 defaults to keep-alive");
        assert!(!k(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!k(b"GET / HTTP/1.0\r\n\r\n"), "1.0 defaults to close");
        assert!(k(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
    }

    #[test]
    fn parses_a_chunked_body() {
        let req = parse(
            b"POST /e HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nhell\r\n1;ext=1\r\no\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn missing_body_is_empty() {
        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
        assert_eq!(req.method, "GET");
    }

    #[test]
    fn limits_are_enforced() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10 * 1024));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(HttpError::TooLarge { what: "request line", .. })
        ));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..100).map(|i| format!("h{i}: v\r\n")).collect::<String>()
        );
        assert!(matches!(
            parse(many_headers.as_bytes()),
            Err(HttpError::TooLarge { what: "header count", .. })
        ));
        let big_body = b"POST / HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n";
        assert!(matches!(parse(big_body), Err(HttpError::TooLarge { what: "body", .. })));
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::Malformed { .. })));
        assert!(matches!(parse(b"GET / HTTP/2.0\r\n\r\n"), Err(HttpError::Unsupported { .. })));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed { .. })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n"),
            Err(HttpError::Malformed { .. })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"),
            Err(HttpError::Malformed { .. })
        ));
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn responses_round_trip() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false, &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        let mut cw = ChunkedWriter::begin(&mut out, 200, "application/json", false, &[]).unwrap();
        cw.chunk(b"{\"a\":1}\n").unwrap();
        cw.chunk(b"{\"b\":2}\n").unwrap();
        cw.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn responses_carry_keep_alive_and_sanitized_extra_headers() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "application/json",
            b"{}",
            true,
            &[("x-request-id", "abc\r\nevil: 1")],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-request-id: abcevil: 1\r\n"), "CR/LF stripped: {text}");
        assert!(!text.contains("\r\nevil:"), "no header injection: {text}");

        let mut out = Vec::new();
        ChunkedWriter::begin(&mut out, 200, "application/json", true, &[("x-request-id", "7")])
            .unwrap()
            .finish()
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-request-id: 7\r\n"));
    }
}
