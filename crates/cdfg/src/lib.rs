//! Control-data-flow-graph substrate for behavioral-level power work.
//!
//! Implements the survey's §III-C..§III-F pipeline: CDFG construction and
//! word-level profiling, behavioral transformations (Horner evaluation,
//! strength reduction, constant-multiplication to shift-add), operation
//! scheduling (ASAP/ALAP/resource-constrained list scheduling and the
//! Monteiro power-management scheduler), compatibility-graph resource
//! allocation with the Raghunathan–Jha activity-aware weights, the
//! Chang–Pedram multiple-supply-voltage scheduler, and an RTL architecture
//! power model that breaks switched capacitance down by component class
//! (execution units / registers+clock / control logic / interconnect — the
//! rows of the survey's Table I).
//!
//! # Example
//!
//! ```
//! use hlpower_cdfg::{Cdfg, Delays, schedule};
//!
//! // y = a*b + c
//! let mut g = Cdfg::new(16);
//! let a = g.input("a");
//! let b = g.input("b");
//! let c = g.input("c");
//! let m = g.mul(a, b);
//! let s = g.add(m, c);
//! g.output("y", s);
//! let sched = schedule::asap(&g, &Delays::default());
//! assert_eq!(sched.makespan, 3); // 2-step multiply then 1-step add
//! ```

#![warn(missing_docs)]

pub mod allocate;
mod graph;
pub mod multivolt;
pub mod profile;
pub mod rtl;
pub mod schedule;
pub mod transform;

pub use graph::{Cdfg, CdfgError, OpId, OpKind};
pub use schedule::{Delays, Schedule};
