//! Operation scheduling (survey §III-D): ASAP, ALAP, resource-constrained
//! list scheduling, and the Monteiro power-management scheduler that
//! serializes multiplexer control ahead of the guarded branches so that
//! mutually exclusive units can be shut down.

use std::collections::{HashMap, HashSet};

use crate::graph::{Cdfg, OpId, OpKind};

/// Per-operation-kind delays, in control steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delays {
    /// Adder delay.
    pub add: u32,
    /// Subtractor delay.
    pub sub: u32,
    /// Multiplier delay.
    pub mul: u32,
    /// Constant shift delay (wiring; usually 0 or 1).
    pub shl: u32,
    /// Negation delay.
    pub neg: u32,
    /// Multiplexer delay.
    pub mux: u32,
    /// Comparator delay.
    pub lt: u32,
}

impl Delays {
    /// All operations take one step (the op-level critical-path metric of
    /// Figs. 4/5).
    pub fn unit() -> Self {
        Delays { add: 1, sub: 1, mul: 1, shl: 1, neg: 1, mux: 1, lt: 1 }
    }

    /// The delay of an operation kind (inputs and constants are free).
    pub fn of(&self, kind: &OpKind) -> u32 {
        match kind {
            OpKind::Input(_) | OpKind::Const(_) => 0,
            OpKind::Add => self.add,
            OpKind::Sub => self.sub,
            OpKind::Mul => self.mul,
            OpKind::Shl(_) => self.shl,
            OpKind::Neg => self.neg,
            OpKind::Mux => self.mux,
            OpKind::Lt => self.lt,
        }
    }
}

impl Default for Delays {
    /// Multipliers take two steps; everything else one, shifts zero
    /// (wiring).
    fn default() -> Self {
        Delays { add: 1, sub: 1, mul: 2, shl: 0, neg: 1, mux: 1, lt: 1 }
    }
}

/// A control-step assignment for every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Start step of each node (indexed by [`OpId::index`]).
    pub start: Vec<u32>,
    /// Total schedule length in steps.
    pub makespan: u32,
}

impl Schedule {
    /// The start step of an operation.
    pub fn start_of(&self, op: OpId) -> u32 {
        self.start[op.index()]
    }

    /// The finish step (exclusive) of an operation under `delays`.
    pub fn finish_of(&self, g: &Cdfg, delays: &Delays, op: OpId) -> u32 {
        self.start[op.index()] + delays.of(g.kind(op))
    }
}

/// As-soon-as-possible schedule.
pub fn asap(g: &Cdfg, delays: &Delays) -> Schedule {
    let mut start = vec![0u32; g.node_count()];
    let mut makespan = 0;
    // Creation order is topological for value edges; precedence edges may
    // point forward or backward in id order, so iterate to a fixed point
    // (precedence chains are short in practice).
    loop {
        let mut changed = false;
        for id in g.op_ids() {
            let mut s = 0u32;
            for &a in g.args(id) {
                s = s.max(start[a.index()] + delays.of(g.kind(a)));
            }
            for &(before, after) in g.precedence_edges() {
                if after == id {
                    s = s.max(start[before.index()] + delays.of(g.kind(before)));
                }
            }
            if s > start[id.index()] {
                start[id.index()] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for id in g.op_ids() {
        makespan = makespan.max(start[id.index()] + delays.of(g.kind(id)));
    }
    Schedule { start, makespan }
}

/// As-late-as-possible schedule meeting `deadline`, or `None` if the
/// critical path exceeds it.
pub fn alap(g: &Cdfg, delays: &Delays, deadline: u32) -> Option<Schedule> {
    let asap_sched = asap(g, delays);
    if asap_sched.makespan > deadline {
        return None;
    }
    let users = g.users();
    let mut start = vec![0u32; g.node_count()];
    for id in g.op_ids() {
        start[id.index()] = deadline - delays.of(g.kind(id));
    }
    loop {
        let mut changed = false;
        for id in g.op_ids().collect::<Vec<_>>().into_iter().rev() {
            let mut latest = deadline - delays.of(g.kind(id));
            for &u in &users[id.index()] {
                latest = latest.min(start[u.index()].saturating_sub(delays.of(g.kind(id))));
            }
            for &(before, after) in g.precedence_edges() {
                if before == id {
                    latest = latest.min(start[after.index()].saturating_sub(delays.of(g.kind(id))));
                }
            }
            if latest < start[id.index()] {
                start[id.index()] = latest;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Some(Schedule { start, makespan: deadline })
}

/// Resource-constrained list scheduling. `limits` maps operation mnemonics
/// (see [`OpKind::mnemonic`]) to the number of available units; kinds
/// absent from the map are unconstrained. Priority is ALAP urgency
/// (smaller slack first).
pub fn list_schedule(g: &Cdfg, delays: &Delays, limits: &HashMap<&str, usize>) -> Schedule {
    let asap_sched = asap(g, delays);
    // Urgency from an ALAP at the unconstrained makespan.
    let alap_sched =
        alap(g, delays, asap_sched.makespan).expect("asap makespan is always feasible");
    let users = g.users();
    let mut remaining_preds: Vec<usize> = g
        .op_ids()
        .map(|id| {
            g.args(id).len()
                + g.precedence_edges().iter().filter(|&&(_, after)| after == id).count()
        })
        .collect();
    let mut start = vec![u32::MAX; g.node_count()];
    let mut finished_at = vec![0u32; g.node_count()];
    // Inputs/constants are ready at step 0 with zero delay.
    let mut ready: Vec<OpId> = g.op_ids().filter(|&id| remaining_preds[id.index()] == 0).collect();
    let mut scheduled = 0usize;
    let total = g.node_count();
    let mut step = 0u32;
    // Track busy units: (kind mnemonic, free_at_step).
    let mut running: Vec<(OpId, u32)> = Vec::new();
    let mut earliest: Vec<u32> = vec![0; g.node_count()];

    while scheduled < total {
        // Retire operations finishing at or before `step`.
        running.retain(|&(_, fin)| fin > step);
        let mut used_now: HashMap<&str, usize> = HashMap::new();
        for &(op, _) in &running {
            *used_now.entry(g.kind(op).mnemonic()).or_insert(0) += 1;
        }
        // Schedule ready ops whose data is available, respecting limits.
        // Zero-delay producers (inputs, constants, shifts) can enable new
        // work within the same step, so iterate to a fixed point.
        loop {
            ready.sort_by_key(|&id| alap_sched.start_of(id));
            let mut next_ready = Vec::new();
            let mut progressed = false;
            for id in ready.drain(..) {
                if earliest[id.index()] > step {
                    next_ready.push(id);
                    continue;
                }
                let mnem = g.kind(id).mnemonic();
                let limit = limits.get(mnem).copied();
                let in_use = used_now.get(mnem).copied().unwrap_or(0);
                let allowed = match limit {
                    Some(l) => in_use < l,
                    None => true,
                };
                if g.kind(id).is_operation() && !allowed {
                    next_ready.push(id);
                    continue;
                }
                // Schedule now.
                start[id.index()] = step;
                let fin = step + delays.of(g.kind(id));
                finished_at[id.index()] = fin;
                if g.kind(id).is_operation() && delays.of(g.kind(id)) > 0 {
                    running.push((id, fin));
                    *used_now.entry(mnem).or_insert(0) += 1;
                }
                scheduled += 1;
                progressed = true;
                for &u in &users[id.index()] {
                    remaining_preds[u.index()] -= 1;
                    earliest[u.index()] = earliest[u.index()].max(fin);
                    if remaining_preds[u.index()] == 0 {
                        next_ready.push(u);
                    }
                }
                for &(before, after) in g.precedence_edges() {
                    if before == id {
                        remaining_preds[after.index()] -= 1;
                        earliest[after.index()] = earliest[after.index()].max(fin);
                        if remaining_preds[after.index()] == 0 {
                            next_ready.push(after);
                        }
                    }
                }
            }
            ready = next_ready;
            if !progressed {
                break;
            }
        }
        step += 1;
        assert!(step < 100_000, "list scheduler failed to make progress");
    }
    let makespan = finished_at.iter().copied().max().unwrap_or(0);
    Schedule { start, makespan }
}

/// Maximum number of concurrently executing units of each kind under a
/// schedule — the functional-unit requirement of the schedule.
pub fn resource_usage(g: &Cdfg, delays: &Delays, sched: &Schedule) -> HashMap<&'static str, usize> {
    let mut usage: HashMap<&'static str, usize> = HashMap::new();
    for step in 0..sched.makespan {
        let mut now: HashMap<&'static str, usize> = HashMap::new();
        for id in g.op_ids() {
            let k = g.kind(id);
            if !k.is_operation() || delays.of(k) == 0 {
                continue;
            }
            let s = sched.start_of(id);
            if s <= step && step < s + delays.of(k) {
                *now.entry(k.mnemonic()).or_insert(0) += 1;
            }
        }
        for (k, v) in now {
            let e = usage.entry(k).or_insert(0);
            *e = (*e).max(v);
        }
    }
    usage
}

/// Result of the Monteiro power-management scheduling pass.
#[derive(Debug, Clone)]
pub struct PowerManagedSchedule {
    /// The graph augmented with the control-before-branches precedence
    /// edges.
    pub graph: Cdfg,
    /// The final schedule.
    pub schedule: Schedule,
    /// Multiplexers for which shutdown of the unselected branch is
    /// guaranteed (control resolves before either branch starts).
    pub manageable_muxes: Vec<OpId>,
    /// For each manageable mux: the exclusive fan-in operations of its 0
    /// and 1 branches (candidates for shutdown).
    pub branch_ops: HashMap<OpId, (Vec<OpId>, Vec<OpId>)>,
}

impl PowerManagedSchedule {
    /// Expected fraction of branch operations disabled per evaluation,
    /// assuming the given probability that each manageable mux selects its
    /// "1" branch. Each op counts once even if guarded by several muxes.
    pub fn expected_disabled_ops(&self, sel_prob: f64) -> f64 {
        let mut disabled = 0.0;
        let mut counted: HashSet<OpId> = HashSet::new();
        for (n0, n1) in self.branch_ops.values() {
            for &op in n0 {
                if counted.insert(op) {
                    disabled += sel_prob; // skipped when sel = 1
                }
            }
            for &op in n1 {
                if counted.insert(op) {
                    disabled += 1.0 - sel_prob;
                }
            }
        }
        let total = self.graph.operation_count() as f64;
        if total == 0.0 {
            0.0
        } else {
            disabled / total
        }
    }
}

/// The Monteiro scheduling-for-power-management pass (§III-D, reference 63).
///
/// Multiplexers are visited bottom-up. For each, the exclusive transitive
/// fan-ins `N0`/`N1` of the data inputs and the fan-in `NC` of the control
/// input are computed; shared nodes are discarded. If serializing `NC`
/// before `N0 ∪ N1` keeps the ASAP makespan within `deadline` (defaults to
/// the unconstrained makespan when `None`), precedence edges are committed
/// and the mux is power manageable.
pub fn power_managed_schedule(
    g: &Cdfg,
    delays: &Delays,
    deadline: Option<u32>,
) -> PowerManagedSchedule {
    let base = asap(g, delays);
    let deadline = deadline.unwrap_or(base.makespan);
    let mut work = g.clone();
    let mut manageable = Vec::new();
    let mut branch_ops = HashMap::new();
    // Bottom-up: muxes in reverse creation order (closer to outputs first).
    let muxes: Vec<OpId> = g
        .op_ids()
        .filter(|&id| matches!(g.kind(id), OpKind::Mux))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    for mx in muxes {
        let args = work.args(mx).to_vec();
        let (sel, a, b) = (args[0], args[1], args[2]);
        let mut n0: HashSet<OpId> = work.transitive_fanin(a);
        n0.insert(a);
        let mut n1: HashSet<OpId> = work.transitive_fanin(b);
        n1.insert(b);
        let mut nc: HashSet<OpId> = work.transitive_fanin(sel);
        nc.insert(sel);
        // Nodes in both branches are needed regardless: drop them.
        let shared: HashSet<OpId> = n0.intersection(&n1).copied().collect();
        n0.retain(|x| !shared.contains(x) && work.kind(*x).is_operation());
        n1.retain(|x| !shared.contains(x) && work.kind(*x).is_operation());
        // Branch nodes inside the control cone (or vice versa) cannot be
        // serialized after it.
        if n0.iter().any(|x| nc.contains(x)) || n1.iter().any(|x| nc.contains(x)) {
            continue;
        }
        if n0.is_empty() && n1.is_empty() {
            continue;
        }
        // Tentatively add precedence: control's terminal node (sel) before
        // every top node of the exclusive branches.
        let mut candidate = work.clone();
        for set in [&n0, &n1] {
            for &op in set.iter() {
                // "Top" nodes: no argument inside the same exclusive set.
                let is_top = candidate.args(op).iter().all(|arg| !set.contains(arg));
                if is_top {
                    candidate.add_precedence(sel, op);
                }
            }
        }
        let s = asap(&candidate, delays);
        if s.makespan <= deadline {
            work = candidate;
            manageable.push(mx);
            let mut v0: Vec<OpId> = n0.into_iter().collect();
            let mut v1: Vec<OpId> = n1.into_iter().collect();
            v0.sort();
            v1.sort();
            branch_ops.insert(mx, (v0, v1));
        }
    }
    let schedule = asap(&work, delays);
    PowerManagedSchedule { graph: work, schedule, manageable_muxes: manageable, branch_ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> Cdfg {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let m = g.mul(a, b);
        let s = g.add(m, c);
        g.output("y", s);
        g
    }

    #[test]
    fn asap_respects_delays() {
        let g = mac();
        let s = asap(&g, &Delays::default());
        assert_eq!(s.makespan, 3); // mul (2) + add (1)
        let s2 = asap(&g, &Delays::unit());
        assert_eq!(s2.makespan, 2);
    }

    #[test]
    fn alap_pushes_late() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let s1 = g.add(a, b); // could run at step 0
        let m = g.mul(a, b);
        let s2 = g.add(s1, m);
        g.output("y", s2);
        let d = Delays::default();
        let sched = alap(&g, &d, 3).unwrap();
        // s1 only needed at step 2 (s2 starts at 2): ALAP start = 1.
        assert_eq!(sched.start_of(s1), 1);
        assert!(alap(&g, &d, 2).is_none(), "deadline below critical path");
    }

    #[test]
    fn list_schedule_respects_limits() {
        // Four independent multiplies, one multiplier: serialized.
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let ms: Vec<OpId> = (0..4).map(|_| g.mul(a, b)).collect();
        let mut acc = ms[0];
        for &m in &ms[1..] {
            acc = g.add(acc, m);
        }
        g.output("y", acc);
        let d = Delays::default();
        let unconstrained = list_schedule(&g, &d, &HashMap::new());
        let mut limits = HashMap::new();
        limits.insert("mul", 1usize);
        let constrained = list_schedule(&g, &d, &limits);
        assert!(constrained.makespan > unconstrained.makespan);
        let usage = resource_usage(&g, &d, &constrained);
        assert_eq!(usage.get("mul"), Some(&1));
        let u2 = resource_usage(&g, &d, &unconstrained);
        assert_eq!(u2.get("mul"), Some(&4));
    }

    #[test]
    fn list_schedule_matches_asap_without_limits() {
        let g = mac();
        let d = Delays::default();
        let ls = list_schedule(&g, &d, &HashMap::new());
        let a = asap(&g, &d);
        assert_eq!(ls.makespan, a.makespan);
    }

    /// A CDFG where an expensive branch can be shut down: y = sel ? (a*b)
    /// : (c+d), with the control `sel = e < f` cheap to compute early.
    fn guarded() -> (Cdfg, OpId) {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let d = g.input("d");
        let e = g.input("e");
        let f = g.input("f");
        let sel = g.lt(e, f);
        let t0 = g.add(c, d);
        let t1 = g.mul(a, b);
        let y = g.mux(sel, t0, t1);
        g.output("y", y);
        (g, y)
    }

    #[test]
    fn monteiro_finds_manageable_mux() {
        let (g, y) = guarded();
        // Allow one extra step so control can resolve first.
        let d = Delays::default();
        let base = asap(&g, &d).makespan;
        let pm = power_managed_schedule(&g, &d, Some(base + 1));
        assert_eq!(pm.manageable_muxes, vec![y]);
        let (n0, n1) = &pm.branch_ops[&y];
        assert_eq!(n0.len(), 1, "add branch");
        assert_eq!(n1.len(), 1, "mul branch");
        // Precedence edges enforce control-first.
        let sel_finish = pm.schedule.finish_of(&pm.graph, &d, g.op_ids().nth(6).unwrap());
        for ops in [n0, n1] {
            for &op in ops.iter() {
                assert!(pm.schedule.start_of(op) >= sel_finish);
            }
        }
        assert!(pm.expected_disabled_ops(0.5) > 0.0);
    }

    #[test]
    fn monteiro_rejects_when_no_slack() {
        let (g, _) = guarded();
        let d = Delays::default();
        // With a deadline equal to the unconstrained makespan, serializing
        // the comparator (1 step) before the 2-step multiply exceeds it.
        let pm = power_managed_schedule(&g, &d, None);
        assert!(pm.manageable_muxes.is_empty());
    }

    #[test]
    fn shared_subexpressions_not_shut_down() {
        // Both branches use m = a*b: m must not appear in either branch
        // set.
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let sel = g.lt(a, c);
        let m = g.mul(a, b);
        let t0 = g.add(m, c);
        let t1 = g.sub(m, c);
        let y = g.mux(sel, t0, t1);
        g.output("y", y);
        let d = Delays::default();
        let pm = power_managed_schedule(&g, &d, Some(10));
        if let Some((n0, n1)) = pm.branch_ops.get(&y) {
            assert!(!n0.contains(&m) && !n1.contains(&m));
        }
    }
}
