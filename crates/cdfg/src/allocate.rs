//! Resource allocation and binding (survey §III-E).
//!
//! Implements the Raghunathan–Jha compatibility-graph allocation: nodes are
//! operations (for functional-unit binding) or values (for register
//! binding); edges connect compatible pairs; edge weights combine a
//! capacitance saving `Wc` with a profiled switching-activity term `Ws` as
//! `W = Wc * (1 - Ws)`, and pairs are merged greedily by descending `W`.
//! The activity-blind baseline (merge by `Wc` alone, i.e. first-fit) is
//! provided for the §III-E savings comparison.

use std::collections::HashMap;

use crate::graph::{Cdfg, OpId, OpKind};
use crate::profile::Profile;
use crate::rtl::RtlCosts;
use crate::schedule::{Delays, Schedule};

/// Deterministic per-pair jitter used to break capacitance-only ties: a
/// capacitance-only binder has no reason to prefer one compatible pair
/// over another, so its tie order is arbitrary (here: a hash of the ids),
/// as in a left-edge or first-fit binder.
fn tie_jitter(a: OpId, b: OpId) -> f64 {
    let mut x = (a.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (b.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    (x % 1024) as f64 / 1024.0
}

/// Allocation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Raghunathan–Jha: `W = Wc * (1 - Ws)` with profiled switching.
    ActivityAware,
    /// Capacitance-only (activity-blind first-fit) baseline.
    CapacitanceOnly,
}

/// One bound functional unit: the operations time-multiplexed onto it.
#[derive(Debug, Clone)]
pub struct BoundUnit {
    /// Operations mapped to this unit, sorted by start step.
    pub ops: Vec<OpId>,
    /// A representative kind (all member ops share a mnemonic).
    pub kind_sample: OpKind,
}

/// One allocated register: the values time-multiplexed onto it.
#[derive(Debug, Clone)]
pub struct BoundRegister {
    /// Producing nodes whose values live in this register, sorted by write
    /// step.
    pub values: Vec<OpId>,
}

/// A complete binding of operations to units and values to registers.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Functional units.
    pub units: Vec<BoundUnit>,
    /// Registers.
    pub registers: Vec<BoundRegister>,
    unit_of: HashMap<OpId, usize>,
    reg_of: HashMap<OpId, usize>,
}

impl Binding {
    /// The unit an operation is bound to.
    pub fn unit_of(&self, op: OpId) -> Option<usize> {
        self.unit_of.get(&op).copied()
    }

    /// The register a value is stored in (if it needed storage).
    pub fn register_of(&self, op: OpId) -> Option<usize> {
        self.reg_of.get(&op).copied()
    }

    /// Number of functional units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Number of registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Units of a given mnemonic.
    pub fn units_of_kind(&self, mnemonic: &str) -> usize {
        self.units.iter().filter(|u| u.kind_sample.mnemonic() == mnemonic).count()
    }
}

/// Execution interval of an operation under a schedule.
fn interval(g: &Cdfg, delays: &Delays, sched: &Schedule, op: OpId) -> (u32, u32) {
    let s = sched.start_of(op);
    (s, s + delays.of(g.kind(op)).max(1))
}

/// Value lifetime: from the producer's finish to its last consumer's start
/// (inclusive). Returns `None` when the value never needs storage.
fn lifetime(
    g: &Cdfg,
    delays: &Delays,
    sched: &Schedule,
    users: &[Vec<OpId>],
    op: OpId,
) -> Option<(u32, u32)> {
    let finish = sched.start_of(op) + delays.of(g.kind(op));
    let last_use = users[op.index()].iter().map(|u| sched.start_of(*u)).max();
    let is_output = g.outputs().iter().any(|&(_, o)| o == op);
    match (last_use, is_output) {
        (Some(lu), _) if lu > finish || is_output => Some((finish, lu.max(finish))),
        (_, true) => Some((finish, finish)),
        (Some(_), false) => None, // consumed immediately, stays on wires
        (None, false) => None,
    }
}

fn overlaps(a: (u32, u32), b: (u32, u32)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// Greedy weighted cluster merge. `items` carry their exclusion intervals;
/// `weight(a, b)` scores a pair (higher merges first; `None` =
/// incompatible kinds).
fn cluster<I: Copy>(
    items: &[(I, (u32, u32))],
    weight: impl Fn(I, I) -> Option<f64>,
) -> Vec<Vec<usize>> {
    let n = items.len();
    let mut cluster_of: Vec<usize> = (0..n).collect();
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if overlaps(items[i].1, items[j].1) {
                continue;
            }
            if let Some(w) = weight(items[i].0, items[j].0) {
                pairs.push((w, i, j));
            }
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    for (_, i, j) in pairs {
        let (ci, cj) = (cluster_of[i], cluster_of[j]);
        if ci == cj {
            continue;
        }
        // Compatible if every cross-pair is interval-disjoint and
        // kind-compatible.
        let ok = clusters[ci].iter().all(|&x| {
            clusters[cj].iter().all(|&y| {
                !overlaps(items[x].1, items[y].1) && weight(items[x].0, items[y].0).is_some()
            })
        });
        if !ok {
            continue;
        }
        let moved = std::mem::take(&mut clusters[cj]);
        for &m in &moved {
            cluster_of[m] = ci;
        }
        clusters[ci].extend(moved);
    }
    clusters.into_iter().filter(|c| !c.is_empty()).collect()
}

/// Allocates functional units and registers for a scheduled CDFG.
///
/// `profile` must have been collected with pairwise statistics for all
/// operation pairs (see [`allocation_pairs`]); missing pair statistics are
/// treated as maximally switching (weight 0), which only affects merge
/// order, never correctness.
pub fn allocate(
    g: &Cdfg,
    delays: &Delays,
    sched: &Schedule,
    profile: &Profile,
    costs: &RtlCosts,
    strategy: AllocationStrategy,
) -> Binding {
    let users = g.users();
    // ---- Functional units ----
    let ops: Vec<(OpId, (u32, u32))> = g
        .op_ids()
        .filter(|&id| g.kind(id).is_operation() && !matches!(g.kind(id), OpKind::Shl(_)))
        .map(|id| (id, interval(g, delays, sched, id)))
        .collect();
    let fu_weight = |a: OpId, b: OpId| -> Option<f64> {
        if g.kind(a).mnemonic() != g.kind(b).mnemonic() {
            return None;
        }
        let wc = costs.op_cap_ff(g.kind(a), g.width());
        match strategy {
            AllocationStrategy::CapacitanceOnly => Some(wc * (1.0 + 1e-3 * tie_jitter(a, b))),
            AllocationStrategy::ActivityAware => {
                let ws = profile.pairwise_switching(a, b).unwrap_or(1.0);
                Some(wc * (1.0 - ws))
            }
        }
    };
    let fu_clusters = cluster(&ops, fu_weight);
    let mut units = Vec::new();
    let mut unit_of = HashMap::new();
    for c in fu_clusters {
        let mut members: Vec<OpId> = c.iter().map(|&i| ops[i].0).collect();
        members.sort_by_key(|&op| sched.start_of(op));
        for &m in &members {
            unit_of.insert(m, units.len());
        }
        let kind_sample = g.kind(members[0]).clone();
        units.push(BoundUnit { ops: members, kind_sample });
    }

    // ---- Registers ----
    let values: Vec<(OpId, (u32, u32))> = g
        .op_ids()
        .filter_map(|id| lifetime(g, delays, sched, &users, id).map(|lt| (id, lt)))
        .collect();
    let reg_weight = |a: OpId, b: OpId| -> Option<f64> {
        let wc = costs.reg_cap_ff_per_bit * g.width() as f64;
        match strategy {
            AllocationStrategy::CapacitanceOnly => Some(wc * (1.0 + 1e-3 * tie_jitter(a, b))),
            AllocationStrategy::ActivityAware => {
                let ws = profile.pairwise_switching(a, b).unwrap_or(1.0);
                Some(wc * (1.0 - ws))
            }
        }
    };
    let reg_clusters = cluster(&values, reg_weight);
    let mut registers = Vec::new();
    let mut reg_of = HashMap::new();
    for c in reg_clusters {
        let mut members: Vec<OpId> = c.iter().map(|&i| values[i].0).collect();
        members.sort_by_key(|&op| sched.start_of(op) + delays.of(g.kind(op)));
        for &m in &members {
            reg_of.insert(m, registers.len());
        }
        registers.push(BoundRegister { values: members });
    }

    Binding { units, registers, unit_of, reg_of }
}

/// The pair list a profile must carry for allocation: all same-mnemonic
/// operation pairs plus all storable-value pairs.
pub fn allocation_pairs(g: &Cdfg) -> Vec<(OpId, OpId)> {
    let ids: Vec<OpId> = g.op_ids().collect();
    let mut pairs = Vec::new();
    for i in 0..ids.len() {
        for j in i + 1..ids.len() {
            pairs.push((ids[i], ids[j]));
        }
    }
    pairs
}

/// Switched capacitance attributable to the binding, per evaluation:
/// at each unit/register, consecutive residents induce switching
/// proportional to the profiled bit difference between their values.
pub fn binding_switched_cap_ff(
    g: &Cdfg,
    binding: &Binding,
    profile: &Profile,
    costs: &RtlCosts,
) -> f64 {
    let mut total = 0.0;
    for unit in &binding.units {
        let cap = costs.op_cap_ff(&unit.kind_sample, g.width());
        for pair in unit.ops.windows(2) {
            let ws = profile.pairwise_switching(pair[0], pair[1]).unwrap_or(0.5);
            total += cap * ws * 2.0;
        }
        // First resident switches from whatever was there: charge half.
        total += cap * 0.5;
    }
    for reg in &binding.registers {
        let cap = costs.reg_cap_ff_per_bit * g.width() as f64;
        for pair in reg.values.windows(2) {
            let ws = profile.pairwise_switching(pair[0], pair[1]).unwrap_or(0.5);
            total += cap * ws * 2.0;
        }
        total += cap * 0.5;
    }
    total
}

/// Operand reordering (Musoll-Cortadella, §III-D): for the commutative
/// operations bound to each functional unit, choose per-operation operand
/// orientations so that consecutive executions present similar values to
/// the same input port. Returns the chosen orientations (true = swap) and
/// the port switching cost before/after, in profiled mean-Hamming units.
pub fn reorder_operands(
    g: &Cdfg,
    binding: &Binding,
    profile: &Profile,
) -> (HashMap<OpId, bool>, f64, f64) {
    let commutative = |op: OpId| matches!(g.kind(op), OpKind::Add | OpKind::Mul);
    let pair_cost = |a: OpId, b: OpId| {
        if a == b {
            0.0 // the same value on the same port never switches
        } else {
            profile.pairwise_switching(a, b).unwrap_or(0.5)
        }
    };
    let mut orientation: HashMap<OpId, bool> = HashMap::new();
    let mut before = 0.0;
    let mut after = 0.0;
    for unit in &binding.units {
        let mut prev_ports: Option<(OpId, OpId)> = None;
        for &op in &unit.ops {
            let args = g.args(op);
            if args.len() != 2 {
                prev_ports = None;
                continue;
            }
            let (x, y) = (args[0], args[1]);
            if let Some((p0, p1)) = prev_ports {
                let keep = pair_cost(p0, x) + pair_cost(p1, y);
                before += keep;
                if commutative(op) {
                    let swap = pair_cost(p0, y) + pair_cost(p1, x);
                    if swap < keep {
                        orientation.insert(op, true);
                        after += swap;
                        prev_ports = Some((y, x));
                        continue;
                    }
                }
                after += keep;
            }
            orientation.entry(op).or_insert(false);
            prev_ports = Some(if orientation[&op] { (y, x) } else { (x, y) });
        }
    }
    (orientation, before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{correlated_stream, profile};
    use crate::schedule::{self};

    /// Several parallel MACs sharing a schedule with limited resources.
    fn test_graph() -> Cdfg {
        let mut g = Cdfg::new(12);
        let xs: Vec<OpId> = (0..4).map(|i| g.input(format!("x{i}"))).collect();
        let ys: Vec<OpId> = (0..4).map(|i| g.input(format!("y{i}"))).collect();
        let mut acc = None;
        for i in 0..4 {
            let m = g.mul(xs[i], ys[i]);
            acc = Some(match acc {
                None => m,
                Some(p) => g.add(p, m),
            });
        }
        g.output("dot", acc.unwrap());
        g
    }

    fn setup() -> (Cdfg, Delays, Schedule, Profile) {
        let g = test_graph();
        let d = Delays::default();
        let mut limits = HashMap::new();
        limits.insert("mul", 2usize);
        limits.insert("add", 1usize);
        let sched = schedule::list_schedule(&g, &d, &limits);
        let pairs = allocation_pairs(&g);
        let p = profile(&g, correlated_stream(&g, 5, 800, 40), &pairs).unwrap();
        (g, d, sched, p)
    }

    #[test]
    fn binding_respects_resource_intervals() {
        let (g, d, sched, p) = setup();
        let b =
            allocate(&g, &d, &sched, &p, &RtlCosts::default(), AllocationStrategy::ActivityAware);
        for unit in &b.units {
            for pair in unit.ops.windows(2) {
                let i0 = interval(&g, &d, &sched, pair[0]);
                let i1 = interval(&g, &d, &sched, pair[1]);
                assert!(!overlaps(i0, i1), "ops on one unit overlap in time");
            }
        }
    }

    #[test]
    fn units_share_only_same_kind() {
        let (g, d, sched, p) = setup();
        let b =
            allocate(&g, &d, &sched, &p, &RtlCosts::default(), AllocationStrategy::ActivityAware);
        for unit in &b.units {
            let m = unit.kind_sample.mnemonic();
            for &op in &unit.ops {
                assert_eq!(g.kind(op).mnemonic(), m);
            }
        }
        // Sharing happened at all: fewer units than operations.
        assert!(b.unit_count() < g.operation_count());
    }

    #[test]
    fn activity_aware_no_worse_than_blind() {
        let (g, d, sched, p) = setup();
        let costs = RtlCosts::default();
        let aware = allocate(&g, &d, &sched, &p, &costs, AllocationStrategy::ActivityAware);
        let blind = allocate(&g, &d, &sched, &p, &costs, AllocationStrategy::CapacitanceOnly);
        let ca = binding_switched_cap_ff(&g, &aware, &p, &costs);
        let cb = binding_switched_cap_ff(&g, &blind, &p, &costs);
        assert!(ca <= cb * 1.02, "aware {ca:.0} vs blind {cb:.0}");
    }

    #[test]
    fn registers_cover_all_stored_values() {
        let (g, d, sched, p) = setup();
        let b =
            allocate(&g, &d, &sched, &p, &RtlCosts::default(), AllocationStrategy::ActivityAware);
        let users = g.users();
        for id in g.op_ids() {
            if lifetime(&g, &d, &sched, &users, id).is_some() {
                assert!(b.register_of(id).is_some(), "stored value {id} has no register");
            }
        }
    }

    #[test]
    fn operand_reordering_never_hurts() {
        let (g, d, sched, p) = setup();
        let b =
            allocate(&g, &d, &sched, &p, &RtlCosts::default(), AllocationStrategy::CapacitanceOnly);
        let (orientation, before, after) = reorder_operands(&g, &b, &p);
        assert!(after <= before + 1e-12, "{after} vs {before}");
        // Only commutative two-operand ops may be swapped.
        for (&op, &swapped) in &orientation {
            if swapped {
                assert!(matches!(g.kind(op), OpKind::Add | OpKind::Mul));
            }
        }
    }

    #[test]
    fn operand_reordering_aligns_shared_operand() {
        // Two adds sharing operand `a` on one unit: with the shared
        // operand on opposite ports, reordering must swap one of them.
        let mut g = Cdfg::new(12);
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let s1 = g.add(a, b);
        let s2 = g.add(c, a); // shared `a` arrives on the other port
        let y = g.mul(s1, s2);
        g.output("y", y);
        let d = Delays::default();
        let mut limits = HashMap::new();
        limits.insert("add", 1usize);
        let sched = crate::schedule::list_schedule(&g, &d, &limits);
        let pairs = allocation_pairs(&g);
        let p =
            crate::profile::profile(&g, crate::profile::correlated_stream(&g, 3, 500, 20), &pairs)
                .unwrap();
        let binding =
            allocate(&g, &d, &sched, &p, &RtlCosts::default(), AllocationStrategy::ActivityAware);
        let (orientation, before, after) = reorder_operands(&g, &binding, &p);
        // If both adds share a unit, the swap should fire and reduce cost.
        if binding.unit_of(s1) == binding.unit_of(s2) {
            assert!(after < before, "{after} vs {before}");
            assert!(orientation.values().any(|&s| s));
        }
    }

    #[test]
    fn register_sharing_requires_disjoint_lifetimes() {
        let (g, d, sched, p) = setup();
        let users = g.users();
        let b =
            allocate(&g, &d, &sched, &p, &RtlCosts::default(), AllocationStrategy::ActivityAware);
        for reg in &b.registers {
            for pair in reg.values.windows(2) {
                let l0 = lifetime(&g, &d, &sched, &users, pair[0]).unwrap();
                let l1 = lifetime(&g, &d, &sched, &users, pair[1]).unwrap();
                // Inclusive-end lifetimes may touch but not strictly overlap.
                assert!(
                    !overlaps((l0.0, l0.1 + 1), (l1.0, l1.1))
                        || !overlaps((l1.0, l1.1 + 1), (l0.0, l0.1)),
                    "register lifetimes overlap: {l0:?} {l1:?}"
                );
            }
        }
    }
}
