//! RTL architecture power model: switched capacitance broken down by
//! component class (execution units, registers/clock, control logic,
//! interconnect) — the rows of the survey's Table I.
//!
//! The survey's Table I numbers come from SPICE-characterized layouts of a
//! Tap FIR filter; the substitution here is an analytic switched-capacitance
//! model whose per-class cost coefficients were calibrated so that the
//! relative cost structure of 1990s datapath macrocells is preserved
//! (array multipliers scale with `w^2`, adders with `w`, control with the
//! number of scheduled operations and steps, interconnect with bus traffic
//! and the die-size-dependent wire length).

use std::collections::HashMap;

use crate::allocate::Binding;
use crate::graph::{Cdfg, OpKind};
use crate::profile::Profile;
use crate::schedule::{Delays, Schedule};

/// Calibration coefficients of the RTL capacitance model (femtofarads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtlCosts {
    /// Array-multiplier switched cap per bit^2 per unit activity.
    pub mul_cap_ff_per_bit2: f64,
    /// Adder/subtractor cap per bit per unit activity.
    pub add_cap_ff_per_bit: f64,
    /// Mux cap per bit.
    pub mux_cap_ff_per_bit: f64,
    /// Comparator cap per bit.
    pub lt_cap_ff_per_bit: f64,
    /// Negation cap per bit.
    pub neg_cap_ff_per_bit: f64,
    /// Constant shift cap per bit (pure wiring).
    pub shl_cap_ff_per_bit: f64,
    /// Register write cap per bit per unit activity.
    pub reg_cap_ff_per_bit: f64,
    /// Clock load per register per control step.
    pub clock_cap_ff_per_reg_step: f64,
    /// Controller cap per scheduled operation (control signal toggling).
    pub ctrl_cap_ff_per_op: f64,
    /// Controller cap per control step (state register + decode).
    pub ctrl_cap_ff_per_step: f64,
    /// Interconnect cap per bit transferred at the reference die size.
    pub wire_cap_ff_per_bit: f64,
    /// Reference equivalent-gate area for the wire-length model.
    pub reference_area: f64,
}

impl Default for RtlCosts {
    fn default() -> Self {
        RtlCosts {
            mul_cap_ff_per_bit2: 112.0,
            add_cap_ff_per_bit: 90.0,
            mux_cap_ff_per_bit: 25.0,
            lt_cap_ff_per_bit: 40.0,
            neg_cap_ff_per_bit: 35.0,
            shl_cap_ff_per_bit: 2.0,
            reg_cap_ff_per_bit: 165.0,
            clock_cap_ff_per_reg_step: 9.0,
            ctrl_cap_ff_per_op: 240.0,
            ctrl_cap_ff_per_step: 320.0,
            wire_cap_ff_per_bit: 168.0,
            reference_area: 3000.0,
        }
    }
}

impl RtlCosts {
    /// Switched capacitance of one execution of an operation at unit
    /// activity, in femtofarads.
    pub fn op_cap_ff(&self, kind: &OpKind, width: u32) -> f64 {
        let w = width as f64;
        match kind {
            OpKind::Mul => self.mul_cap_ff_per_bit2 * w * w,
            OpKind::Add | OpKind::Sub => self.add_cap_ff_per_bit * w,
            OpKind::Mux => self.mux_cap_ff_per_bit * w,
            OpKind::Lt => self.lt_cap_ff_per_bit * w,
            OpKind::Neg => self.neg_cap_ff_per_bit * w,
            OpKind::Shl(_) => self.shl_cap_ff_per_bit * w,
            OpKind::Input(_) | OpKind::Const(_) => 0.0,
        }
    }

    /// Equivalent-gate area of an operation's functional unit.
    pub fn op_area(&self, kind: &OpKind, width: u32) -> f64 {
        let w = width as f64;
        match kind {
            OpKind::Mul => w * w,
            OpKind::Add | OpKind::Sub => 1.2 * w,
            OpKind::Mux | OpKind::Lt | OpKind::Neg => 0.8 * w,
            OpKind::Shl(_) => 0.0,
            OpKind::Input(_) | OpKind::Const(_) => 0.0,
        }
    }
}

/// Switched capacitance per algorithm evaluation, by component class
/// (picofarads) — one row set of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RtlBreakdown {
    /// Execution units (functional units doing arithmetic).
    pub execution_units_pf: f64,
    /// Registers and clock distribution.
    pub registers_clock_pf: f64,
    /// Control logic (FSM + steering control signals).
    pub control_logic_pf: f64,
    /// Interconnect (busses between units and registers).
    pub interconnect_pf: f64,
}

impl RtlBreakdown {
    /// Total switched capacitance, in picofarads.
    pub fn total_pf(&self) -> f64 {
        self.execution_units_pf
            + self.registers_clock_pf
            + self.control_logic_pf
            + self.interconnect_pf
    }

    /// The four classes as (label, pF, percent-of-total) rows, in Table I
    /// order.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let t = self.total_pf().max(1e-12);
        vec![
            ("Execution units", self.execution_units_pf, 100.0 * self.execution_units_pf / t),
            ("Registers/clock", self.registers_clock_pf, 100.0 * self.registers_clock_pf / t),
            ("Control logic", self.control_logic_pf, 100.0 * self.control_logic_pf / t),
            ("Interconnect", self.interconnect_pf, 100.0 * self.interconnect_pf / t),
        ]
    }
}

impl std::fmt::Display for RtlBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<18} {:>12} {:>10}", "Component", "Cap (pF)", "% total")?;
        for (name, pf, pct) in self.rows() {
            writeln!(f, "{name:<18} {pf:>12.2} {pct:>9.2}%")?;
        }
        writeln!(f, "{:<18} {:>12.2} {:>9.2}%", "Total", self.total_pf(), 100.0)
    }
}

/// Estimates the per-evaluation switched capacitance of the RTL
/// architecture implied by a scheduled (and optionally bound) CDFG.
///
/// * Execution units: each operation's unit cap, weighted by the mean
///   activity of its operand values (from the profile).
/// * Registers/clock: every value alive across a control-step boundary is
///   written to a register (weighted by its activity), plus clock load on
///   all registers for every step.
/// * Control logic: per scheduled operation and per control step.
/// * Interconnect: per inter-unit value transfer, scaled by a wire-length
///   factor `sqrt(area / reference_area)`; with a binding, transfers that
///   stay inside one unit (accumulator-style chaining) are free.
pub fn estimate(
    g: &Cdfg,
    delays: &Delays,
    sched: &Schedule,
    binding: Option<&Binding>,
    profile: &Profile,
    costs: &RtlCosts,
) -> RtlBreakdown {
    let w = g.width();
    let users = g.users();

    // --- Execution units ---
    let mut exec_ff = 0.0;
    let mut area = 0.0;
    for id in g.op_ids() {
        let kind = g.kind(id);
        if !kind.is_operation() {
            continue;
        }
        // Constant operands contribute no switching; average the data
        // operands only (a constant-coefficient multiplier still switches
        // from its data input).
        let data_args: Vec<_> =
            g.args(id).iter().filter(|a| !matches!(g.kind(**a), OpKind::Const(_))).collect();
        let act = if data_args.is_empty() {
            0.01
        } else {
            let s: f64 = data_args.iter().map(|a| profile.node_activity(**a)).sum();
            (s / data_args.len() as f64).max(0.01)
        };
        exec_ff += costs.op_cap_ff(kind, w) * act * 2.0;
    }
    // Area of the bound architecture: one unit per binding cluster, or one
    // per operation when unbound.
    match binding {
        Some(b) => {
            for unit in &b.units {
                area += costs.op_area(&unit.kind_sample, w);
            }
            area += b.register_count() as f64 * 0.9 * w as f64;
        }
        None => {
            for id in g.op_ids() {
                area += costs.op_area(g.kind(id), w);
            }
        }
    }

    // The wire-length factor scales everything routed across the die:
    // busses and the clock tree both shrink with area.
    let wire_factor = (area / costs.reference_area).sqrt().max(0.1);

    // --- Registers/clock ---
    let mut reg_ff = 0.0;
    let mut reg_count = 0usize;
    for id in g.op_ids() {
        let finish = sched.start_of(id) + delays.of(g.kind(id));
        let last_use = users[id.index()].iter().map(|u| sched.start_of(*u)).max().unwrap_or(finish);
        let is_output = g.outputs().iter().any(|&(_, o)| o == id);
        // Values consumed within the next step ride the producing unit's
        // output latch (charged with the unit); the register file holds
        // longer-lived values, primary inputs, and outputs.
        let stored = last_use > finish + 1 || is_output || matches!(g.kind(id), OpKind::Input(_));
        if stored {
            reg_count += 1;
            let act = profile.node_activity(id).max(0.01);
            // Products need double-width registers.
            let bits = if matches!(g.kind(id), OpKind::Mul) { 2.0 * w as f64 } else { w as f64 };
            reg_ff += costs.reg_cap_ff_per_bit * bits * act;
        }
    }
    let steps = sched.makespan.max(1) as f64;
    reg_ff += costs.clock_cap_ff_per_reg_step * reg_count as f64 * steps * wire_factor;

    // --- Control logic ---
    let n_ops = g.operation_count() as f64;
    let ctrl_ff = costs.ctrl_cap_ff_per_op * n_ops + costs.ctrl_cap_ff_per_step * steps;

    // --- Interconnect ---
    let mut wire_ff = 0.0;
    for id in g.op_ids() {
        if !g.kind(id).is_operation() && !matches!(g.kind(id), OpKind::Input(_)) {
            continue;
        }
        let act = profile.node_activity(id).max(0.01);
        for &u in &users[id.index()] {
            if !g.kind(u).is_operation() {
                continue;
            }
            // Shifts are wiring, not bus transfers.
            if matches!(g.kind(u), OpKind::Shl(_)) {
                continue;
            }
            let same_unit = match binding {
                Some(b) => match (b.unit_of(id), b.unit_of(u)) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                },
                None => false,
            };
            if !same_unit {
                // Multiplier results travel on double-width product busses.
                let bits =
                    if matches!(g.kind(id), OpKind::Mul) { 2.0 * w as f64 } else { w as f64 };
                wire_ff += costs.wire_cap_ff_per_bit * bits * act * wire_factor;
            }
        }
    }

    RtlBreakdown {
        execution_units_pf: exec_ff / 1000.0,
        registers_clock_pf: reg_ff / 1000.0,
        control_logic_pf: ctrl_ff / 1000.0,
        interconnect_pf: wire_ff / 1000.0,
    }
}

/// Convenience: schedule with default list scheduling (no limits), profile
/// under a seeded random stream, and estimate.
pub fn quick_estimate(g: &Cdfg, seed: u64, costs: &RtlCosts) -> RtlBreakdown {
    let delays = Delays::default();
    let sched = crate::schedule::asap(g, &delays);
    let profile = crate::profile::profile(g, crate::profile::random_stream(g, seed, 500), &[])
        .expect("random stream binds every input");
    estimate(g, &delays, &sched, None, &profile, costs)
}

/// Per-mnemonic op capacitance summary (diagnostics for the repro
/// harness).
pub fn op_cap_summary(g: &Cdfg, costs: &RtlCosts) -> HashMap<&'static str, f64> {
    let mut m = HashMap::new();
    for id in g.op_ids() {
        let k = g.kind(id);
        if k.is_operation() {
            *m.entry(k.mnemonic()).or_insert(0.0) += costs.op_cap_ff(k, g.width());
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform;

    #[test]
    fn multiplier_dominates_adder() {
        let c = RtlCosts::default();
        assert!(c.op_cap_ff(&OpKind::Mul, 16) > 5.0 * c.op_cap_ff(&OpKind::Add, 16));
        assert!(c.op_cap_ff(&OpKind::Shl(2), 16) < c.op_cap_ff(&OpKind::Add, 16) / 10.0);
    }

    #[test]
    fn strength_reduction_cuts_execution_cap() {
        let costs = RtlCosts::default();
        let before = transform::fir_cdfg(&[105, 57, 411, 57, 105], 16);
        let after = transform::strength_reduce_const_mults(&before);
        let b = quick_estimate(&before, 1, &costs);
        let a = quick_estimate(&after, 1, &costs);
        assert!(
            a.execution_units_pf < b.execution_units_pf / 3.0,
            "exec {:.1} -> {:.1}",
            b.execution_units_pf,
            a.execution_units_pf
        );
        assert!(a.total_pf() < b.total_pf(), "total must drop");
        assert!(a.control_logic_pf > b.control_logic_pf, "control rises with op count");
    }

    #[test]
    fn breakdown_rows_sum_to_total() {
        let g = transform::fir_cdfg(&[3, 5, 7], 16);
        let r = quick_estimate(&g, 2, &RtlCosts::default());
        let sum: f64 = r.rows().iter().map(|(_, pf, _)| pf).sum();
        assert!((sum - r.total_pf()).abs() < 1e-9);
        let pct: f64 = r.rows().iter().map(|(_, _, p)| p).sum();
        assert!((pct - 100.0).abs() < 1e-6);
    }

    #[test]
    fn display_formats_table() {
        let g = transform::fir_cdfg(&[3, 5], 16);
        let r = quick_estimate(&g, 3, &RtlCosts::default());
        let s = format!("{r}");
        assert!(s.contains("Execution units"));
        assert!(s.contains("Interconnect"));
    }
}
