//! CDFG representation and word-level evaluation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors produced while building or evaluating a [`Cdfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CdfgError {
    /// An evaluation was requested with a missing input binding.
    MissingInput {
        /// The input's name.
        name: String,
    },
    /// The graph contains no outputs.
    NoOutputs,
}

impl fmt::Display for CdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdfgError::MissingInput { name } => write!(f, "no value bound for input '{name}'"),
            CdfgError::NoOutputs => write!(f, "graph declares no outputs"),
        }
    }
}

impl Error for CdfgError {}

/// Identifier of an operation node within a [`Cdfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// Raw index in the graph's node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The kind of a CDFG operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// A named primary input.
    Input(String),
    /// A compile-time constant.
    Const(i64),
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Two's-complement multiplication.
    Mul,
    /// Left shift by a constant (wiring-level strength-reduced multiply).
    Shl(u32),
    /// Arithmetic negation.
    Neg,
    /// Data-dependent select: `args = [sel, a, b]`, yields `b` when `sel !=
    /// 0`, else `a`.
    Mux,
    /// Signed less-than comparison (yields 0/1).
    Lt,
}

impl OpKind {
    /// Short mnemonic for display.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Input(_) => "in",
            OpKind::Const(_) => "const",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Shl(_) => "shl",
            OpKind::Neg => "neg",
            OpKind::Mux => "mux",
            OpKind::Lt => "lt",
        }
    }

    /// Whether the operation occupies a functional unit when scheduled
    /// (inputs and constants do not).
    pub fn is_operation(&self) -> bool {
        !matches!(self, OpKind::Input(_) | OpKind::Const(_))
    }
}

#[derive(Debug, Clone)]
struct Node {
    kind: OpKind,
    args: Vec<OpId>,
}

/// A control-data-flow graph over fixed-width two's-complement words.
///
/// Nodes are operations; edges are the value dependencies implied by each
/// node's argument list. Extra *precedence* edges (no value flow) can be
/// added by schedulers — see [`add_precedence`](Cdfg::add_precedence).
#[derive(Debug, Clone)]
pub struct Cdfg {
    nodes: Vec<Node>,
    outputs: Vec<(String, OpId)>,
    precedence: Vec<(OpId, OpId)>,
    width: u32,
}

impl Cdfg {
    /// Creates an empty graph over `width`-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 63.
    pub fn new(width: u32) -> Self {
        assert!(width > 0 && width <= 63, "width must be in 1..=63");
        Cdfg { nodes: Vec::new(), outputs: Vec::new(), precedence: Vec::new(), width }
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    fn push(&mut self, kind: OpKind, args: Vec<OpId>) -> OpId {
        let id = OpId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, args });
        id
    }

    /// Adds a named primary input.
    pub fn input(&mut self, name: impl Into<String>) -> OpId {
        self.push(OpKind::Input(name.into()), Vec::new())
    }

    /// Adds a constant.
    pub fn constant(&mut self, value: i64) -> OpId {
        self.push(OpKind::Const(value), Vec::new())
    }

    /// Adds `a + b`.
    pub fn add(&mut self, a: OpId, b: OpId) -> OpId {
        self.push(OpKind::Add, vec![a, b])
    }

    /// Adds `a - b`.
    pub fn sub(&mut self, a: OpId, b: OpId) -> OpId {
        self.push(OpKind::Sub, vec![a, b])
    }

    /// Adds `a * b`.
    pub fn mul(&mut self, a: OpId, b: OpId) -> OpId {
        self.push(OpKind::Mul, vec![a, b])
    }

    /// Adds `a << k`.
    pub fn shl(&mut self, a: OpId, k: u32) -> OpId {
        self.push(OpKind::Shl(k), vec![a])
    }

    /// Adds `-a`.
    pub fn neg(&mut self, a: OpId) -> OpId {
        self.push(OpKind::Neg, vec![a])
    }

    /// Adds `sel != 0 ? b : a`.
    pub fn mux(&mut self, sel: OpId, a: OpId, b: OpId) -> OpId {
        self.push(OpKind::Mux, vec![sel, a, b])
    }

    /// Adds `a < b` (signed; yields 0 or 1).
    pub fn lt(&mut self, a: OpId, b: OpId) -> OpId {
        self.push(OpKind::Lt, vec![a, b])
    }

    /// Declares a named output.
    pub fn output(&mut self, name: impl Into<String>, op: OpId) {
        self.outputs.push((name.into(), op));
    }

    /// Adds a pure precedence edge `before -> after` (used by the
    /// power-management scheduler to force control evaluation before the
    /// guarded branches).
    pub fn add_precedence(&mut self, before: OpId, after: OpId) {
        self.precedence.push((before, after));
    }

    /// Declared precedence edges.
    pub fn precedence_edges(&self) -> &[(OpId, OpId)] {
        &self.precedence
    }

    /// The kind of a node.
    pub fn kind(&self, op: OpId) -> &OpKind {
        &self.nodes[op.index()].kind
    }

    /// The argument list of a node.
    pub fn args(&self, op: OpId) -> &[OpId] {
        &self.nodes[op.index()].args
    }

    /// Number of nodes (including inputs and constants).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids in creation (topological) order — arguments always
    /// precede their users because the builder is append-only.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.nodes.len() as u32).map(OpId)
    }

    /// Declared outputs.
    pub fn outputs(&self) -> &[(String, OpId)] {
        &self.outputs
    }

    /// Primary-input ids with their names, in creation order.
    pub fn inputs(&self) -> Vec<(String, OpId)> {
        self.op_ids()
            .filter_map(|id| match self.kind(id) {
                OpKind::Input(name) => Some((name.clone(), id)),
                _ => None,
            })
            .collect()
    }

    /// Number of operation nodes of each mnemonic (inputs/constants are
    /// excluded).
    pub fn op_counts(&self) -> HashMap<&'static str, usize> {
        let mut counts = HashMap::new();
        for id in self.op_ids() {
            let k = self.kind(id);
            if k.is_operation() {
                *counts.entry(k.mnemonic()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Total operation count.
    pub fn operation_count(&self) -> usize {
        self.op_ids().filter(|&id| self.kind(id).is_operation()).count()
    }

    /// Users of each node (value edges only).
    pub fn users(&self) -> Vec<Vec<OpId>> {
        let mut u = vec![Vec::new(); self.nodes.len()];
        for id in self.op_ids() {
            for &a in self.args(id) {
                u[a.index()].push(id);
            }
        }
        u
    }

    /// Transitive fan-in of a node (the node itself excluded), following
    /// value edges.
    pub fn transitive_fanin(&self, op: OpId) -> std::collections::HashSet<OpId> {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<OpId> = self.args(op).to_vec();
        while let Some(x) = stack.pop() {
            if seen.insert(x) {
                stack.extend(self.args(x).iter().copied());
            }
        }
        seen
    }

    fn mask(&self) -> i64 {
        // Wrap to `width` bits, sign-extended.
        (1i64 << self.width) - 1
    }

    fn wrap(&self, v: i64) -> i64 {
        let m = self.mask();
        let x = v & m;
        if x >> (self.width - 1) & 1 == 1 {
            x - (1i64 << self.width)
        } else {
            x
        }
    }

    /// Evaluates every node under the given input bindings; returns the
    /// per-node values (indexable by [`OpId::index`]).
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::MissingInput`] if an input has no binding.
    pub fn eval_all(&self, inputs: &HashMap<String, i64>) -> Result<Vec<i64>, CdfgError> {
        let mut vals = vec![0i64; self.nodes.len()];
        for id in self.op_ids() {
            let v = match self.kind(id) {
                OpKind::Input(name) => *inputs
                    .get(name)
                    .ok_or_else(|| CdfgError::MissingInput { name: name.clone() })?,
                OpKind::Const(c) => *c,
                OpKind::Add => {
                    vals[self.args(id)[0].index()].wrapping_add(vals[self.args(id)[1].index()])
                }
                OpKind::Sub => {
                    vals[self.args(id)[0].index()].wrapping_sub(vals[self.args(id)[1].index()])
                }
                OpKind::Mul => {
                    vals[self.args(id)[0].index()].wrapping_mul(vals[self.args(id)[1].index()])
                }
                OpKind::Shl(k) => vals[self.args(id)[0].index()].wrapping_shl(*k),
                OpKind::Neg => vals[self.args(id)[0].index()].wrapping_neg(),
                OpKind::Mux => {
                    let a = self.args(id);
                    if vals[a[0].index()] != 0 {
                        vals[a[2].index()]
                    } else {
                        vals[a[1].index()]
                    }
                }
                OpKind::Lt => {
                    (vals[self.args(id)[0].index()] < vals[self.args(id)[1].index()]) as i64
                }
            };
            vals[id.index()] = self.wrap(v);
        }
        Ok(vals)
    }

    /// Evaluates the declared outputs under the given input bindings.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::MissingInput`] for an unbound input or
    /// [`CdfgError::NoOutputs`] if no outputs were declared.
    pub fn eval(&self, inputs: &HashMap<String, i64>) -> Result<Vec<i64>, CdfgError> {
        if self.outputs.is_empty() {
            return Err(CdfgError::NoOutputs);
        }
        let vals = self.eval_all(inputs)?;
        Ok(self.outputs.iter().map(|&(_, id)| vals[id.index()]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bindings(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn arithmetic_evaluation() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let m = g.mul(a, b);
        let s = g.add(m, a);
        let d = g.sub(s, b);
        g.output("y", d);
        let out = g.eval(&bindings(&[("a", 7), ("b", 3)])).unwrap();
        assert_eq!(out, vec![7 * 3 + 7 - 3]);
    }

    #[test]
    fn wrapping_respects_width() {
        let mut g = Cdfg::new(8);
        let a = g.input("a");
        let b = g.input("b");
        let m = g.mul(a, b);
        g.output("y", m);
        // 100 * 3 = 300 wraps to 300 - 256 = 44 in 8-bit two's complement.
        let out = g.eval(&bindings(&[("a", 100), ("b", 3)])).unwrap();
        assert_eq!(out, vec![44]);
    }

    #[test]
    fn mux_and_compare() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let lt = g.lt(a, b);
        let mx = g.mux(lt, a, b); // max(a, b) ... selects b when a < b
        g.output("max", mx);
        assert_eq!(g.eval(&bindings(&[("a", 3), ("b", 9)])).unwrap(), vec![9]);
        assert_eq!(g.eval(&bindings(&[("a", 9), ("b", 3)])).unwrap(), vec![9]);
    }

    #[test]
    fn shift_and_neg() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let s = g.shl(a, 3);
        let n = g.neg(s);
        g.output("y", n);
        assert_eq!(g.eval(&bindings(&[("a", 5)])).unwrap(), vec![-40]);
    }

    #[test]
    fn missing_input_is_reported() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        g.output("y", a);
        let err = g.eval(&HashMap::new()).unwrap_err();
        assert!(matches!(err, CdfgError::MissingInput { .. }));
    }

    #[test]
    fn op_counts_exclude_inputs() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let c = g.constant(3);
        let m = g.mul(a, c);
        let s = g.add(m, a);
        g.output("y", s);
        let counts = g.op_counts();
        assert_eq!(counts.get("mul"), Some(&1));
        assert_eq!(counts.get("add"), Some(&1));
        assert_eq!(g.operation_count(), 2);
    }

    #[test]
    fn transitive_fanin() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let m = g.mul(a, b);
        let s = g.add(m, b);
        let fanin = g.transitive_fanin(s);
        assert!(fanin.contains(&m) && fanin.contains(&a) && fanin.contains(&b));
        assert!(!fanin.contains(&s));
    }
}
