//! Behavioral transformations (survey §III-C): polynomial restructuring
//! (the Figs. 4/5 examples), strength reduction, and conversion of
//! constant multiplications into shift-add networks (the transformation
//! behind Table I).

use crate::graph::{Cdfg, OpId, OpKind};

/// Builds the *direct-form* evaluation of a polynomial `sum(coeffs[i] *
/// x^i)` (coefficients as runtime inputs `a0..an`), structured as the
/// survey's Figs. 4/5 "before" graphs: powers of `x` are shared, products
/// are formed in parallel and summed pairwise.
pub fn polynomial_direct(degree: usize, width: u32) -> Cdfg {
    assert!(degree >= 1, "degree must be >= 1");
    let mut g = Cdfg::new(width);
    let x = g.input("x");
    let coeffs: Vec<OpId> = (0..=degree).map(|i| g.input(format!("a{i}"))).collect();
    // Powers x^2..x^degree, shared. The Figs. 4/5 structure keeps the
    // highest product as (a_n x + a_{n-1}) * x^{n-1} when n >= 2 so that
    // multiplier depth stays low.
    let mut powers: Vec<OpId> = vec![x];
    for _ in 2..=degree {
        let prev = *powers.last().expect("non-empty");
        powers.push(g.mul(prev, x));
    }
    // terms: a0 + a1*x + a2*x^2 + ... (term 0 is just a0).
    let mut terms: Vec<OpId> = vec![coeffs[0]];
    for i in 1..=degree {
        terms.push(g.mul(coeffs[i], powers[i - 1]));
    }
    // Balanced adder tree.
    let mut layer = terms;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(g.add(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    g.output("y", layer[0]);
    g
}

/// Builds the Horner-rule evaluation `(((a_n x + a_{n-1}) x + ...) x +
/// a_0)` — the survey's Figs. 4/5 "after" graphs: fewest multiplications,
/// but a serial chain.
pub fn polynomial_horner(degree: usize, width: u32) -> Cdfg {
    assert!(degree >= 1, "degree must be >= 1");
    let mut g = Cdfg::new(width);
    let x = g.input("x");
    let coeffs: Vec<OpId> = (0..=degree).map(|i| g.input(format!("a{i}"))).collect();
    let mut acc = coeffs[degree];
    for i in (0..degree).rev() {
        let m = g.mul(acc, x);
        acc = g.add(m, coeffs[i]);
    }
    g.output("y", acc);
    g
}

/// Rewrites every multiplication by a constant into a CSD shift-add
/// network (strength reduction; the Table I transformation). Returns the
/// transformed graph; non-constant multiplies are preserved.
///
/// The rewrite walks the graph in topological order, cloning nodes and
/// replacing `Mul(x, Const(k))` / `Mul(Const(k), x)` by a minimal chain of
/// shifts, adds and subtracts following the canonical-signed-digit
/// recoding of `k`.
pub fn strength_reduce_const_mults(g: &Cdfg) -> Cdfg {
    let mut out = Cdfg::new(g.width());
    let mut map: Vec<Option<OpId>> = vec![None; g.node_count()];
    for id in g.op_ids() {
        let new_id = match g.kind(id) {
            OpKind::Input(name) => out.input(name.clone()),
            OpKind::Const(c) => out.constant(*c),
            OpKind::Mul => {
                let a = g.args(id)[0];
                let b = g.args(id)[1];
                let const_of = |x: OpId| match g.kind(x) {
                    OpKind::Const(c) => Some(*c),
                    _ => None,
                };
                match (const_of(a), const_of(b)) {
                    (Some(k), _) => {
                        let operand = map[b.index()].expect("topological order");
                        shift_add_network(&mut out, operand, k)
                    }
                    (_, Some(k)) => {
                        let operand = map[a.index()].expect("topological order");
                        shift_add_network(&mut out, operand, k)
                    }
                    _ => {
                        let na = map[a.index()].expect("topological order");
                        let nb = map[b.index()].expect("topological order");
                        out.mul(na, nb)
                    }
                }
            }
            kind => {
                let args: Vec<OpId> =
                    g.args(id).iter().map(|a| map[a.index()].expect("topo order")).collect();
                match kind {
                    OpKind::Add => out.add(args[0], args[1]),
                    OpKind::Sub => out.sub(args[0], args[1]),
                    OpKind::Shl(k) => out.shl(args[0], *k),
                    OpKind::Neg => out.neg(args[0]),
                    OpKind::Mux => out.mux(args[0], args[1], args[2]),
                    OpKind::Lt => out.lt(args[0], args[1]),
                    OpKind::Input(_) | OpKind::Const(_) | OpKind::Mul => unreachable!(),
                }
            }
        };
        map[id.index()] = Some(new_id);
    }
    for (name, op) in g.outputs() {
        let mapped = map[op.index()].expect("all nodes mapped");
        out.output(name.clone(), mapped);
    }
    out
}

/// Emits `operand * k` as a CSD shift-add chain into `g`.
fn shift_add_network(g: &mut Cdfg, operand: OpId, k: i64) -> OpId {
    if k == 0 {
        return g.constant(0);
    }
    let negate = k < 0;
    let ku = k.unsigned_abs();
    let mut acc: Option<OpId> = None;
    let mut x = ku as u128;
    let mut shift = 0u32;
    while x != 0 {
        let digit: i8 = if x & 1 == 1 {
            if x & 2 == 2 {
                x += 1;
                -1
            } else {
                x -= 1;
                1
            }
        } else {
            0
        };
        if digit != 0 {
            let term = if shift == 0 { operand } else { g.shl(operand, shift) };
            acc = Some(match acc {
                None => {
                    if digit > 0 {
                        term
                    } else {
                        g.neg(term)
                    }
                }
                Some(prev) => {
                    if digit > 0 {
                        g.add(prev, term)
                    } else {
                        g.sub(prev, term)
                    }
                }
            });
        }
        x >>= 1;
        shift += 1;
    }
    let result = acc.expect("k != 0");
    if negate {
        g.neg(result)
    } else {
        result
    }
}

/// Builds an n-tap FIR filter CDFG `y = sum(c[i] * x[n-i])` with constant
/// coefficients. Tap inputs are modeled as separate delayed inputs
/// `x0..x{n-1}` (the delay line lives in the RTL register file).
pub fn fir_cdfg(coeffs: &[i64], width: u32) -> Cdfg {
    assert!(!coeffs.is_empty(), "FIR needs at least one tap");
    let mut g = Cdfg::new(width);
    let taps: Vec<OpId> = (0..coeffs.len()).map(|i| g.input(format!("x{i}"))).collect();
    let mut terms = Vec::with_capacity(coeffs.len());
    for (i, &c) in coeffs.iter().enumerate() {
        let k = g.constant(c);
        terms.push(g.mul(taps[i], k));
    }
    let mut layer = terms;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(g.add(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    g.output("y", layer[0]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{self, Delays};
    use std::collections::HashMap;

    fn poly_inputs(x: i64, coeffs: &[i64]) -> HashMap<String, i64> {
        let mut m = HashMap::new();
        m.insert("x".to_string(), x);
        for (i, &c) in coeffs.iter().enumerate() {
            m.insert(format!("a{i}"), c);
        }
        m
    }

    #[test]
    fn direct_and_horner_agree() {
        let coeffs = [3i64, -2, 5, 1];
        let d = polynomial_direct(3, 32);
        let h = polynomial_horner(3, 32);
        for x in [-7i64, -1, 0, 2, 13] {
            let vd = d.eval(&poly_inputs(x, &coeffs)).unwrap();
            let vh = h.eval(&poly_inputs(x, &coeffs)).unwrap();
            let expect = coeffs.iter().enumerate().map(|(i, &c)| c * x.pow(i as u32)).sum::<i64>();
            assert_eq!(vd, vec![expect]);
            assert_eq!(vh, vec![expect]);
        }
    }

    #[test]
    fn fig4_shape_second_order() {
        // Fig. 4: direct needs more multipliers than Horner; both have
        // short critical paths.
        let d = polynomial_direct(2, 16);
        let h = polynomial_horner(2, 16);
        assert_eq!(d.op_counts()["mul"], 3); // x*x? no: a1*x, a2*x (shared x^1) => see structure
        assert_eq!(h.op_counts()["mul"], 2);
        assert_eq!(h.op_counts()["add"], 2);
        let delays = Delays::unit();
        let sd = schedule::asap(&d, &delays);
        let sh = schedule::asap(&h, &delays);
        assert!(sd.makespan <= sh.makespan, "direct no slower than Horner");
    }

    #[test]
    fn fig5_shape_third_order() {
        // Fig. 5: the transformation cuts multiplications but lengthens
        // the critical path.
        let d = polynomial_direct(3, 16);
        let h = polynomial_horner(3, 16);
        assert!(h.op_counts()["mul"] < d.op_counts()["mul"]);
        let delays = Delays::unit();
        let sd = schedule::asap(&d, &delays);
        let sh = schedule::asap(&h, &delays);
        assert!(sh.makespan > sd.makespan, "Horner serializes: {} vs {}", sh.makespan, sd.makespan);
    }

    #[test]
    fn strength_reduction_preserves_semantics() {
        let coeffs = [13i64, -7, 25, 3, -128];
        let g = fir_cdfg(&coeffs, 32);
        let r = strength_reduce_const_mults(&g);
        for seed in 0..5i64 {
            let inputs: HashMap<String, i64> = (0..coeffs.len())
                .map(|i| (format!("x{i}"), seed * 17 + i as i64 * 3 - 20))
                .collect();
            assert_eq!(g.eval(&inputs).unwrap(), r.eval(&inputs).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn strength_reduction_removes_all_const_mults() {
        let g = fir_cdfg(&[3, 5, 7], 16);
        let r = strength_reduce_const_mults(&g);
        assert_eq!(g.op_counts().get("mul"), Some(&3));
        assert_eq!(r.op_counts().get("mul"), None);
        assert!(r.op_counts().get("add").copied().unwrap_or(0) > 2);
    }

    #[test]
    fn strength_reduction_keeps_variable_mults() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let m = g.mul(a, b);
        g.output("y", m);
        let r = strength_reduce_const_mults(&g);
        assert_eq!(r.op_counts().get("mul"), Some(&1));
    }

    #[test]
    fn negative_and_zero_constants() {
        let mut g = Cdfg::new(32);
        let a = g.input("a");
        let k1 = g.constant(-6);
        let k2 = g.constant(0);
        let m1 = g.mul(a, k1);
        let m2 = g.mul(a, k2);
        let s = g.add(m1, m2);
        g.output("y", s);
        let r = strength_reduce_const_mults(&g);
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), 11);
        assert_eq!(r.eval(&inputs).unwrap(), vec![-66]);
    }

    #[test]
    fn fir_computes_dot_product() {
        let g = fir_cdfg(&[2, -1, 4], 32);
        let mut inputs = HashMap::new();
        inputs.insert("x0".to_string(), 5);
        inputs.insert("x1".to_string(), 3);
        inputs.insert("x2".to_string(), -2);
        assert_eq!(g.eval(&inputs).unwrap(), vec![2 * 5 - 3 - 8]);
    }
}
