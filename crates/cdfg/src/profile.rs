//! Dynamic profiling of CDFGs: word-level simulation under input streams,
//! collecting per-node switching statistics (survey refs 20, \[21\]).
//!
//! The profile feeds the activity-aware allocation weights (`Ws` in
//! §III-E), the RTL power model, and the data statistics the macro-models
//! of §II-C consume.

use std::collections::HashMap;

use hlpower_rng::Rng;

use crate::graph::{Cdfg, CdfgError, OpId};

/// Per-node switching statistics collected by [`profile`].
#[derive(Debug, Clone)]
pub struct Profile {
    /// Mean Hamming distance between consecutive values on each node's
    /// output, as a fraction of the word width (0 = frozen, ~0.5 = random).
    pub activity: Vec<f64>,
    /// Mean Hamming distance between the two listed nodes' values in the
    /// same cycle, keyed by (smaller id, larger id). Only filled for pairs
    /// requested at profiling time.
    pub pairwise: HashMap<(OpId, OpId), f64>,
    /// Number of samples profiled.
    pub samples: usize,
    /// Word width, in bits.
    pub width: u32,
}

impl Profile {
    /// Mean same-cycle bit difference between two nodes (fraction of the
    /// word width), if it was requested during profiling.
    pub fn pairwise_switching(&self, a: OpId, b: OpId) -> Option<f64> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairwise.get(&key).copied()
    }

    /// Per-node output activity (fraction of word bits toggling per
    /// sample).
    pub fn node_activity(&self, op: OpId) -> f64 {
        self.activity[op.index()]
    }
}

/// Runs the graph over a stream of input bindings, collecting activity on
/// every node and pairwise switching for the requested node pairs.
///
/// # Errors
///
/// Returns [`CdfgError::MissingInput`] if a binding set misses an input.
pub fn profile(
    g: &Cdfg,
    stream: impl IntoIterator<Item = HashMap<String, i64>>,
    pairs: &[(OpId, OpId)],
) -> Result<Profile, CdfgError> {
    let w = g.width();
    let mask: u64 = (1u64 << w) - 1;
    let mut prev: Option<Vec<i64>> = None;
    let mut toggles = vec![0u64; g.node_count()];
    let mut pair_bits: HashMap<(OpId, OpId), u64> = HashMap::new();
    let mut samples = 0usize;
    let mut pair_samples = 0usize;
    for bindings in stream {
        let vals = g.eval_all(&bindings)?;
        if let Some(p) = &prev {
            for (i, (&a, &b)) in vals.iter().zip(p.iter()).enumerate() {
                toggles[i] += ((a as u64 ^ b as u64) & mask).count_ones() as u64;
            }
            samples += 1;
        }
        for &(a, b) in pairs {
            let key = if a <= b { (a, b) } else { (b, a) };
            let d = ((vals[a.index()] as u64 ^ vals[b.index()] as u64) & mask).count_ones();
            *pair_bits.entry(key).or_insert(0) += d as u64;
        }
        pair_samples += 1;
        prev = Some(vals);
    }
    let denom = (samples.max(1) as f64) * w as f64;
    let activity = toggles.iter().map(|&t| t as f64 / denom).collect();
    let pairwise = pair_bits
        .into_iter()
        .map(|(k, bits)| (k, bits as f64 / (pair_samples.max(1) as f64 * w as f64)))
        .collect();
    Ok(Profile { activity, pairwise, samples, width: w })
}

/// A seeded stream of uniform random input bindings for a graph.
pub fn random_stream(
    g: &Cdfg,
    seed: u64,
    len: usize,
) -> impl Iterator<Item = HashMap<String, i64>> {
    let names: Vec<String> = g.inputs().into_iter().map(|(n, _)| n).collect();
    let w = g.width();
    let mut rng = Rng::seed_from_u64(seed);
    (0..len).map(move |_| {
        names
            .iter()
            .map(|n| {
                let max = 1i64 << (w - 1);
                (n.clone(), rng.gen_range(-max..max))
            })
            .collect()
    })
}

/// A seeded stream of temporally correlated (random-walk) input bindings —
/// the "real data" regime where activity-aware allocation pays off.
pub fn correlated_stream(
    g: &Cdfg,
    seed: u64,
    len: usize,
    step: i64,
) -> impl Iterator<Item = HashMap<String, i64>> {
    let names: Vec<String> = g.inputs().into_iter().map(|(n, _)| n).collect();
    let w = g.width();
    let mut rng = Rng::seed_from_u64(seed);
    let max = (1i64 << (w - 1)) - 1;
    let mut state: Vec<i64> = names.iter().map(|_| rng.gen_range(-max / 2..max / 2)).collect();
    (0..len).map(move |_| {
        for v in &mut state {
            *v = (*v + rng.gen_range(-step..=step)).clamp(-max, max);
        }
        names.iter().zip(&state).map(|(n, &v)| (n.clone(), v)).collect()
    })
}

/// A stream where the graph's inputs (in declaration order) are delayed
/// taps of a single zero-mean (mean-reverting) signal: input `k` sees the
/// signal's value from `k` cycles ago. This is the FIR delay-line data
/// pattern: adjacent taps almost always share their sign (so their two's-
/// complement high bits agree), while distant taps straddle zero crossings
/// — the dual-bit-type correlation structure that activity-aware
/// allocation (§III-E) exploits.
pub fn sliding_window_stream(
    g: &Cdfg,
    seed: u64,
    len: usize,
    step: i64,
) -> impl Iterator<Item = HashMap<String, i64>> {
    let names: Vec<String> = g.inputs().into_iter().map(|(n, _)| n).collect();
    let w = g.width();
    let mut rng = Rng::seed_from_u64(seed);
    let max = (1i64 << (w - 1)) - 1;
    let mut history: Vec<i64> = vec![0; names.len()];
    let mut x: i64 = 0;
    (0..len).map(move |_| {
        // AR(1) with decay 7/8: zero-mean, sigma ~ 2 * step.
        x = ((x * 7) / 8 + rng.gen_range(-step..=step)).clamp(-max, max);
        history.rotate_right(1);
        history[0] = x;
        names.iter().zip(&history).map(|(n, &v)| (n.clone(), v)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac_graph() -> (Cdfg, OpId, OpId) {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let m = g.mul(a, b);
        let s = g.add(m, a);
        g.output("y", s);
        (g, m, s)
    }

    #[test]
    fn random_stream_has_high_activity() {
        let (g, m, _) = mac_graph();
        let p = profile(&g, random_stream(&g, 1, 2000), &[]).unwrap();
        assert!(p.node_activity(m) > 0.3, "activity = {}", p.node_activity(m));
    }

    #[test]
    fn correlated_stream_has_low_activity() {
        let (g, _, _) = mac_graph();
        let inputs = g.inputs();
        let a = inputs[0].1;
        let p = profile(&g, correlated_stream(&g, 1, 2000, 3), &[]).unwrap();
        assert!(p.node_activity(a) < 0.2, "activity = {}", p.node_activity(a));
    }

    #[test]
    fn pairwise_switching_of_identical_nodes_is_zero() {
        let (g, m, _) = mac_graph();
        let p = profile(&g, random_stream(&g, 2, 500), &[(m, m)]).unwrap();
        assert_eq!(p.pairwise_switching(m, m), Some(0.0));
    }

    #[test]
    fn pairwise_is_symmetric_in_key_order() {
        let (g, m, s) = mac_graph();
        let p = profile(&g, random_stream(&g, 3, 500), &[(s, m)]).unwrap();
        assert!(p.pairwise_switching(m, s).is_some());
        assert_eq!(p.pairwise_switching(m, s), p.pairwise_switching(s, m));
    }

    #[test]
    fn sliding_window_inputs_are_shifted_copies() {
        let mut g = Cdfg::new(12);
        let a = g.input("a");
        let b = g.input("b");
        let s = g.add(a, b);
        g.output("y", s);
        let vals: Vec<HashMap<String, i64>> = sliding_window_stream(&g, 3, 50, 10).collect();
        for t in 1..50 {
            assert_eq!(vals[t]["b"], vals[t - 1]["a"], "b lags a by one cycle");
        }
    }

    #[test]
    fn constants_never_toggle() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let c = g.constant(42);
        let m = g.mul(a, c);
        g.output("y", m);
        let p = profile(&g, random_stream(&g, 4, 300), &[]).unwrap();
        assert_eq!(p.node_activity(c), 0.0);
    }
}
