//! Multiple supply-voltage scheduling (survey §III-F, Chang–Pedram).
//!
//! Modules off the critical path are powered at reduced supply voltages;
//! level shifters are inserted (and charged for) where differently-powered
//! modules meet. The algorithm is the paper's dynamic program over
//! tree-structured CDFGs: a power–delay Pareto curve is computed bottom-up
//! for every (node, voltage) pair, then a preorder traversal selects the
//! cheapest assignment meeting the latency constraint.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::graph::{Cdfg, OpId};
use crate::rtl::RtlCosts;
use crate::schedule::Delays;

/// Errors from the voltage scheduler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MultiVoltError {
    /// The CDFG is not a tree (some value has more than one consumer); the
    /// dynamic program requires tree structure.
    NotATree {
        /// A node with multiple consumers.
        node: OpId,
    },
    /// No assignment meets the latency constraint.
    Infeasible {
        /// The best achievable latency (all modules at the highest
        /// voltage).
        best_latency: f64,
    },
    /// Fewer than one voltage level was supplied.
    NoLevels,
}

impl fmt::Display for MultiVoltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiVoltError::NotATree { node } => {
                write!(f, "CDFG is not a tree: {node} has multiple consumers")
            }
            MultiVoltError::Infeasible { best_latency } => {
                write!(f, "latency constraint below best achievable {best_latency:.2}")
            }
            MultiVoltError::NoLevels => write!(f, "at least one supply voltage level required"),
        }
    }
}

impl Error for MultiVoltError {}

/// Electrical model for voltage scaling and level shifters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageModel {
    /// Threshold voltage for the first-order delay model, in volts.
    pub vt: f64,
    /// Level-shifter energy per crossing, in femtojoules.
    pub shifter_energy_fj: f64,
    /// Level-shifter delay per crossing, in delay units.
    pub shifter_delay: f64,
}

impl Default for VoltageModel {
    fn default() -> Self {
        VoltageModel { vt: 0.7, shifter_energy_fj: 40.0, shifter_delay: 0.2 }
    }
}

impl VoltageModel {
    /// Delay scale factor of supply `v` relative to reference `vref`.
    pub fn delay_scale(&self, v: f64, vref: f64) -> f64 {
        (v / (v - self.vt).powi(2)) / (vref / (vref - self.vt).powi(2))
    }
}

/// A voltage assignment for every operation of a CDFG.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageAssignment {
    /// Index into the levels array for every node (inputs/constants get
    /// the root's level but carry no cost).
    pub level_of: Vec<usize>,
    /// Total energy, in femtojoules (including level shifters).
    pub energy_fj: f64,
    /// Achieved latency, in scaled delay units.
    pub latency: f64,
    /// Number of level shifters inserted.
    pub shifters: usize,
}

#[derive(Debug, Clone, Copy)]
struct Point {
    t: f64,
    e: f64,
    /// Child curve-point indices (up to 3 args), packed for backtracking.
    child_choice: [u32; 3],
}

/// Schedules supply voltages for a tree CDFG.
///
/// `levels` lists the available supplies, highest first. Every operation's
/// energy at level `v` is `0.5 * C_op * v^2` (capacitance from `costs`)
/// and its delay is the nominal delay scaled by the first-order model.
/// Level shifters cost `model.shifter_energy_fj`/`model.shifter_delay` on
/// every edge whose endpoints differ in level.
///
/// # Errors
///
/// Returns [`MultiVoltError::NotATree`] if a value has multiple consumers,
/// [`MultiVoltError::NoLevels`] for an empty level set, or
/// [`MultiVoltError::Infeasible`] if even the all-high assignment exceeds
/// `latency_constraint`.
pub fn schedule_voltages(
    g: &Cdfg,
    delays: &Delays,
    costs: &RtlCosts,
    levels: &[f64],
    model: &VoltageModel,
    latency_constraint: f64,
) -> Result<VoltageAssignment, MultiVoltError> {
    if levels.is_empty() {
        return Err(MultiVoltError::NoLevels);
    }
    let users = g.users();
    for id in g.op_ids() {
        if g.kind(id).is_operation() && users[id.index()].len() > 1 {
            return Err(MultiVoltError::NotATree { node: id });
        }
    }
    let roots: Vec<OpId> = g
        .op_ids()
        .filter(|&id| g.kind(id).is_operation() && users[id.index()].is_empty())
        .collect();
    let vref = levels.iter().cloned().fold(f64::MIN, f64::max);
    let nl = levels.len();

    // curves[node][level] = Pareto points (sorted by t ascending, e
    // descending).
    let mut curves: HashMap<(OpId, usize), Vec<Point>> = HashMap::new();
    for id in g.op_ids() {
        let kind = g.kind(id);
        if !kind.is_operation() {
            for li in 0..nl {
                curves.insert((id, li), vec![Point { t: 0.0, e: 0.0, child_choice: [0; 3] }]);
            }
            continue;
        }
        let d0 = delays.of(kind) as f64;
        let cap = costs.op_cap_ff(kind, g.width());
        for (li, &v) in levels.iter().enumerate() {
            let own_d = d0 * model.delay_scale(v, vref);
            let own_e = 0.5 * cap * v * v;
            // Combine children: cross product with Pareto pruning. Each
            // child contributes its best curve over all of ITS levels,
            // with shifter costs applied for level mismatches.
            let mut combos: Vec<Point> = vec![Point { t: 0.0, e: 0.0, child_choice: [0; 3] }];
            for (ci, &child) in g.args(id).iter().enumerate() {
                let mut merged: Vec<(f64, f64, u32)> = Vec::new(); // (t, e, packed choice)
                for cl in 0..nl {
                    let shift = if g.kind(child).is_operation() && cl != li {
                        (model.shifter_delay, model.shifter_energy_fj)
                    } else {
                        (0.0, 0.0)
                    };
                    for (pi, p) in curves[&(child, cl)].iter().enumerate() {
                        merged.push((p.t + shift.0, p.e + shift.1, (cl * 1000 + pi) as u32));
                    }
                }
                let mut next: Vec<Point> = Vec::new();
                for c in &combos {
                    for &(t, e, choice) in &merged {
                        let mut cc = c.child_choice;
                        cc[ci] = choice;
                        next.push(Point { t: c.t.max(t), e: c.e + e, child_choice: cc });
                    }
                }
                combos = pareto(next);
            }
            let pts: Vec<Point> = combos
                .into_iter()
                .map(|p| Point { t: p.t + own_d, e: p.e + own_e, child_choice: p.child_choice })
                .collect();
            curves.insert((id, li), pareto(pts));
        }
    }

    // Root selection: a virtual AND over all roots (usually one).
    // Enumerate per-root best independently (roots are disjoint subtrees).
    let mut total_e = 0.0;
    let mut total_t: f64 = 0.0;
    let mut picks = Vec::new();
    let mut feasible = true;
    for &r in &roots {
        let mut root_best: Option<(f64, f64, usize, usize)> = None;
        let mut root_fastest = f64::INFINITY;
        for li in 0..nl {
            for (pi, p) in curves[&(r, li)].iter().enumerate() {
                root_fastest = root_fastest.min(p.t);
                if p.t <= latency_constraint && root_best.is_none_or(|(e, _, _, _)| p.e < e) {
                    root_best = Some((p.e, p.t, li, pi));
                }
            }
        }
        match root_best {
            Some((e, t, li, pi)) => {
                total_e += e;
                total_t = total_t.max(t);
                picks.push((r, li, pi));
            }
            None => {
                feasible = false;
                total_t = total_t.max(root_fastest);
            }
        }
    }
    if !feasible {
        return Err(MultiVoltError::Infeasible { best_latency: total_t });
    }
    let (energy_fj, latency) = (total_e, total_t);

    // Backtrack to recover per-node levels.
    let mut level_of = vec![0usize; g.node_count()];
    let mut shifters = 0usize;
    let mut stack: Vec<(OpId, usize, usize)> = picks;
    while let Some((id, li, pi)) = stack.pop() {
        level_of[id.index()] = li;
        let p = curves[&(id, li)][pi];
        for (ci, &child) in g.args(id).iter().enumerate() {
            let packed = p.child_choice[ci] as usize;
            let (cl, cpi) = (packed / 1000, packed % 1000);
            if g.kind(child).is_operation() {
                if cl != li {
                    shifters += 1;
                }
                stack.push((child, cl, cpi));
            } else {
                level_of[child.index()] = li;
            }
        }
    }
    Ok(VoltageAssignment { level_of, energy_fj, latency, shifters })
}

/// Pareto-prune (t, e) points: keep points not dominated in both
/// dimensions; cap the set size to keep the DP polynomial.
fn pareto(mut pts: Vec<Point>) -> Vec<Point> {
    pts.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap_or(std::cmp::Ordering::Equal));
    let mut out: Vec<Point> = Vec::new();
    let mut best_e = f64::INFINITY;
    for p in pts {
        if p.e < best_e - 1e-12 {
            best_e = p.e;
            out.push(p);
        }
    }
    if out.len() > 64 {
        // Downsample uniformly, preserving the extremes.
        let n = out.len();
        let mut sampled = Vec::with_capacity(64);
        for i in 0..64 {
            sampled.push(out[i * (n - 1) / 63]);
        }
        out = sampled;
    }
    out
}

/// Total energy of the all-at-`v` assignment (the single-supply baseline),
/// in femtojoules.
pub fn single_supply_energy_fj(g: &Cdfg, costs: &RtlCosts, v: f64) -> f64 {
    g.op_ids()
        .filter(|&id| g.kind(id).is_operation())
        .map(|id| 0.5 * costs.op_cap_ff(g.kind(id), g.width()) * v * v)
        .sum()
}

/// Latency of the all-at-`v` assignment, in scaled delay units.
pub fn single_supply_latency(
    g: &Cdfg,
    delays: &Delays,
    model: &VoltageModel,
    v: f64,
    vref: f64,
) -> f64 {
    // Longest path in scaled delay.
    let mut t = vec![0.0f64; g.node_count()];
    let mut max_t: f64 = 0.0;
    for id in g.op_ids() {
        let mut start: f64 = 0.0;
        for &a in g.args(id) {
            start = start.max(t[a.index()]);
        }
        let d = delays.of(g.kind(id)) as f64 * model.delay_scale(v, vref);
        t[id.index()] = start + d;
        max_t = max_t.max(t[id.index()]);
    }
    max_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform;

    fn tree() -> Cdfg {
        // Unbalanced tree: critical multiply chain plus a short side add.
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let d = g.input("d");
        let m1 = g.mul(a, b);
        let m2 = g.mul(m1, c);
        let side = g.add(c, d);
        let y = g.add(m2, side);
        g.output("y", y);
        g
    }

    #[test]
    fn relaxed_latency_uses_lower_voltages() {
        let g = tree();
        let delays = Delays::default();
        let costs = RtlCosts::default();
        let model = VoltageModel::default();
        let levels = [3.3, 2.4, 1.8];
        let tight = single_supply_latency(&g, &delays, &model, 3.3, 3.3);
        let va = schedule_voltages(&g, &delays, &costs, &levels, &model, tight).unwrap();
        // At the tight constraint, the side add can still be slowed.
        let baseline = single_supply_energy_fj(&g, &costs, 3.3);
        assert!(va.energy_fj <= baseline, "{} vs {}", va.energy_fj, baseline);
        // With 2x slack everything drops to the lowest level.
        let vb = schedule_voltages(&g, &delays, &costs, &levels, &model, tight * 3.0).unwrap();
        assert!(vb.energy_fj < va.energy_fj);
        assert!(vb.energy_fj < baseline * 0.45, "deep scaling saves > 55%");
    }

    #[test]
    fn infeasible_constraint_reports() {
        let g = tree();
        let delays = Delays::default();
        let err = schedule_voltages(
            &g,
            &delays,
            &RtlCosts::default(),
            &[3.3, 2.4],
            &VoltageModel::default(),
            0.1,
        )
        .unwrap_err();
        assert!(matches!(err, MultiVoltError::Infeasible { .. }));
    }

    #[test]
    fn non_tree_is_rejected() {
        let mut g = Cdfg::new(16);
        let a = g.input("a");
        let b = g.input("b");
        let m = g.mul(a, b);
        let s1 = g.add(m, a);
        let s2 = g.sub(m, b); // m has two consumers
        let y = g.add(s1, s2);
        g.output("y", y);
        let err = schedule_voltages(
            &g,
            &Delays::default(),
            &RtlCosts::default(),
            &[3.3, 2.4],
            &VoltageModel::default(),
            100.0,
        )
        .unwrap_err();
        assert!(matches!(err, MultiVoltError::NotATree { .. }));
    }

    #[test]
    fn horner_tree_schedules() {
        let g = transform::polynomial_horner(3, 16);
        let delays = Delays::default();
        let model = VoltageModel::default();
        let costs = RtlCosts::default();
        let tight = single_supply_latency(&g, &delays, &model, 3.3, 3.3);
        let va =
            schedule_voltages(&g, &delays, &costs, &[3.3, 2.4, 1.8], &model, tight * 1.5).unwrap();
        assert!(va.energy_fj < single_supply_energy_fj(&g, &costs, 3.3));
        assert!(va.latency <= tight * 1.5 + 1e-9);
    }

    #[test]
    fn shifters_counted_on_level_crossings() {
        let g = tree();
        let delays = Delays::default();
        let model = VoltageModel::default();
        let costs = RtlCosts::default();
        let tight = single_supply_latency(&g, &delays, &model, 3.3, 3.3);
        let va = schedule_voltages(&g, &delays, &costs, &[3.3, 1.8], &model, tight).unwrap();
        // If any two connected ops differ in level, shifters must be > 0.
        let mut crossings = 0;
        for id in g.op_ids() {
            if !g.kind(id).is_operation() {
                continue;
            }
            for &a in g.args(id) {
                if g.kind(a).is_operation() && va.level_of[a.index()] != va.level_of[id.index()] {
                    crossings += 1;
                }
            }
        }
        assert_eq!(va.shifters, crossings);
    }

    #[test]
    fn single_level_degenerates_to_baseline() {
        let g = tree();
        let delays = Delays::default();
        let model = VoltageModel::default();
        let costs = RtlCosts::default();
        let t = single_supply_latency(&g, &delays, &model, 3.3, 3.3);
        let va = schedule_voltages(&g, &delays, &costs, &[3.3], &model, t).unwrap();
        let baseline = single_supply_energy_fj(&g, &costs, 3.3);
        assert!((va.energy_fj - baseline).abs() < 1e-6);
        assert_eq!(va.shifters, 0);
    }
}
