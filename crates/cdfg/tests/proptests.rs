//! Property-based tests: transformations preserve semantics, schedules
//! respect dependences and resource limits.

use std::collections::HashMap;

use hlpower_cdfg::{profile, schedule, transform, Cdfg, Delays, OpId};
use proptest::prelude::*;

/// A random arithmetic CDFG built from a sequence of op choices.
fn random_cdfg(ops: &[(u8, u8, u8, i64)], width: u32) -> Cdfg {
    let mut g = Cdfg::new(width);
    let mut pool: Vec<OpId> = (0..4).map(|i| g.input(format!("x{i}"))).collect();
    for &(kind, a, b, k) in ops {
        let x = pool[a as usize % pool.len()];
        let y = pool[b as usize % pool.len()];
        let node = match kind % 6 {
            0 => g.add(x, y),
            1 => g.sub(x, y),
            2 => g.mul(x, y),
            3 => {
                let c = g.constant(k);
                g.mul(x, c)
            }
            4 => g.shl(x, (k.unsigned_abs() % 4) as u32),
            _ => {
                let s = g.lt(x, y);
                g.mux(s, x, y)
            }
        };
        pool.push(node);
    }
    let out = *pool.last().expect("nonempty");
    g.output("y", out);
    g
}

fn op_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, i64)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), -200i64..200), 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Strength reduction preserves the function on random graphs and
    /// random inputs.
    #[test]
    fn strength_reduction_preserves_semantics(
        ops in op_strategy(),
        inputs in proptest::collection::vec(-1000i64..1000, 4),
    ) {
        let g = random_cdfg(&ops, 32);
        let r = transform::strength_reduce_const_mults(&g);
        let bindings: HashMap<String, i64> =
            inputs.iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect();
        prop_assert_eq!(g.eval(&bindings).expect("bound"), r.eval(&bindings).expect("bound"));
    }

    /// ASAP start times respect every data dependence.
    #[test]
    fn asap_respects_dependences(ops in op_strategy()) {
        let g = random_cdfg(&ops, 16);
        let delays = Delays::default();
        let s = schedule::asap(&g, &delays);
        for id in g.op_ids() {
            for &arg in g.args(id) {
                prop_assert!(
                    s.start_of(id) >= s.start_of(arg) + delays.of(g.kind(arg)),
                    "dependence violated"
                );
            }
        }
    }

    /// List scheduling with limits never beats ASAP and never violates the
    /// limits.
    #[test]
    fn list_schedule_sound(ops in op_strategy(), muls in 1usize..3) {
        let g = random_cdfg(&ops, 16);
        let delays = Delays::default();
        let asap = schedule::asap(&g, &delays);
        let mut limits = HashMap::new();
        limits.insert("mul", muls);
        let ls = schedule::list_schedule(&g, &delays, &limits);
        prop_assert!(ls.makespan >= asap.makespan);
        let usage = schedule::resource_usage(&g, &delays, &ls);
        prop_assert!(usage.get("mul").copied().unwrap_or(0) <= muls);
        // Dependences hold under the constrained schedule too.
        for id in g.op_ids() {
            for &arg in g.args(id) {
                prop_assert!(ls.start_of(id) >= ls.start_of(arg) + delays.of(g.kind(arg)));
            }
        }
    }

    /// ALAP at the ASAP makespan never schedules anything before its ASAP
    /// time, and both meet the deadline.
    #[test]
    fn alap_bounds_asap(ops in op_strategy()) {
        let g = random_cdfg(&ops, 16);
        let delays = Delays::default();
        let asap = schedule::asap(&g, &delays);
        let alap = schedule::alap(&g, &delays, asap.makespan).expect("feasible at own makespan");
        for id in g.op_ids() {
            prop_assert!(alap.start_of(id) >= asap.start_of(id), "{} < {}",
                alap.start_of(id), asap.start_of(id));
            prop_assert!(alap.start_of(id) + delays.of(g.kind(id)) <= asap.makespan);
        }
    }

    /// Horner and direct polynomial forms agree for arbitrary coefficients.
    #[test]
    fn polynomial_forms_agree(
        degree in 1usize..5,
        coeffs in proptest::collection::vec(-50i64..50, 5),
        x in -20i64..20,
    ) {
        let d = transform::polynomial_direct(degree, 40);
        let h = transform::polynomial_horner(degree, 40);
        let mut bindings = HashMap::new();
        bindings.insert("x".to_string(), x);
        for i in 0..=degree {
            bindings.insert(format!("a{i}"), coeffs[i % coeffs.len()]);
        }
        prop_assert_eq!(d.eval(&bindings).expect("bound"), h.eval(&bindings).expect("bound"));
    }

    /// Profiling activities are valid fractions for any stream.
    #[test]
    fn profile_activities_bounded(ops in op_strategy(), seed in 0u64..100) {
        let g = random_cdfg(&ops, 12);
        let p = profile::profile(&g, profile::random_stream(&g, seed, 100), &[])
            .expect("stream binds inputs");
        for id in g.op_ids() {
            let a = p.node_activity(id);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&a), "activity {}", a);
        }
    }
}
