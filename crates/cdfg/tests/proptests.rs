//! Property-based tests: transformations preserve semantics, schedules
//! respect dependences and resource limits. Runs on the in-tree
//! [`hlpower_rng::check`] harness.

use std::collections::HashMap;

use hlpower_cdfg::{profile, schedule, transform, Cdfg, Delays, OpId};
use hlpower_rng::check::Check;
use hlpower_rng::Rng;

/// A random arithmetic CDFG built from a sequence of op choices.
fn random_cdfg(ops: &[(u8, u8, u8, i64)], width: u32) -> Cdfg {
    let mut g = Cdfg::new(width);
    let mut pool: Vec<OpId> = (0..4).map(|i| g.input(format!("x{i}"))).collect();
    for &(kind, a, b, k) in ops {
        let x = pool[a as usize % pool.len()];
        let y = pool[b as usize % pool.len()];
        let node = match kind % 6 {
            0 => g.add(x, y),
            1 => g.sub(x, y),
            2 => g.mul(x, y),
            3 => {
                let c = g.constant(k);
                g.mul(x, c)
            }
            4 => g.shl(x, (k.unsigned_abs() % 4) as u32),
            _ => {
                let s = g.lt(x, y);
                g.mux(s, x, y)
            }
        };
        pool.push(node);
    }
    let out = *pool.last().expect("nonempty");
    g.output("y", out);
    g
}

/// Draws the op-choice sequence the old `op_strategy` generated.
fn random_ops(rng: &mut Rng) -> Vec<(u8, u8, u8, i64)> {
    let len = rng.gen_range(1usize..20);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0u8..=u8::MAX),
                rng.gen_range(0u8..=u8::MAX),
                rng.gen_range(0u8..=u8::MAX),
                rng.gen_range(-200i64..200),
            )
        })
        .collect()
}

/// Strength reduction preserves the function on random graphs and
/// random inputs.
#[test]
fn strength_reduction_preserves_semantics() {
    Check::new("strength_reduction_preserves_semantics").cases(48).run(|rng| {
        let ops = random_ops(rng);
        let inputs: Vec<i64> = (0..4).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let g = random_cdfg(&ops, 32);
        let r = transform::strength_reduce_const_mults(&g);
        let bindings: HashMap<String, i64> =
            inputs.iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect();
        assert_eq!(g.eval(&bindings).expect("bound"), r.eval(&bindings).expect("bound"));
    });
}

/// ASAP start times respect every data dependence.
#[test]
fn asap_respects_dependences() {
    Check::new("asap_respects_dependences").cases(48).run(|rng| {
        let g = random_cdfg(&random_ops(rng), 16);
        let delays = Delays::default();
        let s = schedule::asap(&g, &delays);
        for id in g.op_ids() {
            for &arg in g.args(id) {
                assert!(
                    s.start_of(id) >= s.start_of(arg) + delays.of(g.kind(arg)),
                    "dependence violated"
                );
            }
        }
    });
}

/// List scheduling with limits never beats ASAP and never violates the
/// limits.
#[test]
fn list_schedule_sound() {
    Check::new("list_schedule_sound").cases(48).run(|rng| {
        let g = random_cdfg(&random_ops(rng), 16);
        let muls = rng.gen_range(1usize..3);
        let delays = Delays::default();
        let asap = schedule::asap(&g, &delays);
        let mut limits = HashMap::new();
        limits.insert("mul", muls);
        let ls = schedule::list_schedule(&g, &delays, &limits);
        assert!(ls.makespan >= asap.makespan);
        let usage = schedule::resource_usage(&g, &delays, &ls);
        assert!(usage.get("mul").copied().unwrap_or(0) <= muls);
        // Dependences hold under the constrained schedule too.
        for id in g.op_ids() {
            for &arg in g.args(id) {
                assert!(ls.start_of(id) >= ls.start_of(arg) + delays.of(g.kind(arg)));
            }
        }
    });
}

/// ALAP at the ASAP makespan never schedules anything before its ASAP
/// time, and both meet the deadline.
#[test]
fn alap_bounds_asap() {
    Check::new("alap_bounds_asap").cases(48).run(|rng| {
        let g = random_cdfg(&random_ops(rng), 16);
        let delays = Delays::default();
        let asap = schedule::asap(&g, &delays);
        let alap = schedule::alap(&g, &delays, asap.makespan).expect("feasible at own makespan");
        for id in g.op_ids() {
            assert!(
                alap.start_of(id) >= asap.start_of(id),
                "{} < {}",
                alap.start_of(id),
                asap.start_of(id)
            );
            assert!(alap.start_of(id) + delays.of(g.kind(id)) <= asap.makespan);
        }
    });
}

/// Horner and direct polynomial forms agree for arbitrary coefficients.
#[test]
fn polynomial_forms_agree() {
    Check::new("polynomial_forms_agree").cases(48).run(|rng| {
        let degree = rng.gen_range(1usize..5);
        let coeffs: Vec<i64> = (0..5).map(|_| rng.gen_range(-50i64..50)).collect();
        let x = rng.gen_range(-20i64..20);
        let d = transform::polynomial_direct(degree, 40);
        let h = transform::polynomial_horner(degree, 40);
        let mut bindings = HashMap::new();
        bindings.insert("x".to_string(), x);
        for i in 0..=degree {
            bindings.insert(format!("a{i}"), coeffs[i % coeffs.len()]);
        }
        assert_eq!(d.eval(&bindings).expect("bound"), h.eval(&bindings).expect("bound"));
    });
}

/// Profiling activities are valid fractions for any stream.
#[test]
fn profile_activities_bounded() {
    Check::new("profile_activities_bounded").cases(48).run(|rng| {
        let g = random_cdfg(&random_ops(rng), 12);
        let seed = rng.gen_range(0u64..100);
        let p = profile::profile(&g, profile::random_stream(&g, seed, 100), &[])
            .expect("stream binds inputs");
        for id in g.op_ids() {
            let a = p.node_activity(id);
            assert!((0.0..=1.0 + 1e-9).contains(&a), "activity {}", a);
        }
    });
}
