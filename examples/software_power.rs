//! Software-level power estimation and optimization (§II-A, §III-A):
//! Tiwari instruction-level modeling, profile-driven program synthesis,
//! cold scheduling, and the Fig. 2 memory-access optimization.
//!
//! ```text
//! cargo run --example software_power
//! ```

use hlpower::sw::{coldsched, memopt, synthesis, tiwari, workloads, Machine, MachineConfig};

fn main() {
    let config = MachineConfig::default();

    // ---- Tiwari model: characterize once, validate on four workloads.
    println!("=== Tiwari instruction-level power model ===");
    let model = tiwari::characterize(&config);
    println!(
        "base costs (pJ/instr): alu {:.1}  mul {:.1}  load {:.1}  store {:.1}  branch {:.1}",
        model.base_cost_pj[0],
        model.base_cost_pj[1],
        model.base_cost_pj[2],
        model.base_cost_pj[3],
        model.base_cost_pj[4]
    );
    for (name, program) in [
        ("stream-sum", workloads::stream_sum(256)),
        ("matmul 8x8", workloads::matmul(8)),
        ("bubble-sort", workloads::bubble_sort(48, 1)),
        ("fir 64x8", workloads::fir(64, 8)),
    ] {
        let (reference, predicted, rel) =
            model.validate(&config, &program, 100_000_000).expect("program halts");
        println!(
            "  {name:<12} reference {reference:>10.0} pJ   model {predicted:>10.0} pJ   error {:.1}%",
            100.0 * rel
        );
    }

    // ---- Profile-driven program synthesis.
    println!("\n=== profile-driven program synthesis (Hsieh) ===");
    let workload = workloads::matmul(12);
    let (reference, synth, speedup, err) =
        synthesis::profile_synthesis_experiment(&workload, &config, 9).expect("halts");
    println!("  reference: {} instructions / {} cycles", reference.instructions, reference.cycles);
    println!(
        "  synthesized: {} cycles  ->  {speedup:.0}x fewer simulated cycles, power error {:.1}%",
        synth.cycles,
        100.0 * err
    );

    // ---- Cold scheduling.
    println!("\n=== cold scheduling (instruction-bus activity) ===");
    let program = workloads::fir(32, 8);
    // Cold-schedule the inner straight-line runs of the program.
    let mut total_before = 0u64;
    let mut total_after = 0u64;
    let mut block = Vec::new();
    for &i in &program.code {
        if i.is_control() {
            if block.len() > 2 {
                let r = coldsched::cold_schedule(&block);
                total_before += r.transitions_before;
                total_after += r.transitions_after;
            }
            block.clear();
        } else {
            block.push(i);
        }
    }
    println!(
        "  basic-block bus transitions: {total_before} -> {total_after} ({:.1}% reduction)",
        100.0 * (1.0 - total_after as f64 / total_before.max(1) as f64)
    );

    // ---- Fig. 2 memory-access optimization.
    println!("\n=== Fig. 2: scalar replacement of an intermediate array ===");
    let (before, after) = memopt::compare(512, &config).expect("halts");
    println!(
        "  two-loop: {} memory accesses, {:.0} pJ, {} cycles",
        before.daccesses, before.energy_pj, before.cycles
    );
    println!(
        "  fused:    {} memory accesses, {:.0} pJ, {} cycles  ({:.1}% energy saved)",
        after.daccesses,
        after.energy_pj,
        after.cycles,
        100.0 * (1.0 - after.energy_pj / before.energy_pj)
    );

    // ---- A peek at the architectural statistics driving all of this.
    println!("\n=== architectural statistics (matmul 8x8) ===");
    let mut machine = Machine::new(config);
    let stats = machine.run(&workloads::matmul(8), 100_000_000).expect("halts");
    println!(
        "  {} instr, {} cycles, I$ miss {:.2}%, D$ miss {:.2}%, mispredict {:.2}%, {:.1} pJ/cycle",
        stats.instructions,
        stats.cycles,
        100.0 * stats.imiss_rate(),
        100.0 * stats.dmiss_rate(),
        100.0 * stats.mispredict_rate(),
        stats.power_per_cycle()
    );
}
