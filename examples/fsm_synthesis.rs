//! End-to-end controller synthesis (§III-H + §III-I): parse a KISS2
//! machine, minimize its states, compare encodings, synthesize to gates,
//! and apply gated clocks — measuring power at every step.
//!
//! ```text
//! cargo run --example fsm_synthesis
//! ```

use hlpower::fsm::decompose::decompose;
use hlpower::fsm::kiss::{parse_kiss2, to_kiss2};
use hlpower::fsm::{
    minimize_states, synthesize, tyagi_bound, Encoding, EncodingStrategy, MarkovAnalysis,
};
use hlpower::netlist::{streams, Library, ZeroDelaySim};
use hlpower::optimize::clockgate;

/// A bus-arbiter-style controller with redundant states (KISS2 source).
const ARBITER: &str = "\
# request/grant arbiter with a duplicated wait state
.i 2
.o 2
.r idle
00 idle idle 00
01 idle w_a  00
10 idle w_b  00
11 idle w_a  00
-- w_a  g_a  01
-- w_b  g_b  10
00 g_a  idle 01
01 g_a  g_a  01
10 g_a  w_b2 01
11 g_a  g_a  01
00 g_b  idle 10
01 g_b  w_a  10
10 g_b  g_b  10
11 g_b  g_b  10
-- w_b2 g_b  10
";

fn main() {
    let lib = Library::default();

    // ---- Parse and minimize.
    let stg = parse_kiss2(ARBITER).expect("valid KISS2");
    println!("parsed arbiter: {} states, {} input bits", stg.state_count(), stg.input_bits());
    let (min, _) = minimize_states(&stg);
    println!("after state minimization: {} states", min.state_count());
    // Verify behavior is preserved on a probe sequence.
    let probe: Vec<u64> = (0..64).map(|i| (i * 5 + 2) % 4).collect();
    assert_eq!(
        stg.simulate(&probe).expect("in range").1,
        min.simulate(&probe).expect("in range").1
    );

    // ---- Compare encodings on the minimized machine.
    let markov = MarkovAnalysis::uniform(&min);
    println!("\nencoding comparison (expected state-line switching per cycle):");
    let mut encodings = Vec::new();
    for strategy in [
        EncodingStrategy::Binary,
        EncodingStrategy::Gray,
        EncodingStrategy::OneHot,
        EncodingStrategy::LowPower(7),
    ] {
        let enc = Encoding::with_strategy(&min, &markov, strategy);
        let switching = markov.expected_switching(&min, &enc);
        let bound = tyagi_bound(&min, &markov, &enc);
        println!(
            "  {:<22} {switching:.3} (Tyagi bound {:.3}, holds: {})",
            format!("{strategy:?}"),
            bound.lower_bound,
            bound.holds()
        );
        encodings.push((strategy, enc, switching));
    }
    encodings.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    let (best_strategy, best_enc, _) = &encodings[0];
    println!("  winner: {best_strategy:?}");

    // ---- Synthesize and measure gate-level power.
    println!("\ngate-level synthesis:");
    for (strategy, enc, _) in &encodings {
        let circuit = synthesize(&min, enc).expect("valid encoding");
        let mut sim = ZeroDelaySim::new(&circuit.netlist).expect("acyclic");
        let act =
            sim.run(streams::biased(3, min.input_bits(), 0.2).take(4000)).expect("width matches");
        let power = act.power(&circuit.netlist, &lib);
        println!(
            "  {:<22} {} gates, {} flip-flops, {:.1} uW",
            format!("{strategy:?}"),
            circuit.netlist.gate_count(),
            circuit.netlist.dffs().len(),
            power.total_power_uw()
        );
    }

    // ---- Gated clock on the winner.
    let outcome =
        clockgate::evaluate(&min, best_enc, &lib, 4000, 11, 0.2).expect("valid controller");
    println!(
        "\ngated clock: {:.1} -> {:.1} uW ({:+.1}%), clock stopped {:.0}% of cycles",
        outcome.baseline_uw,
        outcome.gated_uw,
        100.0 * outcome.saving(),
        100.0 * outcome.gated_fraction
    );
    if outcome.saving() < 0.0 {
        println!(
            "  (negative: this arbiter is busy and register-light — gating pays off in\n   Fig. 7's idle-dominated, register-rich regime; see the power_managed_soc example)"
        );
    }

    // ---- Decomposition check.
    let d = decompose(&min, &markov);
    println!(
        "decomposition: cut crossing p = {:.3}, potential selective-clock saving {:.0}%",
        d.crossing_probability,
        100.0 * d.clock_saving(&min)
    );

    // ---- Round-trip back out to KISS2.
    let exported = to_kiss2(&min);
    println!("\nminimized machine re-exported as KISS2 ({} lines)", exported.lines().count());
}
