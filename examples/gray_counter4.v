// 4-bit Gray-code counter with enable — a worked example for the
// structural-Verilog front-end (docs/FORMATS.md). Try:
//
//   cargo run --release --bin repro -- --ingest examples/gray_counter4.v
//
// The binary state register b3..b0 increments while `en` is high; the
// outputs are the Gray encoding g = b ^ (b >> 1), so exactly one output
// bit toggles per enabled cycle.
module gray_counter4 (en, g0, g1, g2, g3);
  input en;
  output g0, g1, g2, g3;
  wire b0, b1, b2, b3;
  wire d0, d1, d2, d3;
  wire t1, t2, t3;

  // State register: plain DFF cells, grouped for power attribution.
  // b0 powers up at 1 so the count starts at 0001.
  (* group = "state", init = 1'b1 *) DFF r0 (.Q(b0), .D(d0), .CK(clk));
  (* group = "state" *)              DFF r1 (.Q(b1), .D(d1), .CK(clk));
  (* group = "state" *)              DFF r2 (.Q(b2), .D(d2), .CK(clk));
  (* group = "state" *)              DFF r3 (.Q(b3), .D(d3), .CK(clk));

  // Ripple-carry increment: toggle bit k when all lower bits are 1.
  (* group = "increment" *) xor x0 (d0, b0, en);
  (* group = "increment" *) and c1 (t1, en, b0);
  (* group = "increment" *) xor x1 (d1, b1, t1);
  (* group = "increment" *) and c2 (t2, t1, b1);
  (* group = "increment" *) xor x2 (d2, b2, t2);
  (* group = "increment" *) and c3 (t3, t2, b2);
  (* group = "increment" *) xor x3 (d3, b3, t3);

  // Gray encoding of the binary state.
  XOR2 e0 (.Y(g0), .A(b0), .B(b1));
  XOR2 e1 (.Y(g1), .A(b1), .B(b2));
  XOR2 e2 (.Y(g2), .A(b2), .B(b3));
  BUFX1 e3 (.Y(g3), .A(b3));

  // The clock pin is accepted and ignored (single implicit clock
  // domain), but the net must still be driven.
  wire clk;
  assign clk = 1'b0;
endmodule
