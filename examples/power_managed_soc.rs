//! Power management at three granularities on one "system":
//! system-level predictive shutdown of an event-driven device (§III-B),
//! gated clocks on its reactive controller (§III-I), and precomputation
//! on a datapath comparator (§III-I).
//!
//! ```text
//! cargo run --example power_managed_soc
//! ```

use hlpower::fsm::{generators, Encoding};
use hlpower::netlist::{streams, Library};
use hlpower::optimize::{clockgate, precompute, shutdown};

fn main() {
    let lib = Library::default();

    // ---- System level: the display-server-style device.
    println!("=== system level: predictive shutdown ===");
    let device = shutdown::DeviceModel::default();
    let workload = shutdown::bursty_workload(42, 5000);
    println!(
        "workload: {} episodes, oracle improvement bound {:.1}x, break-even idle {:.1}",
        workload.len(),
        shutdown::improvement_upper_bound(&workload),
        device.breakeven()
    );
    let report = |name: &str, r: shutdown::PolicyResult| {
        println!(
            "  {name:<24} power {:.3}  improvement {:>5.1}x  perf penalty {:.2}%",
            r.average_power,
            r.improvement,
            100.0 * r.performance_penalty
        );
    };
    use shutdown::policies::*;
    report("always-on", shutdown::simulate(&mut AlwaysOn, &device, &workload));
    report(
        "static timeout (4x BE)",
        shutdown::simulate(
            &mut StaticTimeout { timeout: 4.0 * device.breakeven() },
            &device,
            &workload,
        ),
    );
    report(
        "Srivastava regression",
        shutdown::simulate(&mut SrivastavaRegression::new(&device, 64), &device, &workload),
    );
    report(
        "Hwang-Wu",
        shutdown::simulate(&mut HwangWu::new(&device, 0.5, false), &device, &workload),
    );
    report(
        "Hwang-Wu + prewakeup",
        shutdown::simulate(&mut HwangWu::new(&device, 0.5, true), &device, &workload),
    );
    report("oracle", shutdown::simulate(&mut Oracle::new(&device, &workload), &device, &workload));

    // ---- Controller level: gated clock on the reactive FSM.
    println!("\n=== controller level: gated clock ===");
    let stg = generators::reactive_controller(8);
    let enc = Encoding::one_hot(&stg);
    let outcome = clockgate::evaluate(&stg, &enc, &lib, 4000, 7, 0.05).expect("valid controller");
    println!(
        "  baseline {:.1} uW -> gated {:.1} uW ({:.1}% saving, clock stopped {:.0}% of cycles)",
        outcome.baseline_uw,
        outcome.gated_uw,
        100.0 * outcome.saving(),
        100.0 * outcome.gated_fraction
    );

    // ---- Datapath level: precomputation on a magnitude comparator.
    println!("\n=== datapath level: precomputation ===");
    let block = precompute::comparator_block(8);
    let stream: Vec<Vec<bool>> = streams::random(3, block.input_count()).take(3000).collect();
    let ranked = precompute::rank_subsets(&block, 2).expect("acyclic block");
    println!(
        "  best 2-input predictor subset {:?}: shutdown probability {:.2}",
        ranked[0].subset, ranked[0].shutdown_probability
    );
    let outcome = precompute::evaluate(&block, 2, &stream, &lib).expect("acyclic block");
    println!(
        "  comparator power {:.1} uW -> {:.1} uW ({:.1}% saving)",
        outcome.baseline_uw,
        outcome.optimized_uw,
        100.0 * outcome.saving()
    );
}
