//! Bus-encoding explorer (§III-G): every codec against every address/data
//! stream family, transitions per word.
//!
//! ```text
//! cargo run --example bus_codec_explorer
//! ```

use hlpower::optimize::buscode::{
    traces, transitions_per_word, BeachCode, BusCodec, BusInvert, GrayCode, T0Code, Unencoded,
    WorkingZone,
};

const WIDTH: usize = 20;

fn codec_pairs(train: &[u64]) -> Vec<(Box<dyn BusCodec>, Box<dyn BusCodec>)> {
    let beach = BeachCode::train(WIDTH, train, 8);
    vec![
        (Box::new(Unencoded::new(WIDTH)), Box::new(Unencoded::new(WIDTH))),
        (Box::new(BusInvert::new(WIDTH)), Box::new(BusInvert::new(WIDTH))),
        (Box::new(GrayCode::new(WIDTH)), Box::new(GrayCode::new(WIDTH))),
        (Box::new(T0Code::new(WIDTH)), Box::new(T0Code::new(WIDTH))),
        (Box::new(WorkingZone::new(WIDTH, 4, 8)), Box::new(WorkingZone::new(WIDTH, 4, 8))),
        (Box::new(beach.clone()), Box::new(beach)),
    ]
}

fn main() {
    let streams: Vec<(&str, Vec<u64>)> = vec![
        ("random data", traces::random(1, WIDTH, 4000)),
        ("sequential addresses", traces::sequential(0x1000, 4000)),
        ("interleaved arrays", traces::interleaved_arrays(2, 3, 4000)),
        ("embedded trace", traces::embedded(3, 4000)),
    ];

    println!(
        "{:<22} {:>11} {:>11} {:>8} {:>8} {:>13} {:>8}",
        "stream", "unencoded", "bus-invert", "gray", "t0", "working-zone", "beach"
    );
    for (name, words) in &streams {
        // Beach trains on a disjoint sample of the same source.
        let train: Vec<u64> = words.iter().take(2000).copied().collect();
        let mut row = format!("{name:<22}");
        for (enc, dec) in codec_pairs(&train) {
            let t = transitions_per_word(enc, dec, words);
            row.push_str(&format!(" {t:>11.3}"));
        }
        println!("{row}");
    }
    println!(
        "\nreadings: Bus-Invert caps random data at N/2; Gray hits 1.0 and T0 ~0 on pure\n\
         sequences; Working-Zone recovers the per-array sequentiality the interleave\n\
         destroys; Beach wins on the block-correlated embedded trace it trained for."
    );
}
