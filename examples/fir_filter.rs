//! The Table I experiment end to end: an FIR filter before and after
//! converting constant multiplications into shift-add networks, with the
//! switched-capacitance breakdown by component class — at both the RTL
//! model level and the gate level.
//!
//! ```text
//! cargo run --example fir_filter
//! ```

use hlpower::cdfg::{allocate, profile, rtl, schedule, transform, Delays};
use hlpower::netlist::{gen, streams, Library, Netlist, ZeroDelaySim};
use std::collections::HashMap;

/// The 11-tap low-pass coefficient set used throughout the repo's Table I
/// reproduction (symmetric, mixed CSD weights).
const TAPS: [i64; 11] = [9, 23, 51, 89, 119, 131, 119, 89, 51, 23, 9];

fn rtl_breakdown(g: &hlpower::cdfg::Cdfg, label: &str) -> rtl::RtlBreakdown {
    let delays = Delays::default();
    let mut limits = HashMap::new();
    limits.insert("mul", 2usize);
    limits.insert("add", 2usize);
    limits.insert("sub", 2usize);
    let sched = schedule::list_schedule(g, &delays, &limits);
    let pairs = allocate::allocation_pairs(g);
    let prof = profile::profile(g, profile::correlated_stream(g, 11, 600, 250), &pairs)
        .expect("stream binds all inputs");
    let costs = rtl::RtlCosts::default();
    let binding = allocate::allocate(
        g,
        &delays,
        &sched,
        &prof,
        &costs,
        allocate::AllocationStrategy::ActivityAware,
    );
    let breakdown = rtl::estimate(g, &delays, &sched, Some(&binding), &prof, &costs);
    println!("--- {label} ---");
    println!(
        "ops: {:?}, schedule: {} steps, units: {}, registers: {}",
        g.op_counts(),
        sched.makespan,
        binding.unit_count(),
        binding.register_count()
    );
    println!("{breakdown}");
    breakdown
}

fn main() {
    println!("=== RTL capacitance model (Table I reproduction) ===\n");
    let before = transform::fir_cdfg(&TAPS, 16);
    let after = transform::strength_reduce_const_mults(&before);
    let b = rtl_breakdown(&before, "before constant-mult conversion");
    let a = rtl_breakdown(&after, "after constant-mult conversion (CSD shift-add)");
    println!(
        "execution-unit capacitance ratio: {:.1}x   total ratio: {:.2}x\n",
        b.execution_units_pf / a.execution_units_pf,
        b.total_pf() / a.total_pf()
    );

    println!("=== Gate-level cross-check (structural FIR datapaths) ===\n");
    let lib = Library::default();
    let coeffs: Vec<u64> = TAPS.iter().map(|&c| c as u64).collect();
    for (label, shift_add) in [("array multipliers", false), ("CSD shift-add", true)] {
        let mut nl = Netlist::new();
        let x = nl.input_bus("x", 10);
        let y = gen::fir_filter(&mut nl, &x, &coeffs, shift_add);
        nl.output_bus("y", &y);
        let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
        let act = sim.run(streams::signed_walk(5, 10, 80).take(800)).expect("width matches");
        let report = act.power(&nl, &lib);
        println!(
            "{label:<20} {:>8} gates  {:>10.1} fF/cycle  {:>8.1} uW",
            nl.gate_count(),
            report.switched_cap_ff_per_cycle,
            report.total_power_uw()
        );
        for (group, gp) in &report.by_group {
            println!("    {group:<18} {:>10.1} fF/cycle", gp.switched_cap_ff);
        }
    }
}
