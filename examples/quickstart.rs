//! Quickstart: the Fig. 1 design improvement loop in action.
//!
//! Builds a small datapath several ways, estimates each variant's power at
//! the appropriate abstraction level, and lets the loop pick the winners:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hlpower::cdfg::{rtl, schedule, transform, Delays};
use hlpower::estimate::entropy;
use hlpower::explore::{Candidate, DesignLoop};
use hlpower::netlist::{gen, streams, Library, Netlist, ZeroDelaySim};

fn main() {
    let mut design_loop = DesignLoop::new();
    let costs = rtl::RtlCosts::default();

    // ---- Behavioral level: polynomial evaluation structure (Figs. 4/5).
    let direct = transform::polynomial_direct(3, 16);
    let horner = transform::polynomial_horner(3, 16);
    let chosen = design_loop.decide(
        "behavioral: cubic polynomial structure",
        vec![
            Candidate::new("direct form", rtl::quick_estimate(&direct, 7, &costs).total_pf()),
            Candidate::new("Horner rule", rtl::quick_estimate(&horner, 7, &costs).total_pf()),
        ],
    );
    println!("behavioral winner: {chosen}");

    // ---- Scheduling: the latency cost of the power-friendly structure.
    let delays = Delays::default();
    println!(
        "  direct makespan {} steps, Horner {} steps",
        schedule::asap(&direct, &delays).makespan,
        schedule::asap(&horner, &delays).makespan
    );

    // ---- RT level: strength-reduce the constant multipliers of an FIR.
    let fir = transform::fir_cdfg(&[105, 57, 411, 57, 105], 16);
    let reduced = transform::strength_reduce_const_mults(&fir);
    design_loop.decide(
        "rtl: FIR coefficient multipliers",
        vec![
            Candidate::new("array multipliers", rtl::quick_estimate(&fir, 3, &costs).total_pf()),
            Candidate::new("CSD shift-add", rtl::quick_estimate(&reduced, 3, &costs).total_pf()),
        ],
    );

    // ---- Gate level: validate the high-level preference with both a fast
    // entropy estimate and real simulation on an 8-bit adder.
    let lib = Library::default();
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", 8);
    let b = nl.input_bus("b", 8);
    let c0 = nl.constant(false);
    let s = gen::ripple_adder(&mut nl, &a, &b, c0);
    nl.output_bus("s", &s);

    let est =
        entropy::entropy_power_estimate(&nl, &lib, streams::random(1, nl.input_count()).take(2000))
            .expect("acyclic adder");
    let mut sim = ZeroDelaySim::new(&nl).expect("acyclic adder");
    let act = sim.run(streams::random(1, nl.input_count()).take(2000)).expect("width matches");
    let measured = act.power(&nl, &lib);
    println!(
        "\ngate-level check on an 8-bit adder:\n  entropy estimate {:.1} uW (Marculescu) / {:.1} uW (Nemani-Najm)\n  simulated        {:.1} uW",
        est.power_uw_marculescu,
        est.power_uw_nemani_najm,
        measured.total_power_uw()
    );

    println!("\ndesign improvement loop trail:\n{design_loop}");
    println!(
        "level-by-level feedback bought a {:.1}x cumulative spread between best and worst choices",
        design_loop.cumulative_spread()
    );
}
