#!/usr/bin/env bash
# Hermetic CI gate: everything here runs offline (the default dependency
# tree contains no external crates — see README "Hermetic build").
set -euxo pipefail

cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
cargo run --release --offline -p hlpower-bench --bin repro -- --table1
# Instrumentation smoke: exits non-zero if any instrumented counter is
# still zero after the pass; dumps results/metrics.json.
cargo run --release --offline -p hlpower-bench --bin repro -- --metrics
# Simulation throughput smoke: exits non-zero if the packed 64-lane
# kernel is not faster than the scalar one (or if their Monte-Carlo
# results are not bit-identical); dumps results/BENCH_sim.json.
cargo bench --offline -p hlpower-bench --bench sim_throughput
# Timed (glitch) simulation smoke: exits non-zero if the packed 64-lane
# time-wheel kernel is not faster than the scalar event-driven simulator
# (or if their glitch-power results are not bit-identical); dumps
# results/BENCH_glitch.json.
cargo bench --offline -p hlpower-bench --bench glitch_throughput
