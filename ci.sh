#!/usr/bin/env bash
# Hermetic CI gate: everything here runs offline (the default dependency
# tree contains no external crates — see README "Hermetic build").
set -euxo pipefail

cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
# API docs must build clean: every public item is documented
# (#![warn(missing_docs)] everywhere) and -D warnings makes any rustdoc
# regression (broken intra-doc link, missing doc) fatal.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline
cargo run --release --offline -p hlpower-bench --bin repro -- --table1
# Instrumentation smoke: exits non-zero if any instrumented counter is
# still zero after the pass; dumps results/metrics.json.
cargo run --release --offline -p hlpower-bench --bin repro -- --metrics
# Trace + profile smoke: runs the power-attribution profiler with span
# tracing on. Exits non-zero if any circuit's attribution fails to
# reconcile with its power report (<= 1e-9 relative), if the exported
# Chrome trace does not round-trip through the in-tree parser, or if
# any trace event was dropped; dumps results/trace.json and
# results/profile/<circuit>.{json,folded}.
HLPOWER_TRACE=results/trace.json \
  cargo run --release --offline -p hlpower-bench --bin repro -- --profile
# Ingestion smoke: parse the sample external netlists (structural
# Verilog + EDIF), run the differential battery on each (packed vs
# scalar kernels, MC vs BDD-exact, attribution reconciliation, Verilog
# round trip); exits non-zero on any parse error or failed check and
# dumps results/ingest/<stem>.json.
cargo run --release --offline -p hlpower-bench --bin repro -- \
  --ingest examples/gray_counter4.v examples/majority.edf
# Simulation throughput smoke: exits non-zero if the packed 64-lane
# kernel is not faster than the scalar one (or if their Monte-Carlo
# results are not bit-identical); dumps results/BENCH_sim.json.
cargo bench --offline -p hlpower-bench --bench sim_throughput
# Timed (glitch) simulation smoke: exits non-zero if the packed 64-lane
# time-wheel kernel is not faster than the scalar event-driven simulator
# (or if their glitch-power results are not bit-identical); dumps
# results/BENCH_glitch.json.
cargo bench --offline -p hlpower-bench --bench glitch_throughput
# Wide-word kernel smoke: exits non-zero if the 256-lane Monte-Carlo
# kernel is not faster than the 64-lane one (or if any width diverges
# from packed64 by a single bit); dumps results/BENCH_wide.json. The
# per-lane bit-identity battery itself runs in the test step above
# (tests/wide_differential.rs).
cargo bench --offline -p hlpower-bench --bench wide_throughput
# Optimize-pass scoring smoke: exits non-zero if incremental guard
# candidate scoring is not faster than the from-scratch reference (the
# two are first asserted bit-identical per candidate) or if the rewrite
# search's dirty-cone replay did no less work than full replays per
# candidate; dumps results/BENCH_opt.json.
cargo bench --offline -p hlpower-bench --bench opt_throughput
# Estimation-server smoke: boot the daemon on an ephemeral port with
# request-scoped telemetry fully on (JSONL access log + Chrome trace),
# drive it with the in-tree client (no curl), require the `serve`
# metrics section to be live after real traffic, scrape both metrics
# formats, shut down cleanly, then audit the whole run: every access
# line must parse with correlated request ids and stage timings that
# sum within the request wall time, every response body id must appear
# in the access log, every access id must have a trace span, and the
# Prometheus exposition must parse and cover the estimate traffic.
mkdir -p results/serve
rm -f results/serve/addr results/serve/access.jsonl results/serve/responses.jsonl
cargo build --release --offline -p hlpower-serve
HLPOWER_ACCESS_LOG=results/serve/access.jsonl \
HLPOWER_TRACE=results/serve/trace.json \
  target/release/hlpower-serve serve --addr 127.0.0.1:0 \
  --addr-file results/serve/addr >results/serve/server.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s results/serve/addr ] && break
  kill -0 "$SERVE_PID" || { cat results/serve/server.log; exit 1; }
  sleep 0.1
done
SERVE_ADDR=$(cat results/serve/addr)
target/release/hlpower-serve post "$SERVE_ADDR" examples/gray_counter4.v \
  --request-id ci-gray-1 >results/serve/gray_counter4.json
target/release/hlpower-serve post "$SERVE_ADDR" examples/majority.edf \
  >results/serve/majority.json
target/release/hlpower-serve post "$SERVE_ADDR" examples/gray_counter4.v \
  --stream --mode glitch --width 256 >results/serve/gray_stream.jsonl
SERVE_LIVE=0
for _ in $(seq 1 50); do
  target/release/hlpower-serve metrics "$SERVE_ADDR" >results/serve/metrics.json
  if grep -A 20 '"serve"' results/serve/metrics.json \
      | grep -q '"requests": [1-9]'; then
    SERVE_LIVE=1
    break
  fi
  sleep 0.1
done
[ "$SERVE_LIVE" = 1 ] || { echo "serve metrics stayed zero"; exit 1; }
target/release/hlpower-serve metrics "$SERVE_ADDR" --format prometheus \
  >results/serve/metrics.prom
target/release/hlpower-serve stop "$SERVE_ADDR"
wait "$SERVE_PID"
# Blocking bodies are pretty-printed; flatten each to one line so the
# audit can parse the responses file as JSONL, then append the already
# line-oriented streamed updates.
for f in gray_counter4.json majority.json; do
  tr -d '\n' <"results/serve/$f" >>results/serve/responses.jsonl
  printf '\n' >>results/serve/responses.jsonl
done
cat results/serve/gray_stream.jsonl >>results/serve/responses.jsonl
target/release/hlpower-serve audit --access results/serve/access.jsonl \
  --responses results/serve/responses.jsonl \
  --trace results/serve/trace.json \
  --prom results/serve/metrics.prom
